"""Rolling-window SLO tracking: latency quantiles, availability, burn rate.

An :class:`SloObjective` declares what "healthy" means for a route (a router
name, or ``"*"`` for all traffic): a latency quantile target (``p95 <=
2s``) and an availability floor (``99%`` of requests succeed), evaluated
over a rolling window.  An :class:`SloTracker` ingests one observation per
finished request -- ``observe(route, seconds, ok)`` -- into fixed-bucket
CDFs (the same bucket bounds as the metrics histograms, so every layer
reports identical numbers), windowed as a ring of sub-window slots so old
traffic ages out in O(1) without storing samples.

The tracker answers three operator questions:

* **latency** -- streaming quantiles via linear interpolation within
  buckets (:func:`repro.obs.metrics.quantile_from_counts`);
* **availability** -- the windowed success fraction;
* **error-budget burn rate** -- the observed error rate divided by the
  budgeted error rate ``1 - availability_target``.  Burn 1.0 spends the
  budget exactly at the sustainable pace; 10.0 exhausts a 30-day budget in
  3 days and should page someone.

Snapshots (:meth:`SloTracker.status`) carry the raw windowed bucket counts,
so a fleet dispatcher can :func:`merge_slo_statuses` across shards and
report true fleet-wide quantiles rather than averaging shard averages.
:func:`mirror_slo` projects any status payload onto ``repro_slo_*`` gauges
for ``/metrics``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from collections import deque

from repro.obs.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    MetricsRegistry,
    quantile_from_counts,
)

__all__ = [
    "DEFAULT_OBJECTIVES",
    "SloObjective",
    "SloTracker",
    "merge_slo_statuses",
    "mirror_slo",
]

#: Quantiles every status payload reports per route, besides each
#: objective's own target quantile.
_REPORTED_QUANTILES = (0.5, 0.95, 0.99)


@dataclass(frozen=True)
class SloObjective:
    """One declared objective: latency quantile + availability for a route."""

    #: Route the objective applies to: a router name, or ``"*"`` for all.
    route: str = "*"
    #: Latency quantile the target bounds (0 < q < 1).
    quantile: float = 0.95
    #: Seconds the quantile must stay at or under.
    latency_target: float = 2.0
    #: Fraction of requests that must succeed (0 < a < 1).
    availability_target: float = 0.99

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        if self.latency_target <= 0:
            raise ValueError("latency_target must be positive")
        if not 0.0 < self.availability_target < 1.0:
            raise ValueError("availability_target must be in (0, 1)")

    @property
    def quantile_label(self) -> str:
        return f"p{self.quantile * 100:g}"

    def to_dict(self) -> dict:
        return {
            "route": self.route,
            "quantile": self.quantile,
            "latency_target": self.latency_target,
            "availability_target": self.availability_target,
        }

    @classmethod
    def from_dict(cls, payload) -> "SloObjective":
        if isinstance(payload, cls):
            return payload
        return cls(
            route=str(payload.get("route", "*")),
            quantile=float(payload.get("quantile", 0.95)),
            latency_target=float(payload.get("latency_target", 2.0)),
            availability_target=float(
                payload.get("availability_target", 0.99)),
        )


#: The objective a tracker enforces when none are declared: p95 latency of
#: all traffic within 2s, 99% availability.
DEFAULT_OBJECTIVES = (SloObjective(),)


@dataclass
class _Slot:
    """One sub-window of a route's rolling CDF."""

    epoch: int
    counts: list[int]
    count: int = 0
    errors: int = 0
    sum: float = 0.0


class _RouteWindow:
    """Ring of sub-window slots holding one route's windowed CDF."""

    __slots__ = ("slots",)

    def __init__(self) -> None:
        self.slots: deque[_Slot] = deque()

    def expire(self, epoch: int, keep: int) -> None:
        while self.slots and self.slots[0].epoch <= epoch - keep:
            self.slots.popleft()

    def slot(self, epoch: int, num_bounds: int) -> _Slot:
        if not self.slots or self.slots[-1].epoch != epoch:
            self.slots.append(_Slot(epoch, [0] * (num_bounds + 1)))
        return self.slots[-1]


class SloTracker:
    """Windowed per-route latency CDFs + availability, evaluated vs objectives.

    Parameters
    ----------
    objectives:
        :class:`SloObjective` instances (or their dict form, as carried by a
        picklable :class:`~repro.cluster.config.FleetConfig`).  Empty means
        :data:`DEFAULT_OBJECTIVES`.
    window:
        Rolling window length, seconds.
    slots:
        Sub-windows the ring is divided into; expiry granularity is
        ``window / slots``.
    bounds:
        CDF bucket bounds (seconds).  Keep the default so shard snapshots
        merge and dashboards agree with the latency histograms.
    """

    def __init__(self, objectives=(), window: float = 300.0, slots: int = 12,
                 bounds: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS,
                 clock=time.monotonic) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        if slots < 1:
            raise ValueError("slots must be at least 1")
        parsed = tuple(SloObjective.from_dict(obj) for obj in objectives)
        self.objectives = parsed or DEFAULT_OBJECTIVES
        self.window = float(window)
        self.slots = int(slots)
        self.bounds = tuple(float(b) for b in bounds)
        self._slot_seconds = self.window / self.slots
        self._clock = clock
        self._lock = threading.Lock()
        self._routes: dict[str, _RouteWindow] = {}
        self.observed = 0  # lifetime observations, for tests/telemetry

    # ------------------------------------------------------------- recording

    def observe(self, route: str, seconds: float, ok: bool = True) -> None:
        """Record one finished request on ``route``."""
        seconds = max(0.0, float(seconds))
        epoch = int(self._clock() // self._slot_seconds)
        with self._lock:
            window = self._routes.get(route)
            if window is None:
                window = self._routes[route] = _RouteWindow()
            window.expire(epoch, self.slots)
            slot = window.slot(epoch, len(self.bounds))
            slot.count += 1
            slot.sum += seconds
            if not ok:
                slot.errors += 1
            for index, bound in enumerate(self.bounds):
                if seconds <= bound:
                    slot.counts[index] += 1
                    break
            else:
                slot.counts[-1] += 1
            self.observed += 1

    # --------------------------------------------------------------- queries

    def _merged(self, route: str) -> tuple[list[int], int, int, float]:
        """Windowed (counts, count, errors, sum) for a route; ``*`` = all."""
        epoch = int(self._clock() // self._slot_seconds)
        counts = [0] * (len(self.bounds) + 1)
        count = errors = 0
        total = 0.0
        windows = (self._routes.values() if route == "*"
                   else filter(None, [self._routes.get(route)]))
        for window in windows:
            window.expire(epoch, self.slots)
            for slot in window.slots:
                count += slot.count
                errors += slot.errors
                total += slot.sum
                for index, value in enumerate(slot.counts):
                    counts[index] += value
        return counts, count, errors, total

    def quantile(self, route: str, q: float) -> float | None:
        with self._lock:
            counts, _, _, _ = self._merged(route)
        return quantile_from_counts(self.bounds, counts, q)

    def availability(self, route: str = "*") -> float:
        with self._lock:
            _, count, errors, _ = self._merged(route)
        return 1.0 if count == 0 else 1.0 - errors / count

    def status(self) -> dict:
        """The full evaluation payload served at ``/v1/slo``.

        ``routes`` carries the raw windowed bucket counts so fleet
        dispatchers can merge shard statuses into true fleet quantiles
        (:func:`merge_slo_statuses`).
        """
        with self._lock:
            routes: dict[str, dict] = {}
            names = set(self._routes) | {"*"}
            for name in names:
                counts, count, errors, total = self._merged(name)
                routes[name] = {"counts": counts, "count": count,
                                "errors": errors, "sum": total}
        return _evaluate(routes, self.bounds, self.window,
                         [obj.to_dict() for obj in self.objectives])


def _route_view(route_data: dict, bounds: tuple[float, ...]) -> dict:
    """Per-route summary: quantiles + availability from windowed counts."""
    counts = route_data["counts"]
    count = int(route_data["count"])
    errors = int(route_data["errors"])
    view = {
        "requests": count,
        "errors": errors,
        "availability": 1.0 if count == 0 else round(1.0 - errors / count, 6),
        "mean": (round(route_data["sum"] / count, 6) if count else None),
    }
    for q in _REPORTED_QUANTILES:
        value = quantile_from_counts(bounds, counts, q)
        view[f"p{q * 100:g}"] = None if value is None else round(value, 6)
    return view


def _evaluate(routes: dict[str, dict], bounds: tuple[float, ...],
              window: float, objectives: list[dict]) -> dict:
    """Evaluate objective dicts against per-route windowed counts."""
    empty = {"counts": [0] * (len(bounds) + 1), "count": 0, "errors": 0,
             "sum": 0.0}
    evaluated = []
    for payload in objectives:
        objective = SloObjective.from_dict(payload)
        data = routes.get(objective.route, empty)
        count = int(data["count"])
        errors = int(data["errors"])
        latency = quantile_from_counts(bounds, data["counts"],
                                       objective.quantile)
        availability = 1.0 if count == 0 else 1.0 - errors / count
        error_rate = 0.0 if count == 0 else errors / count
        burn_rate = error_rate / (1.0 - objective.availability_target)
        latency_ok = latency is None or latency <= objective.latency_target
        availability_ok = availability >= objective.availability_target
        evaluated.append({
            **objective.to_dict(),
            "quantile_label": objective.quantile_label,
            "latency": None if latency is None else round(latency, 6),
            "latency_ok": latency_ok,
            "availability": round(availability, 6),
            "availability_ok": availability_ok,
            "error_budget_burn_rate": round(burn_rate, 6),
            "requests": count,
            "errors": errors,
            "ok": latency_ok and availability_ok,
        })
    return {
        "window": window,
        "bounds": list(bounds),
        "objectives": evaluated,
        "routes": {name: dict(data, **_route_view(data, bounds))
                   for name, data in sorted(routes.items())},
        "ok": all(entry["ok"] for entry in evaluated),
    }


def merge_slo_statuses(statuses: list[dict]) -> dict | None:
    """Merge per-shard :meth:`SloTracker.status` payloads into a fleet view.

    Bucket counts sum route-by-route (every tracker uses the same fixed
    bounds), so the merged quantiles are the *true* fleet quantiles -- not
    an average of shard quantiles, which would be meaningless.  Objectives
    are taken from the first status (every shard is built from the same
    :class:`FleetConfig`, so they agree).  Returns ``None`` when no status
    is usable.
    """
    usable = [status for status in statuses
              if isinstance(status, dict) and "routes" in status]
    if not usable:
        return None
    bounds = tuple(usable[0].get("bounds", DEFAULT_SECONDS_BUCKETS))
    window = float(usable[0].get("window", 300.0))
    objectives = [dict(entry) for entry in usable[0].get("objectives", [])]
    merged: dict[str, dict] = {}
    for status in usable:
        for name, data in status.get("routes", {}).items():
            counts = data.get("counts")
            if counts is None or len(counts) != len(bounds) + 1:
                continue
            into = merged.setdefault(
                name, {"counts": [0] * (len(bounds) + 1), "count": 0,
                       "errors": 0, "sum": 0.0})
            into["count"] += int(data.get("count", 0))
            into["errors"] += int(data.get("errors", 0))
            into["sum"] += float(data.get("sum", 0.0))
            for index, value in enumerate(counts):
                into["counts"][index] += int(value)
    return _evaluate(merged, bounds, window, objectives)


def mirror_slo(registry: MetricsRegistry, status: dict,
               prefix: str = "repro_slo") -> None:
    """Project a status payload onto ``<prefix>_*`` gauges at scrape time."""
    latency = registry.gauge(
        f"{prefix}_latency_seconds",
        "Windowed latency quantile observed per route")
    target = registry.gauge(
        f"{prefix}_latency_target_seconds",
        "Declared latency objective per route")
    availability = registry.gauge(
        f"{prefix}_availability",
        "Windowed success fraction per route")
    burn = registry.gauge(
        f"{prefix}_error_budget_burn_rate",
        "Observed error rate over the budgeted error rate; >1 overspends")
    ok = registry.gauge(
        f"{prefix}_ok",
        "Whether each declared objective currently holds")
    requests = registry.gauge(
        f"{prefix}_window_requests",
        "Requests observed in the rolling window per route")
    for entry in status.get("objectives", []):
        labels = {"route": entry["route"], "quantile": entry["quantile_label"]}
        if entry.get("latency") is not None:
            latency.set(entry["latency"], **labels)
        target.set(entry["latency_target"], **labels)
        availability.set(entry["availability"], route=entry["route"])
        burn.set(entry["error_budget_burn_rate"], route=entry["route"])
        ok.set(int(entry["ok"]), route=entry["route"])
        requests.set(entry["requests"], route=entry["route"])
