"""Size-rotated JSONL persistence for finished traces.

``repro serve --trace-dir DIR`` hands finished-job trace trees to a
:class:`JsonlTraceWriter`.  Each trace is one JSON line appended to
``traces.jsonl``; when the active file would exceed ``max_bytes`` it is
rotated to ``traces-<n>.jsonl`` (monotonically increasing ``n``) so
production traces survive process restarts without unbounded growth of any
single file.  Writes are locked and flushed line-at-a-time -- a crash loses
at most the trace being written.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

__all__ = ["JsonlTraceWriter", "read_traces"]


class JsonlTraceWriter:
    """Append trace trees as JSON lines, rotating the file by size."""

    def __init__(self, directory: str | Path, filename: str = "traces.jsonl",
                 max_bytes: int = 16 * 1024 * 1024) -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.filename = filename
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self.written = 0
        self.rotations = 0

    @property
    def path(self) -> Path:
        return self.directory / self.filename

    # ------------------------------------------------------------- rotation

    def _next_rotation_index(self) -> int:
        stem, suffix = os.path.splitext(self.filename)
        best = 0
        for existing in self.directory.glob(f"{stem}-*{suffix}"):
            tail = existing.stem[len(stem) + 1:]
            if tail.isdigit():
                best = max(best, int(tail))
        return best + 1

    def _rotate(self) -> None:
        stem, suffix = os.path.splitext(self.filename)
        target = self.directory / f"{stem}-{self._next_rotation_index()}{suffix}"
        self.path.rename(target)
        self.rotations += 1

    # --------------------------------------------------------------- writes

    def write(self, tree) -> Path:
        """Append one trace (a :class:`~repro.obs.trace.Span` or dict)."""
        payload = tree.to_dict() if hasattr(tree, "to_dict") else tree
        line = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        encoded = (line + "\n").encode("utf-8")
        with self._lock:
            try:
                current = self.path.stat().st_size
            except OSError:
                current = 0
            if current and current + len(encoded) > self.max_bytes:
                self._rotate()
            with open(self.path, "ab") as handle:
                handle.write(encoded)
                handle.flush()
            self.written += 1
        return self.path

    def files(self) -> list[Path]:
        """Every trace file, rotated ones first, active file last."""
        stem, suffix = os.path.splitext(self.filename)

        def sort_key(path: Path) -> int:
            tail = path.stem[len(stem) + 1:]
            return int(tail) if tail.isdigit() else 0

        rotated = sorted(self.directory.glob(f"{stem}-*{suffix}"),
                         key=sort_key)
        active = [self.path] if self.path.exists() else []
        return rotated + active


def read_traces(directory: str | Path,
                filename: str = "traces.jsonl") -> list[dict]:
    """Load every trace tree a writer left under ``directory``, in order."""
    writer_view = JsonlTraceWriter.__new__(JsonlTraceWriter)
    writer_view.directory = Path(directory)
    writer_view.filename = filename
    traces: list[dict] = []
    if not writer_view.directory.exists():
        return traces
    for path in writer_view.files():
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    traces.append(json.loads(line))
    return traces
