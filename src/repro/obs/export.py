"""Size-rotated JSONL persistence for traces (and other record streams).

``repro serve --trace-dir DIR`` hands finished-job trace trees to a
:class:`JsonlTraceWriter`.  Each trace is one JSON line appended to
``traces.jsonl``; when the active file would exceed ``max_bytes`` it is
rotated to ``traces.r<n>.jsonl`` (monotonically increasing ``n``) so
production traces survive process restarts without unbounded growth of any
single file.  Writes are locked and flushed line-at-a-time -- a crash loses
at most the trace being written.

Multi-process sharing mirrors :class:`repro.service.ResultCache`: a fleet of
shard workers can point at *one* directory as long as each writer is
constructed with a unique ``owner`` tag.  The tag becomes part of the
active filename (``traces.shard-0.jsonl``) so concurrent writers never
append to -- or rotate -- each other's files, and rotation goes through
``os.replace`` so a half-rotated file can never be observed.
:func:`read_traces` collects every writer's files, whoever wrote them.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

__all__ = ["JsonlWriter", "JsonlTraceWriter", "read_jsonl", "read_traces"]


def _split_rotation(name: str) -> tuple[str, int | None]:
    """Split a suffix-less filename into (writer stem, rotation index)."""
    base, dot, tail = name.rpartition(".")
    if dot and tail.startswith("r") and tail[1:].isdigit():
        return base, int(tail[1:])
    return name, None


class JsonlWriter:
    """Append JSON records to a size-rotated file, one line per record.

    Parameters
    ----------
    directory:
        Where the files live; created on demand.
    filename:
        Base filename.  The rotation and ownership decorations derive from
        its stem/suffix split.
    max_bytes:
        Rotate the active file before a write would push it past this size.
    owner:
        Unique per-writer tag for shared directories (fleet workers pass
        their shard id).  Without it the writer owns the bare ``filename``,
        which is only safe when one process writes the directory.
    """

    def __init__(self, directory: str | Path, filename: str = "records.jsonl",
                 max_bytes: int = 16 * 1024 * 1024,
                 owner: str | None = None) -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.filename = filename
        self.max_bytes = max_bytes
        self.owner = str(owner) if owner is not None else None
        if self.owner is not None and ("/" in self.owner or os.sep in self.owner):
            raise ValueError("owner must not contain path separators")
        self._lock = threading.Lock()
        self.written = 0
        self.rotations = 0

    @property
    def _stem_suffix(self) -> tuple[str, str]:
        stem, suffix = os.path.splitext(self.filename)
        if self.owner is not None:
            stem = f"{stem}.{self.owner}"
        return stem, suffix

    @property
    def path(self) -> Path:
        stem, suffix = self._stem_suffix
        return self.directory / f"{stem}{suffix}"

    # ------------------------------------------------------------- rotation

    def _next_rotation_index(self) -> int:
        stem, suffix = self._stem_suffix
        best = 0
        for existing in self.directory.glob(f"{stem}.r*{suffix}"):
            _, index = _split_rotation(existing.stem)
            if index is not None:
                best = max(best, index)
        return best + 1

    def _rotate(self) -> None:
        stem, suffix = self._stem_suffix
        target = (self.directory
                  / f"{stem}.r{self._next_rotation_index()}{suffix}")
        # os.replace is atomic on POSIX: readers either see the old name or
        # the new one, never a vanished or half-moved file.
        os.replace(self.path, target)
        self.rotations += 1

    # --------------------------------------------------------------- writes

    def write_record(self, payload: dict) -> Path:
        """Append one JSON-serialisable record as a single line."""
        line = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        encoded = (line + "\n").encode("utf-8")
        with self._lock:
            try:
                current = self.path.stat().st_size
            except OSError:
                current = 0
            if current and current + len(encoded) > self.max_bytes:
                self._rotate()
            with open(self.path, "ab") as handle:
                handle.write(encoded)
                handle.flush()
            self.written += 1
        return self.path

    def files(self) -> list[Path]:
        """This writer's files, rotated ones first, active file last."""
        stem, suffix = self._stem_suffix
        rotated: list[tuple[int, Path]] = []
        for path in self.directory.glob(f"{stem}.r*{suffix}"):
            base, index = _split_rotation(path.stem)
            if base == stem and index is not None:
                rotated.append((index, path))
        active = [self.path] if self.path.exists() else []
        return [path for _, path in sorted(rotated)] + active

    @classmethod
    def all_files(cls, directory: str | Path,
                  filename: str = "records.jsonl") -> list[Path]:
        """Every file any writer (any owner) left under ``directory``.

        Files are grouped by writer (owner tag), each group ordered rotated
        first, active last -- the same per-writer ordering :meth:`files`
        reports.
        """
        directory = Path(directory)
        if not directory.exists():
            return []
        stem, suffix = os.path.splitext(filename)
        keyed: list[tuple[tuple, Path]] = []
        for path in sorted(directory.glob(f"{stem}*{suffix}")):
            group, index = _split_rotation(path.stem)
            active = 1 if index is None else 0
            keyed.append(((group, active, index or 0), path))
        return [path for _, path in sorted(keyed)]


class JsonlTraceWriter(JsonlWriter):
    """Append trace trees as JSON lines, rotating the file by size."""

    def __init__(self, directory: str | Path, filename: str = "traces.jsonl",
                 max_bytes: int = 16 * 1024 * 1024,
                 owner: str | None = None) -> None:
        super().__init__(directory, filename=filename, max_bytes=max_bytes,
                         owner=owner)

    def write(self, tree) -> Path:
        """Append one trace (a :class:`~repro.obs.trace.Span` or dict)."""
        payload = tree.to_dict() if hasattr(tree, "to_dict") else tree
        return self.write_record(payload)


def read_jsonl(directory: str | Path,
               filename: str = "records.jsonl") -> list[dict]:
    """Load every record every writer left under ``directory``."""
    records: list[dict] = []
    for path in JsonlWriter.all_files(directory, filename):
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
    return records


def read_traces(directory: str | Path,
                filename: str = "traces.jsonl") -> list[dict]:
    """Load every trace tree any writer left under ``directory``, in order."""
    return read_jsonl(directory, filename)
