"""Tail-based trace sampling: keep every interesting trace, sample the rest.

Head sampling (decide at trace start) throws away the traces an operator
actually wants -- the 1-in-10k request that errored or blew its deadline.
:class:`TailSampler` decides *after* the root span finishes, when the
outcome is known:

* traces whose root records an error, or whose status is ``error`` /
  ``timeout``, are always kept (``error`` / ``deadline``);
* traces at or over ``slow_threshold`` seconds are always kept (``slow``);
* everything else -- the fast, boring majority -- is kept with probability
  ``rate``, decided by hashing the trace id, so the choice is deterministic
  per trace (both the in-memory store and the JSONL writer agree) and
  reproducible in tests.

This is what makes tracing safe at fleet request rates: the bounded trace
store and the trace files fill with signal instead of being churned by
identical sub-millisecond cache hits.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass

__all__ = ["SamplingDecision", "TailSampler"]

#: Root statuses that mark a trace as always-keep.
_ERROR_STATUSES = {"error": "error", "timeout": "deadline"}


@dataclass(frozen=True)
class SamplingDecision:
    """Keep/drop verdict for one finished trace, with the deciding reason."""

    keep: bool
    reason: str  # error | deadline | slow | sampled | unsampled

    def __bool__(self) -> bool:
        return self.keep


class TailSampler:
    """Decide which finished traces to retain (see module doc).

    Parameters
    ----------
    rate:
        Probability a fast, successful trace is kept (0 keeps none of them,
        1 keeps all).  Errors, deadline overruns, and slow outliers are
        kept regardless.
    slow_threshold:
        Root duration (seconds) at or over which a trace is an outlier
        worth keeping unconditionally; ``None`` disables the slow rule.
    """

    def __init__(self, rate: float = 0.1,
                 slow_threshold: float | None = None) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if slow_threshold is not None and slow_threshold < 0:
            raise ValueError("slow_threshold must be non-negative")
        self.rate = float(rate)
        self.slow_threshold = slow_threshold
        self._lock = threading.Lock()
        #: Decisions by reason, for /metrics (repro_trace_sampled_total).
        self.counts: dict[str, int] = {}

    @staticmethod
    def _hash_fraction(trace_id: str) -> float:
        digest = hashlib.sha256(str(trace_id).encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") / 2.0 ** 64

    def _classify(self, payload: dict) -> SamplingDecision:
        attributes = payload.get("attributes") or {}
        if attributes.get("error") is not None:
            return SamplingDecision(True, "error")
        status = attributes.get("status")
        if status in _ERROR_STATUSES:
            return SamplingDecision(True, _ERROR_STATUSES[status])
        duration = payload.get("duration")
        if duration is None:
            # An unfinished root reaching the sampler is itself anomalous.
            return SamplingDecision(True, "error")
        if (self.slow_threshold is not None
                and duration >= self.slow_threshold):
            return SamplingDecision(True, "slow")
        trace_id = payload.get("trace_id") or ""
        if self._hash_fraction(trace_id) < self.rate:
            return SamplingDecision(True, "sampled")
        return SamplingDecision(False, "unsampled")

    def decide(self, root) -> SamplingDecision:
        """Classify a finished root span (a :class:`Span` or its dict form)."""
        payload = root.to_dict() if hasattr(root, "to_dict") else root
        decision = self._classify(payload)
        with self._lock:
            self.counts[decision.reason] = (
                self.counts.get(decision.reason, 0) + 1)
        return decision
