"""A small Prometheus text-exposition checker.

:func:`parse_exposition` splits a ``/metrics`` document into families with
their HELP/TYPE metadata and parsed samples; :func:`check_exposition`
returns a list of human-readable problems (empty = clean):

* every sample belongs to a family introduced by paired ``# HELP`` and
  ``# TYPE`` lines (in that order, exactly once each);
* sample names match the family (histograms may only append ``_bucket``,
  ``_sum``, ``_count``);
* label syntax is well formed and escaped values parse back;
* histogram bucket counts are monotonically non-decreasing over increasing
  ``le``, end with ``le="+Inf"``, and ``+Inf`` equals ``_count``;
* counter and histogram sample values are finite and non-negative.

This backs the exposition-correctness tests and the CI smoke gate; it is a
format sanity checker, not a full scrape parser.
"""

from __future__ import annotations

import math
import re

__all__ = ["MetricSample", "MetricFamily", "parse_exposition",
           "check_exposition"]

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


class MetricSample:
    """One parsed sample line."""

    __slots__ = ("name", "labels", "value", "line_no")

    def __init__(self, name: str, labels: dict, value: float,
                 line_no: int) -> None:
        self.name = name
        self.labels = labels
        self.value = value
        self.line_no = line_no

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricSample({self.name!r}, {self.labels!r}, {self.value!r})"


class MetricFamily:
    """A family: HELP/TYPE metadata plus its samples in document order."""

    __slots__ = ("name", "help", "type", "samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.help: str | None = None
        self.type: str | None = None
        self.samples: list[MetricSample] = []


def _unescape_label(value: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ("\\", '"'):
                out.append(nxt)
            else:  # unknown escape: keep both chars
                out.append(ch)
                out.append(nxt)
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _parse_labels(text: str, line_no: int, problems: list[str]) -> dict:
    """Parse ``name="value",...`` (the part between braces)."""
    labels: dict[str, str] = {}
    i = 0
    while i < len(text):
        match = _LABEL_NAME_RE.match(text, i)
        if match is None:
            problems.append(f"line {line_no}: bad label name at {text[i:]!r}")
            return labels
        name = match.group(0)
        i = match.end()
        if not text.startswith('="', i):
            problems.append(f"line {line_no}: label {name!r} missing ="
                            f" quoted value")
            return labels
        i += 2
        raw: list[str] = []
        while i < len(text):
            ch = text[i]
            if ch == "\\" and i + 1 < len(text):
                raw.append(text[i:i + 2])
                i += 2
                continue
            if ch == '"':
                break
            raw.append(ch)
            i += 1
        else:
            problems.append(f"line {line_no}: unterminated label value "
                            f"for {name!r}")
            return labels
        i += 1  # closing quote
        if name in labels:
            problems.append(f"line {line_no}: duplicate label {name!r}")
        labels[name] = _unescape_label("".join(raw))
        if i < len(text):
            if text[i] != ",":
                problems.append(f"line {line_no}: expected ',' between "
                                f"labels, got {text[i]!r}")
                return labels
            i += 1
    return labels


def _parse_value(token: str) -> float | None:
    if token == "+Inf":
        return math.inf
    if token == "-Inf":
        return -math.inf
    if token == "NaN":
        return math.nan
    try:
        return float(token)
    except ValueError:
        return None


def _family_of(sample_name: str, families: dict[str, MetricFamily],
               ) -> MetricFamily | None:
    """The family a sample belongs to, honouring histogram suffixes."""
    if sample_name in families:
        family = families[sample_name]
        if family.type != "histogram":
            return family
    for suffix in _HISTOGRAM_SUFFIXES:
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            family = families.get(base)
            if family is not None and family.type == "histogram":
                return family
    return families.get(sample_name)


def parse_exposition(text: str,
                     problems: list[str] | None = None,
                     ) -> dict[str, MetricFamily]:
    """Parse exposition text into families; syntax issues go to ``problems``."""
    sink = problems if problems is not None else []
    families: dict[str, MetricFamily] = {}

    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                continue  # a comment, not metadata
            keyword, name = parts[1], parts[2]
            rest = parts[3] if len(parts) > 3 else ""
            if not _NAME_RE.fullmatch(name):
                sink.append(f"line {line_no}: invalid metric name {name!r}")
                continue
            family = families.setdefault(name, MetricFamily(name))
            if keyword == "HELP":
                if family.help is not None:
                    sink.append(f"line {line_no}: duplicate HELP for {name}")
                family.help = rest
            else:
                if family.type is not None:
                    sink.append(f"line {line_no}: duplicate TYPE for {name}")
                if family.help is None:
                    sink.append(f"line {line_no}: TYPE for {name} precedes "
                                f"its HELP line")
                family.type = rest.strip()
            continue

        match = _NAME_RE.match(line)
        if match is None:
            sink.append(f"line {line_no}: unparseable sample {line!r}")
            continue
        name = match.group(0)
        rest = line[match.end():]
        labels: dict[str, str] = {}
        if rest.startswith("{"):
            close = rest.rfind("}")
            if close < 0:
                sink.append(f"line {line_no}: unterminated label set")
                continue
            labels = _parse_labels(rest[1:close], line_no, sink)
            rest = rest[close + 1:]
        tokens = rest.split()
        if not tokens:
            sink.append(f"line {line_no}: sample {name} has no value")
            continue
        value = _parse_value(tokens[0])
        if value is None:
            sink.append(f"line {line_no}: bad sample value {tokens[0]!r}")
            continue
        family = _family_of(name, families)
        if family is None:
            sink.append(f"line {line_no}: sample {name} has no preceding "
                        f"HELP/TYPE family")
            family = families.setdefault(name, MetricFamily(name))
        family.samples.append(MetricSample(name, labels, value, line_no))

    return families


def _check_histogram(family: MetricFamily, problems: list[str]) -> None:
    # Group bucket samples by their non-"le" labels so labeled histograms
    # are validated series by series.
    series: dict[tuple, list[MetricSample]] = {}
    sums: dict[tuple, float] = {}
    counts: dict[tuple, float] = {}
    for sample in family.samples:
        if sample.name == family.name + "_bucket":
            key = tuple(sorted((k, v) for k, v in sample.labels.items()
                               if k != "le"))
            series.setdefault(key, []).append(sample)
        elif sample.name == family.name + "_sum":
            sums[tuple(sorted(sample.labels.items()))] = sample.value
        elif sample.name == family.name + "_count":
            counts[tuple(sorted(sample.labels.items()))] = sample.value
        else:
            problems.append(f"{family.name}: unexpected histogram sample "
                            f"{sample.name}")
    if not series:
        problems.append(f"{family.name}: histogram has no _bucket samples")
    for key, buckets in series.items():
        label_desc = dict(key) or "{}"
        les: list[float] = []
        last = -math.inf
        prev_count = -1.0
        for sample in buckets:
            le_raw = sample.labels.get("le")
            if le_raw is None:
                problems.append(f"{family.name}{label_desc}: _bucket sample "
                                f"missing 'le' label")
                continue
            le = _parse_value(le_raw)
            if le is None or le != le:
                problems.append(f"{family.name}{label_desc}: bad le value "
                                f"{le_raw!r}")
                continue
            if le <= last:
                problems.append(f"{family.name}{label_desc}: bucket bounds "
                                f"not increasing at le={le_raw}")
            last = le
            if sample.value < prev_count:
                problems.append(f"{family.name}{label_desc}: bucket counts "
                                f"decrease at le={le_raw}")
            prev_count = sample.value
            les.append(le)
        if not les or les[-1] != math.inf:
            problems.append(f"{family.name}{label_desc}: buckets do not end "
                            f'with le="+Inf"')
        count = counts.get(key)
        if count is None:
            problems.append(f"{family.name}{label_desc}: missing _count")
        elif les and les[-1] == math.inf and buckets and (
                buckets[-1].value != count):
            problems.append(
                f"{family.name}{label_desc}: +Inf bucket "
                f"({buckets[-1].value}) != _count ({count})")
        total = sums.get(key)
        if total is None:
            problems.append(f"{family.name}{label_desc}: missing _sum")
        elif count == 0 and total != 0:
            problems.append(f"{family.name}{label_desc}: _sum nonzero with "
                            f"_count 0")


def check_exposition(text: str) -> list[str]:
    """All problems found in an exposition document (empty list = clean)."""
    problems: list[str] = []
    if text and not text.endswith("\n"):
        problems.append("document does not end with a newline")
    families = parse_exposition(text, problems)
    for family in families.values():
        if family.help is None:
            problems.append(f"{family.name}: missing # HELP line")
        if family.type is None:
            problems.append(f"{family.name}: missing # TYPE line")
            continue
        if family.type not in ("counter", "gauge", "histogram", "summary",
                               "untyped"):
            problems.append(f"{family.name}: unknown type {family.type!r}")
            continue
        if family.type == "histogram":
            _check_histogram(family, problems)
            continue
        if not family.samples:
            problems.append(f"{family.name}: family has no samples")
        for sample in family.samples:
            if sample.name != family.name:
                problems.append(f"{family.name}: sample name {sample.name} "
                                f"does not match family")
            if family.type == "counter":
                if sample.value != sample.value or sample.value < 0:
                    problems.append(f"{family.name}: counter value "
                                    f"{sample.value} is negative or NaN")
    return problems
