"""Counters, gauges, and fixed-bucket histograms with Prometheus exposition.

The server's ``/metrics`` endpoint, the batch service's telemetry, and the
bench scripts all share one :class:`MetricsRegistry`.  Instruments are
created (or looked up) with :meth:`MetricsRegistry.counter` /
:meth:`~MetricsRegistry.gauge` / :meth:`~MetricsRegistry.histogram`; the
registry renders the whole collection as Prometheus text exposition format
(``# HELP`` / ``# TYPE`` pairs, escaped label values, cumulative
``_bucket{le=...}`` lines ending in ``+Inf``, then ``_sum`` and ``_count``).

Everything is plain Python with a lock per instrument -- no third-party
client library, matching the repository's stdlib-only rule.
"""

from __future__ import annotations

import math
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "DEFAULT_SECONDS_BUCKETS",
    "DEFAULT_COUNT_BUCKETS",
    "format_value",
    "quantile_from_counts",
    "render_families",
]

#: Latency-style buckets (seconds): sub-millisecond ticks through the
#: multi-minute budgets the routers run under.
DEFAULT_SECONDS_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5,
                           1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0)

#: Count-style buckets (conflicts, propagations per solve): powers of ten
#: with a mid-decade step.
DEFAULT_COUNT_BUCKETS = (0.0, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0,
                         1000.0, 5000.0, 10000.0, 50000.0, 100000.0,
                         500000.0, 1000000.0)


def format_value(value: float) -> str:
    """Render a sample value: integers without a trailing ``.0``.

    The existing gateway tests assert exact substrings like
    ``repro_cache_stores_total 1``, so whole numbers must not grow a
    decimal point when they move onto the registry.
    """
    if value != value:  # NaN
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def quantile_from_counts(bounds: tuple[float, ...], counts: list[int],
                         q: float) -> float | None:
    """Estimate quantile ``q`` from per-bucket counts over fixed ``bounds``.

    ``counts`` has ``len(bounds) + 1`` slots: one per finite bound plus the
    overflow bucket.  The estimate interpolates linearly within the bucket
    the target rank lands in (the Prometheus ``histogram_quantile``
    convention), with the first bucket anchored at ``min(0, bounds[0])``.
    Ranks landing in the overflow bucket clamp to the highest finite bound
    -- there is no upper edge to interpolate toward.  Returns ``None`` when
    the histogram is empty.

    Shared by :meth:`Histogram.quantile`, the SLO tracker, and the ``repro
    top`` dashboard, so every layer reports the same numbers for the same
    buckets.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    total = sum(counts)
    if total == 0:
        return None
    rank = q * total
    running = 0.0
    for index, bound in enumerate(bounds):
        count = counts[index]
        if count and running + count >= rank:
            lower = bounds[index - 1] if index > 0 else min(0.0, bound)
            fraction = (rank - running) / count
            return lower + (bound - lower) * max(0.0, fraction)
        running += count
    return bounds[-1]


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format spec."""
    return (str(value).replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def escape_help(text: str) -> str:
    """Escape HELP text (backslash and newline only; quotes stay)."""
    return str(text).replace("\\", r"\\").replace("\n", r"\n")


def _render_labels(labels: dict | None) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{escape_label_value(value)}"'
                     for key, value in labels.items())
    return "{" + inner + "}"


def _labels_key(labels: dict | None) -> tuple:
    return tuple(sorted((labels or {}).items()))


class _Instrument:
    """Shared name/help/type plumbing for the three instrument kinds."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help or name
        self._lock = threading.Lock()

    def render(self) -> list[str]:
        raise NotImplementedError


class Counter(_Instrument):
    """A monotonically increasing counter with optional label sets."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[tuple, float] = {}
        self._labels: dict[tuple, dict] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _labels_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount
            self._labels.setdefault(key, dict(labels))

    def set_total(self, value: float, **labels) -> None:
        """Overwrite the running total (for mirroring an external count)."""
        key = _labels_key(labels)
        with self._lock:
            self._values[key] = float(value)
            self._labels.setdefault(key, dict(labels))

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(_labels_key(labels), 0.0)

    def render(self) -> list[str]:
        with self._lock:
            items = [(self._labels[key], value)
                     for key, value in sorted(self._values.items())]
        if not items:
            items = [({}, 0.0)]
        return [f"{self.name}{_render_labels(labels)} {format_value(value)}"
                for labels, value in items]


class Gauge(_Instrument):
    """A value that can go up and down (queue depth, cache bytes)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[tuple, float] = {}
        self._labels: dict[tuple, dict] = {}
        self._callback = None

    def set(self, value: float, **labels) -> None:
        key = _labels_key(labels)
        with self._lock:
            self._values[key] = float(value)
            self._labels.setdefault(key, dict(labels))

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _labels_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount
            self._labels.setdefault(key, dict(labels))

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def set_function(self, callback) -> None:
        """Sample ``callback()`` at render time (unlabeled gauges only)."""
        self._callback = callback

    def value(self, **labels) -> float:
        if self._callback is not None and not labels:
            return float(self._callback())
        with self._lock:
            return self._values.get(_labels_key(labels), 0.0)

    def render(self) -> list[str]:
        if self._callback is not None:
            return [f"{self.name} {format_value(float(self._callback()))}"]
        with self._lock:
            items = [(self._labels[key], value)
                     for key, value in sorted(self._values.items())]
        if not items:
            items = [({}, 0.0)]
        return [f"{self.name}{_render_labels(labels)} {format_value(value)}"
                for labels, value in items]


class _HistogramSeries:
    """Per-labelset bucket counts (stored per-bucket, rendered cumulative)."""

    __slots__ = ("labels", "counts", "sum", "count")

    def __init__(self, labels: dict, num_bounds: int) -> None:
        self.labels = labels
        self.counts = [0] * (num_bounds + 1)  # last slot = > max bound
        self.sum = 0.0
        self.count = 0


class Histogram(_Instrument):
    """Fixed-bucket histogram with cumulative Prometheus rendering.

    Observations may carry labels (``observe(1.2, stage="encode")``); each
    distinct labelset is its own series sharing the family's bucket bounds.
    Rendered buckets are *cumulative* (each ``le`` line counts every
    observation ``<=`` its bound, ending with ``+Inf`` == ``_count``),
    followed by per-series ``_sum`` and ``_count``.  A histogram with no
    observations still renders one empty unlabeled series, so registered
    families are always present in the exposition.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS) -> None:
        super().__init__(name, help)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError("duplicate bucket bounds")
        self.bounds = bounds
        self._series: dict[tuple, _HistogramSeries] = {}

    def _series_for(self, labels: dict) -> _HistogramSeries:
        if "le" in labels:
            raise ValueError("'le' is reserved for the bucket label")
        key = _labels_key(labels)
        series = self._series.get(key)
        if series is None:
            series = _HistogramSeries(dict(labels), len(self.bounds))
            self._series[key] = series
        return series

    def observe(self, value: float, **labels) -> None:
        value = float(value)
        with self._lock:
            series = self._series_for(labels)
            series.sum += value
            series.count += 1
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    series.counts[index] += 1
                    return
            series.counts[-1] += 1

    @property
    def count(self) -> int:
        """Total observations across every series."""
        with self._lock:
            return sum(series.count for series in self._series.values())

    @property
    def sum(self) -> float:
        """Total observed value across every series."""
        with self._lock:
            return sum(series.sum for series in self._series.values())

    def quantile(self, q: float, **labels) -> float | None:
        """Estimate quantile ``q`` by interpolating within bucket bounds.

        With labels, only that series is consulted; without, every series in
        the family is merged first (the family shares one set of bounds, so
        counts sum directly).  Returns ``None`` for an empty histogram.
        """
        with self._lock:
            if labels:
                series = self._series.get(_labels_key(labels))
                counts = (list(series.counts) if series
                          else [0] * (len(self.bounds) + 1))
            else:
                counts = [0] * (len(self.bounds) + 1)
                for series in self._series.values():
                    for index, count in enumerate(series.counts):
                        counts[index] += count
        return quantile_from_counts(self.bounds, counts, q)

    def snapshot(self, **labels) -> dict:
        """Cumulative bucket counts (keyed by ``le``) for one series."""
        with self._lock:
            series = self._series.get(_labels_key(labels))
            counts = list(series.counts) if series else [0] * (len(self.bounds) + 1)
            total = series.count if series else 0
            total_sum = series.sum if series else 0.0
        cumulative: dict[str, int] = {}
        running = 0
        for bound, count in zip(self.bounds, counts):
            running += count
            cumulative[format_value(bound)] = running
        cumulative["+Inf"] = total
        return {"buckets": cumulative, "sum": total_sum, "count": total}

    def render(self) -> list[str]:
        with self._lock:
            all_series = [self._series[key] for key in sorted(self._series)]
        if not all_series:
            all_series = [_HistogramSeries({}, len(self.bounds))]
        lines: list[str] = []
        for series in all_series:
            running = 0
            for bound, count in zip(self.bounds, series.counts):
                running += count
                merged = dict(series.labels)
                merged["le"] = format_value(bound)
                lines.append(f"{self.name}_bucket{_render_labels(merged)} "
                             f"{running}")
            merged = dict(series.labels)
            merged["le"] = "+Inf"
            lines.append(f"{self.name}_bucket{_render_labels(merged)} "
                         f"{series.count}")
            label_text = _render_labels(series.labels)
            lines.append(f"{self.name}_sum{label_text} "
                         f"{format_value(series.sum)}")
            lines.append(f"{self.name}_count{label_text} {series.count}")
        return lines


def render_families(instruments) -> str:
    """Render instruments as exposition text, in the order given."""
    lines: list[str] = []
    for instrument in instruments:
        lines.append(f"# HELP {instrument.name} {escape_help(instrument.help)}")
        lines.append(f"# TYPE {instrument.name} {instrument.kind}")
        lines.extend(instrument.render())
    return "\n".join(lines) + "\n"


class MetricsRegistry:
    """Named instruments rendered together as one exposition document.

    Creation is idempotent: asking for an existing name returns the existing
    instrument (kind mismatches raise).  Registration order is preserved so
    callers can pin, say, an ``_info`` family first.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, _Instrument] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}")
                return existing
            instrument = cls(name, help, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS,
                  ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> _Instrument | None:
        with self._lock:
            return self._instruments.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return list(self._instruments)

    def histograms(self) -> list[Histogram]:
        with self._lock:
            return [inst for inst in self._instruments.values()
                    if isinstance(inst, Histogram)]

    def render(self, first: tuple[str, ...] = ()) -> str:
        """Exposition text; families named in ``first`` lead the document."""
        with self._lock:
            ordered = [self._instruments[name] for name in first
                       if name in self._instruments]
            ordered.extend(inst for name, inst in self._instruments.items()
                           if name not in first)
        return render_families(ordered)


# ----------------------------------------------------------- default registry

#: Process-wide registry for instrumentation that has no obvious owner (the
#: intra-job parallel schemes increment their cube/pipeline counters here).
#: Servers keep constructing their own registries; this one exists so library
#: code can count without threading a registry through every call site.
_DEFAULT_REGISTRY: MetricsRegistry | None = None
_DEFAULT_LOCK = threading.Lock()


def default_registry() -> MetricsRegistry:
    """The lazily created process-wide :class:`MetricsRegistry`."""
    global _DEFAULT_REGISTRY
    with _DEFAULT_LOCK:
        if _DEFAULT_REGISTRY is None:
            _DEFAULT_REGISTRY = MetricsRegistry()
        return _DEFAULT_REGISTRY
