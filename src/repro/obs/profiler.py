"""On-demand wall-clock sampling profiler over ``sys._current_frames``.

A :class:`SamplingProfiler` runs a daemon thread that snapshots every other
thread's Python stack at a fixed interval and aggregates the snapshots into
collapsed stacks -- the ``outer;middle;leaf count`` text format flamegraph
tooling consumes -- plus a self/total top-function table.  Attaching costs
one thread and a few stack walks per interval, nothing when idle, and no
interpreter instrumentation: it is safe to point at a *live, loaded*
worker, which is exactly what ``POST /v1/admin/profile?seconds=N`` does.

The profiler sees wall-clock time, not CPU time: a thread blocked in a
lock or a ``select`` shows up in proportion to how long it sat there.  For
this repository that is the right lens -- the question "where do my
seconds go?" includes the time the pure-Python CDCL loops spend, and the
answer names SAT-core frames like ``solver.propagate`` directly.
"""

from __future__ import annotations

import sys
import threading
import time
from pathlib import Path

__all__ = ["SamplingProfiler", "profile"]

#: Hard ceiling on one profiling run, seconds (the admin endpoint clamps).
MAX_PROFILE_SECONDS = 60.0
#: Stack frames kept per sample (innermost); deeper stacks are truncated.
MAX_DEPTH = 64


def _frame_label(frame) -> str:
    """``module.function`` for one frame (file stem, not the full path)."""
    code = frame.f_code
    return f"{Path(code.co_filename).stem}.{code.co_name}"


class SamplingProfiler:
    """Sample all thread stacks on an interval; aggregate collapsed stacks.

    Use as a context manager or via :meth:`start` / :meth:`stop`::

        with SamplingProfiler(interval=0.005) as profiler:
            do_expensive_work()
        print(profiler.collapsed_text())
    """

    def __init__(self, interval: float = 0.005) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = float(interval)
        self.samples = 0  # snapshot rounds taken
        self.stacks_sampled = 0  # thread stacks aggregated
        self._collapsed: dict[str, int] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        #: Thread idents never sampled: the sampler itself plus whoever
        #: started it (their stacks would just show this module waiting).
        self._excluded: set[int] = set()

    # ------------------------------------------------------------- lifecycle

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        caller = threading.get_ident()
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name="repro-profiler")
        self._excluded = {caller}
        self._thread.start()
        self._excluded.add(self._thread.ident)
        return self

    def stop(self) -> "SamplingProfiler":
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -------------------------------------------------------------- sampling

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self._sample_once()

    def _sample_once(self) -> None:
        frames = sys._current_frames()
        with self._lock:
            self.samples += 1
            for ident, frame in frames.items():
                if ident in self._excluded:
                    continue
                labels: list[str] = []
                while frame is not None and len(labels) < MAX_DEPTH:
                    labels.append(_frame_label(frame))
                    frame = frame.f_back
                if not labels:
                    continue
                stack = ";".join(reversed(labels))  # outermost first
                self._collapsed[stack] = self._collapsed.get(stack, 0) + 1
                self.stacks_sampled += 1

    # --------------------------------------------------------------- queries

    def collapsed(self) -> dict[str, int]:
        """``outer;...;leaf`` -> sample count."""
        with self._lock:
            return dict(self._collapsed)

    def collapsed_text(self) -> str:
        """The ``flamegraph.pl`` input format, hottest stacks first."""
        collapsed = self.collapsed()
        return "\n".join(f"{stack} {count}" for stack, count
                         in sorted(collapsed.items(),
                                   key=lambda item: (-item[1], item[0])))

    def top(self, limit: int = 15) -> list[dict]:
        """Per-function sample counts: ``self`` (on top) and ``total``."""
        self_counts: dict[str, int] = {}
        total_counts: dict[str, int] = {}
        for stack, count in self.collapsed().items():
            labels = stack.split(";")
            self_counts[labels[-1]] = self_counts.get(labels[-1], 0) + count
            for label in set(labels):
                total_counts[label] = total_counts.get(label, 0) + count
        ranked = sorted(total_counts,
                        key=lambda label: (-self_counts.get(label, 0),
                                           -total_counts[label], label))
        return [{"frame": label, "self": self_counts.get(label, 0),
                 "total": total_counts[label]}
                for label in ranked[:max(0, limit)]]

    def report(self, seconds: float | None = None) -> dict:
        """The JSON payload the profile endpoint returns."""
        return {
            "interval": self.interval,
            "seconds": seconds,
            "samples": self.samples,
            "stacks_sampled": self.stacks_sampled,
            "collapsed": self.collapsed(),
            "collapsed_text": self.collapsed_text(),
            "top": self.top(),
        }


def profile(seconds: float, interval: float = 0.005) -> dict:
    """Profile every other thread for ``seconds``; returns the report dict.

    Blocks the calling thread for the duration (run it in an executor when
    serving), and never samples the calling thread itself.
    """
    seconds = min(max(0.05, float(seconds)), MAX_PROFILE_SECONDS)
    profiler = SamplingProfiler(interval=interval)
    with profiler:
        time.sleep(seconds)
    return profiler.report(seconds=seconds)
