"""``repro top``: a live terminal dashboard over the serving endpoints.

The dashboard is deliberately curses-free: each refresh polls
``/v1/stats`` and ``/v1/slo``, normalises whichever payload shape answered
(a single :class:`~repro.server.app.RoutingGateway` or a
:class:`~repro.cluster.dispatcher.ClusterDispatcher` fleet), renders one
plain-text frame, and repaints the terminal with an ANSI clear.  Plain
text keeps the renderer a pure function of the snapshot -- trivially
testable, pipeable to a file, and usable over the dumbest of terminals.

Per shard it shows liveness, restart count, queue depth (open jobs),
throughput, cache hit rate, and the windowed p50/p95/p99 straight from the
SLO tracker's CDFs; the header summarises fleet totals and every declared
objective's error-budget status.
"""

from __future__ import annotations

import sys
import time

__all__ = ["normalize_snapshot", "render_dashboard", "run_top"]

#: ANSI: clear screen, home cursor.  Repainting beats scrolling for a top.
CLEAR = "\x1b[2J\x1b[H"

_ROW_COLUMNS = ("shard", "alive", "restarts", "open", "qps", "hit%",
                "p50", "p95", "p99", "requests", "errors")


def _fmt_latency(value) -> str:
    """Seconds -> compact human units (``850ms``, ``2.41s``)."""
    if value is None:
        return "-"
    if value < 1.0:
        return f"{value * 1000.0:.0f}ms"
    return f"{value:.2f}s"


def _fmt_percent(value) -> str:
    return "-" if value is None else f"{value * 100.0:.1f}"


def _fmt_count(value) -> str:
    return "-" if value is None else str(int(value))


def _slo_view(slo_status: dict | None) -> dict | None:
    """Quantile/objective summary from one SLO status payload (or ``None``)."""
    if not isinstance(slo_status, dict):
        return None
    star = (slo_status.get("routes") or {}).get("*") or {}
    return {
        "ok": slo_status.get("ok"),
        "objectives": slo_status.get("objectives") or [],
        "p50": star.get("p50"),
        "p95": star.get("p95"),
        "p99": star.get("p99"),
        "requests": star.get("requests"),
        "errors": star.get("errors"),
    }


def _shard_row(label: str, stats: dict | None, slo_status: dict | None,
               alive: bool = True, restarts: int = 0) -> dict:
    """One normalised per-shard table row."""
    stats = stats if isinstance(stats, dict) else {}
    cache = stats.get("cache") or {}
    view = _slo_view(slo_status) or {}
    return {
        "shard": label,
        "alive": alive,
        "restarts": restarts,
        "open": stats.get("jobs_open"),
        "qps": stats.get("throughput"),
        "hit_rate": cache.get("hit_rate"),
        "p50": view.get("p50"),
        "p95": view.get("p95"),
        "p99": view.get("p99"),
        "requests": view.get("requests"),
        "errors": view.get("errors"),
    }


def normalize_snapshot(stats: dict, slo: dict | None = None) -> dict:
    """Fold either payload shape (gateway or fleet) into one dashboard model.

    A gateway answers ``/v1/stats`` with a flat dict; a dispatcher nests
    ``{"fleet": ..., "totals": ..., "shards": {...}}`` and its ``/v1/slo``
    nests ``{"fleet": merged, "shards": {...}}`` likewise.
    """
    stats = stats if isinstance(stats, dict) else {}
    fleet = "shards" in stats and "fleet" in stats
    if not fleet:
        return {
            "fleet": False,
            "uptime": stats.get("uptime"),
            "draining": bool(stats.get("draining")),
            "workers": 1,
            "workers_alive": 1,
            "totals": {
                "jobs_open": stats.get("jobs_open"),
                "jobs_known": stats.get("jobs_known"),
                "throughput": stats.get("throughput"),
            },
            "slo": _slo_view(slo),
            "rows": [_shard_row("-", stats, slo)],
        }

    section = stats.get("fleet") or {}
    totals = stats.get("totals") or {}
    detail = {str(worker.get("shard")): worker
              for worker in section.get("worker_detail") or []}
    shard_slo = (slo or {}).get("shards") or {}
    rows = []
    for label in sorted(stats.get("shards") or {}, key=lambda k: (len(k), k)):
        worker = detail.get(label, {})
        rows.append(_shard_row(
            label, (stats.get("shards") or {}).get(label),
            shard_slo.get(label),
            alive=bool(worker.get("alive", True)),
            restarts=int(worker.get("restarts", 0))))
    return {
        "fleet": True,
        "uptime": section.get("uptime"),
        "draining": bool(section.get("draining")),
        "workers": section.get("workers"),
        "workers_alive": section.get("workers_alive"),
        "totals": {
            "jobs_open": totals.get("jobs_open"),
            "jobs_known": totals.get("jobs_known"),
            "throughput": totals.get("throughput"),
        },
        "slo": _slo_view((slo or {}).get("fleet")),
        "rows": rows,
    }


def _format_row(cells: list[str], widths: list[int]) -> str:
    return "  ".join(cell.rjust(width) if index else cell.ljust(width)
                     for index, (cell, width) in enumerate(zip(cells, widths)))


def render_dashboard(snapshot: dict, title: str = "repro top") -> str:
    """One dashboard frame as plain text (pure function of the snapshot)."""
    totals = snapshot.get("totals") or {}
    state = "DRAINING" if snapshot.get("draining") else "serving"
    uptime = snapshot.get("uptime")
    lines = [
        f"{title} -- {state}"
        + (f", up {uptime:.0f}s" if isinstance(uptime, (int, float)) else "")
        + (f", workers {snapshot.get('workers_alive')}/"
           f"{snapshot.get('workers')}" if snapshot.get("fleet") else ""),
        f"jobs open {_fmt_count(totals.get('jobs_open'))}"
        f"  known {_fmt_count(totals.get('jobs_known'))}"
        f"  throughput {totals.get('throughput') if totals.get('throughput') is not None else '-'}/s",
    ]

    slo = snapshot.get("slo")
    if slo is not None:
        for entry in slo["objectives"]:
            verdict = "OK" if entry.get("ok") else "BREACH"
            latency = _fmt_latency(entry.get("latency"))
            target = _fmt_latency(entry.get("latency_target"))
            lines.append(
                f"slo [{entry.get('route', '*')}] "
                f"{entry.get('quantile_label', '?')} {latency}"
                f" (target {target})"
                f"  avail {_fmt_percent(entry.get('availability'))}%"
                f" (floor {_fmt_percent(entry.get('availability_target'))}%)"
                f"  burn {entry.get('error_budget_burn_rate', '-')}"
                f"  {verdict}")
    lines.append("")

    table = [list(_ROW_COLUMNS)]
    for row in snapshot.get("rows") or []:
        table.append([
            str(row["shard"]),
            "up" if row["alive"] else "DOWN",
            str(row["restarts"]),
            _fmt_count(row["open"]),
            "-" if row["qps"] is None else f"{row['qps']:.2f}",
            _fmt_percent(row["hit_rate"]),
            _fmt_latency(row["p50"]),
            _fmt_latency(row["p95"]),
            _fmt_latency(row["p99"]),
            _fmt_count(row["requests"]),
            _fmt_count(row["errors"]),
        ])
    widths = [max(len(line[index]) for line in table)
              for index in range(len(_ROW_COLUMNS))]
    lines.extend(_format_row(cells, widths) for cells in table)
    return "\n".join(lines) + "\n"


def run_top(client, interval: float = 2.0, iterations: int | None = None,
            stream=None, clear: bool = True, clock=time.sleep) -> int:
    """Poll ``client`` and repaint until interrupted; returns frames drawn.

    ``client`` is anything with ``stats()`` and ``slo()`` methods (a
    :class:`~repro.server.client.RoutingClient`).  ``iterations`` bounds
    the loop for tests and one-shot captures (``repro top --once``); a
    polling error renders as a banner and the loop keeps trying, so a
    restarting fleet does not kill the dashboard.
    """
    stream = stream if stream is not None else sys.stdout
    frames = 0
    while iterations is None or frames < iterations:
        try:
            stats = client.stats()
            try:
                slo = client.slo()
            except Exception:
                slo = None
            frame = render_dashboard(normalize_snapshot(stats, slo))
        except KeyboardInterrupt:
            break
        except Exception as exc:
            frame = f"repro top -- unreachable: {exc}\n"
        if clear:
            stream.write(CLEAR)
        stream.write(frame)
        stream.flush()
        frames += 1
        if iterations is not None and frames >= iterations:
            break
        try:
            clock(interval)
        except KeyboardInterrupt:
            break
    return frames
