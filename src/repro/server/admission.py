"""Admission control for the routing gateway: token buckets + backpressure.

Overload must degrade gracefully, not catastrophically: a routing solve can
burn seconds of CPU, so the gateway refuses work it cannot schedule soon
rather than queueing unboundedly.  Two independent gates run on every
submission, before any parsing or hashing:

* **Per-client token bucket** -- each client (the ``X-Client-Id`` header, or
  the peer address when absent) gets a bucket holding ``burst`` tokens that
  refills at ``rate`` tokens/second.  A submission costs one token; an empty
  bucket means HTTP 429 with a ``Retry-After`` telling the client exactly
  when a token will be available.  One greedy client therefore cannot starve
  the rest.
* **Global backpressure** -- when more than ``max_pending`` jobs are already
  queued or running, *every* client gets 429 until the backlog drains.  This
  bounds gateway memory and keeps queueing latency honest.

Clocks are injectable so the tests drive time deterministically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

#: Buckets tracked at most; beyond this, idle (full) buckets are pruned.
MAX_TRACKED_CLIENTS = 4096


@dataclass(frozen=True)
class AdmissionDecision:
    """The outcome of one admission check."""

    allowed: bool
    reason: str = "ok"  # "ok" | "quota" | "backpressure"
    retry_after: float = 0.0  # seconds; meaningful when not allowed

    def __bool__(self) -> bool:
        return self.allowed


class TokenBucket:
    """The classic token bucket: ``burst`` capacity, ``rate`` tokens/sec."""

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.burst,
                           self._tokens + (now - self._updated) * self.rate)
        self._updated = now

    def try_acquire(self, cost: float = 1.0) -> float:
        """Take ``cost`` tokens; returns 0.0 on success, else seconds to wait."""
        self._refill()
        if self._tokens >= cost:
            self._tokens -= cost
            return 0.0
        return (cost - self._tokens) / self.rate

    @property
    def available(self) -> float:
        self._refill()
        return self._tokens


class AdmissionController:
    """Per-client quotas plus a global pending-work bound.

    Parameters
    ----------
    rate / burst:
        Token-bucket parameters applied to every client individually.
    max_pending:
        Submissions are refused while this many jobs are already queued or
        running (``None`` disables backpressure).
    clock:
        Injectable monotonic clock (tests).
    """

    def __init__(self, rate: float = 20.0, burst: float = 40.0,
                 max_pending: int | None = 256,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if max_pending is not None and max_pending <= 0:
            raise ValueError("max_pending must be positive (or None)")
        self.rate = float(rate)
        self.burst = float(burst)
        self.max_pending = max_pending
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self.admitted = 0
        self.rejected: dict[str, int] = {"quota": 0, "backpressure": 0}

    def _bucket(self, client_id: str) -> TokenBucket:
        bucket = self._buckets.get(client_id)
        if bucket is None:
            if len(self._buckets) >= MAX_TRACKED_CLIENTS:
                self._prune()
            bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
            self._buckets[client_id] = bucket
        return bucket

    def _prune(self) -> None:
        """Drop buckets that have refilled completely (idle clients)."""
        for key in [key for key, bucket in self._buckets.items()
                    if bucket.available >= bucket.burst]:
            del self._buckets[key]

    def admit(self, client_id: str = "anonymous",
              pending: int = 0) -> AdmissionDecision:
        """Decide one submission from ``client_id`` with ``pending`` open jobs."""
        if self.max_pending is not None and pending >= self.max_pending:
            self.rejected["backpressure"] += 1
            # The backlog drains at solver speed, which we cannot predict;
            # one second is a sane client re-poll interval.
            return AdmissionDecision(False, "backpressure", retry_after=1.0)
        retry_after = self._bucket(client_id).try_acquire()
        if retry_after > 0.0:
            self.rejected["quota"] += 1
            return AdmissionDecision(False, "quota",
                                     retry_after=round(retry_after, 3))
        self.admitted += 1
        return AdmissionDecision(True)

    def stats(self) -> dict:
        return {
            "admitted": self.admitted,
            "rejected_quota": self.rejected["quota"],
            "rejected_backpressure": self.rejected["backpressure"],
            "clients": len(self._buckets),
            "rate": self.rate,
            "burst": self.burst,
            "max_pending": self.max_pending if self.max_pending is not None else 0,
        }
