"""Minimal HTTP/1.1 plumbing shared by the gateway and the cluster dispatcher.

One request per connection, ``Connection: close``, bodies framed by
``Content-Length`` -- all a JSON API needs, and all stdlib.  Three pieces:

* :func:`read_request` -- parse one request off an ``asyncio.StreamReader``
  (request line, headers, body, split query string).
* :func:`write_response` -- serialise one response onto a StreamWriter.
* :func:`fetch` -- a tiny *client*: open a connection, send one request,
  read the full response.  This is how the cluster dispatcher
  (:mod:`repro.cluster.dispatcher`) proxies submissions to its shard
  workers without leaving the event loop.

Extracted from :mod:`repro.server.app` so the dispatcher front-end speaks
byte-identical HTTP to the single-process gateway.
"""

from __future__ import annotations

import asyncio
import urllib.parse

from repro.server import protocol

#: Hard cap on request body size (canonical QASM for big circuits is ~1 MB).
MAX_BODY_BYTES = 8 * 1024 * 1024
#: Seconds a request may take to arrive before the connection is dropped.
READ_TIMEOUT = 30.0
#: Most header lines accepted per request.
MAX_HEADERS = 100

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 409: "Conflict", 413: "Payload Too Large",
            429: "Too Many Requests", 500: "Internal Server Error",
            502: "Bad Gateway", 503: "Service Unavailable"}


async def read_request(reader: asyncio.StreamReader):
    """Parse one request; returns ``(method, path, query, headers, body)``.

    Returns ``None`` on an empty request line (client connected and went
    away); raises :class:`~repro.server.protocol.ProtocolError` on anything
    malformed.  Header names are lower-cased; the query dict keeps the last
    value of each repeated key.
    """
    try:
        request_line = await reader.readline()
    except ValueError:  # line over the StreamReader limit
        raise protocol.ProtocolError("request line too long") from None
    if not request_line.strip():
        return None
    try:
        method, target, _ = request_line.decode("latin-1").split(None, 2)
    except ValueError:
        raise protocol.ProtocolError("malformed request line") from None
    headers: dict[str, str] = {}
    while True:
        try:
            line = await reader.readline()
        except ValueError:
            raise protocol.ProtocolError("header line too long") from None
        if line in (b"\r\n", b"\n", b""):
            break
        if len(headers) >= MAX_HEADERS:
            raise protocol.ProtocolError("too many headers")
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise protocol.ProtocolError("bad Content-Length") from None
    if length < 0:
        raise protocol.ProtocolError("bad Content-Length")
    if length > MAX_BODY_BYTES:
        raise protocol.ProtocolError("request body too large",
                                     http_status=413)
    body = await reader.readexactly(length) if length else b""
    parsed = urllib.parse.urlsplit(target)
    query = {key: values[-1] for key, values
             in urllib.parse.parse_qs(parsed.query).items()}
    return method.upper(), parsed.path, query, headers, body


async def write_response(writer: asyncio.StreamWriter, status: int,
                         body: bytes, content_type: str,
                         extra_headers: dict) -> None:
    """Send one ``Connection: close`` response and flush it."""
    head = [f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close"]
    for name, value in extra_headers.items():
        head.append(f"{name}: {value}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
    await writer.drain()


async def fetch(host: str, port: int, method: str, path: str,
                body: bytes = b"", headers: dict | None = None,
                timeout: float = 30.0):
    """One client-side request: returns ``(status, headers, body)``.

    Raises ``OSError``/``ConnectionError`` when the peer is unreachable and
    ``asyncio.TimeoutError`` when it stalls -- the dispatcher maps both onto
    a worker-health event.  The response body is framed by Content-Length
    when present, else read to EOF (the gateway always sends a length).
    """

    async def _roundtrip():
        reader, writer = await asyncio.open_connection(host, port)
        try:
            head = [f"{method} {path} HTTP/1.1",
                    f"Host: {host}:{port}",
                    f"Content-Length: {len(body)}",
                    "Connection: close"]
            for name, value in (headers or {}).items():
                head.append(f"{name}: {value}")
            writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
                         + body)
            await writer.drain()
            status_line = await reader.readline()
            parts = status_line.decode("latin-1").split(None, 2)
            if len(parts) < 2 or not parts[1].isdigit():
                raise ConnectionError(f"malformed status line {status_line!r}")
            status = int(parts[1])
            response_headers: dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                response_headers[name.strip().lower()] = value.strip()
            length_text = response_headers.get("content-length")
            if length_text is not None:
                payload = await reader.readexactly(int(length_text))
            else:
                payload = await reader.read()
            return status, response_headers, payload
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    return await asyncio.wait_for(_roundtrip(), timeout)
