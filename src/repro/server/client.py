"""A small blocking client for the routing gateway.

:class:`RoutingClient` wraps the wire protocol behind library-shaped calls:
submit a circuit, long-poll for completion, get a full
:class:`~repro.core.result.RoutingResult` back (routed circuit included).
It is stdlib-only (``http.client``), one connection per request -- matching
the gateway's ``Connection: close`` HTTP -- and is what the CLI's ``submit``
subcommand, the examples, and the tests use.

Typical round trip::

    from repro.server import RoutingClient

    client = RoutingClient(port=8037)
    ticket = client.submit(circuit, architecture="tokyo8",
                           router="satmap:slice_size=25", time_budget=5)
    result = client.wait(ticket["job_id"], timeout=60)
    print(result.summary())

Overload is retried, not surfaced: a 429 (and a 503 carrying a
``Retry-After`` hint, which is how the fleet dispatcher answers while a
crashed shard worker restarts) is re-attempted up to ``retry_quota`` times
with capped exponential backoff seeded by the server's own hint, plus
jitter so a burst of clients does not re-stampede in lockstep.  Connection
failures get the same treatment, which makes the client ride out a worker
restart transparently.  Once the quota is exhausted,
:class:`QuotaExceededError` (or :class:`ServerError`) surfaces as before;
``retry_quota=0`` restores fail-fast behaviour.

Against a fleet dispatcher (:class:`repro.cluster.ClusterDispatcher`) the
client is shard-aware: :meth:`cluster` fetches the topology and
:meth:`shard_for` predicts the worker shard a job id lives on from the same
consistent-hash ring the dispatcher uses.
"""

from __future__ import annotations

import http.client
import json
import random
import time
import urllib.parse
from typing import Any

from repro.core.result import RoutingResult
from repro.hardware.architecture import Architecture
from repro.server import protocol


class ServerError(RuntimeError):
    """A non-2xx response from the gateway.

    ``retry_after`` carries the response's ``Retry-After`` hint in seconds
    when one was sent (a fleet dispatcher answers 503 + ``Retry-After``
    while a crashed shard worker restarts), else ``None``.
    """

    def __init__(self, status: int, payload: Any,
                 retry_after: float | None = None) -> None:
        message = payload.get("error") if isinstance(payload, dict) else str(payload)
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload
        self.retry_after = retry_after


class QuotaExceededError(ServerError):
    """HTTP 429: admission control refused the submission.

    ``retry_after`` is the server's hint, in seconds, for when to retry.
    """

    def __init__(self, status: int, payload: Any, retry_after: float) -> None:
        super().__init__(status, payload)
        self.retry_after = retry_after


class RoutingClient:
    """Blocking HTTP client for a :class:`~repro.server.app.RoutingGateway`.

    Parameters
    ----------
    host / port:
        Gateway address (see also :meth:`from_url`).
    client_id:
        Sent as ``X-Client-Id``; admission quotas are tracked per client id
        (falling back to the peer address when unset).
    timeout:
        Socket timeout per request, seconds.  Long polls add their wait on
        top of this.
    retry_quota:
        How many times one request may be retried after a retryable refusal
        (429, 503 with a ``Retry-After``, or a connection failure) before
        the error surfaces.  ``0`` fails fast, as the client always did.
    backoff_base / backoff_cap:
        Exponential backoff schedule, seconds: attempt *k* sleeps roughly
        ``max(server_hint, backoff_base * 2**k)`` capped at ``backoff_cap``,
        plus up to 25% random jitter so synchronised clients desynchronise.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8037,
                 client_id: str | None = None, timeout: float = 60.0,
                 retry_quota: int = 2, backoff_base: float = 0.2,
                 backoff_cap: float = 10.0,
                 _rng: random.Random | None = None) -> None:
        if retry_quota < 0:
            raise ValueError("retry_quota must be >= 0")
        if backoff_base <= 0 or backoff_cap <= 0:
            raise ValueError("backoff parameters must be positive")
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout = timeout
        self.retry_quota = retry_quota
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.retries = 0  # total retry sleeps performed, for tests/telemetry
        self._rng = _rng if _rng is not None else random.Random()
        self._ring = None  # lazily built from /v1/cluster topology

    @classmethod
    def from_url(cls, url: str, client_id: str | None = None,
                 timeout: float = 60.0, **kwargs: Any) -> "RoutingClient":
        """Build a client from ``http://host:port`` (path/scheme extras ignored)."""
        parsed = urllib.parse.urlsplit(url if "//" in url else f"//{url}")
        if not parsed.hostname:
            raise ValueError(f"cannot parse gateway URL {url!r}")
        return cls(host=parsed.hostname, port=parsed.port or 8037,
                   client_id=client_id, timeout=timeout, **kwargs)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -------------------------------------------------------------- plumbing

    def _backoff_delay(self, attempt: int, hint: float | None) -> float:
        """Seconds to sleep before retry ``attempt`` (0-based).

        The server's ``Retry-After`` hint is a floor (it knows when a token
        refills or a worker respawns); the exponential schedule takes over
        when the hint is absent or optimistic, the cap bounds the total
        stall, and the jitter spreads a synchronised burst of clients back
        out over time.
        """
        delay = max(hint or 0.0, self.backoff_base * (2.0 ** attempt))
        delay = min(self.backoff_cap, delay)
        return delay * (1.0 + 0.25 * self._rng.random())

    def _request(self, method: str, path: str, payload: dict | None = None,
                 timeout: float | None = None) -> Any:
        """One logical request, with retry on 429/503-Retry-After/conn-reset."""
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, payload=payload,
                                          timeout=timeout)
            except QuotaExceededError as error:
                if attempt >= self.retry_quota:
                    raise
                hint = error.retry_after
            except ServerError as error:
                # Only a 503 that carries a Retry-After hint is a promise
                # the condition is transient (shard restarting); a plain
                # 503 (e.g. "draining") is final.
                if (error.status != 503 or error.retry_after is None
                        or attempt >= self.retry_quota):
                    raise
                hint = error.retry_after
            except (ConnectionError, TimeoutError, OSError,
                    http.client.HTTPException):
                # The listener vanished mid-request -- e.g. the exact moment
                # a worker is being restarted.  Submissions are idempotent
                # (content-addressed job ids) and reads are safe to repeat.
                if attempt >= self.retry_quota:
                    raise
                hint = None
            self.retries += 1
            time.sleep(self._backoff_delay(attempt, hint))
            attempt += 1

    def _request_once(self, method: str, path: str,
                      payload: dict | None = None,
                      timeout: float | None = None) -> Any:
        connection = http.client.HTTPConnection(
            self.host, self.port,
            timeout=timeout if timeout is not None else self.timeout)
        headers = {"Connection": "close"}
        if self.client_id is not None:
            headers["X-Client-Id"] = self.client_id
        body = None
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            status = response.status
            content_type = response.getheader("Content-Type", "")
            retry_after = response.getheader("Retry-After")
        finally:
            connection.close()
        if content_type.startswith("application/json"):
            decoded: Any = json.loads(raw.decode("utf-8")) if raw else {}
        else:
            decoded = raw.decode("utf-8", errors="replace")
        if status == 429:
            raise QuotaExceededError(status, decoded,
                                     retry_after=float(retry_after or 1.0))
        if status >= 400:
            try:
                hint = float(retry_after) if retry_after is not None else None
            except ValueError:  # pragma: no cover - malformed header
                hint = None
            raise ServerError(status, decoded, retry_after=hint)
        if isinstance(decoded, dict):
            version = decoded.get("wire_version")
            if version != protocol.WIRE_VERSION:
                raise ServerError(status, {
                    "error": f"server speaks wire_version {version!r}, "
                             f"client speaks {protocol.WIRE_VERSION}"})
        return decoded

    # ------------------------------------------------------------- inquiries

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def slo(self) -> dict:
        """The rolling-window SLO evaluation from ``/v1/slo``.

        A gateway answers its own status; a dispatcher answers
        ``{"fleet": <merged>, "shards": {...}}``.
        """
        return self._request("GET", "/v1/slo")

    def events(self, limit: int = 50, level: str | None = None,
               event: str | None = None) -> dict:
        """Tail the structured event log (``events`` + per-level counts)."""
        params = {"limit": str(int(limit))}
        if level is not None:
            params["level"] = level
        if event is not None:
            params["event"] = event
        return self._request(
            "GET", "/v1/events?" + urllib.parse.urlencode(params))

    def profile(self, seconds: float = 1.0, shard: int | None = None,
                interval: float | None = None) -> dict:
        """Run the sampling profiler for ``seconds``; returns the report.

        Against a dispatcher, ``shard`` profiles one worker; ``None``
        profiles the whole fleet (dispatcher plus every live shard).
        The call blocks for the sampling window plus transit.
        """
        params = {"seconds": f"{float(seconds):g}"}
        if interval is not None:
            params["interval"] = f"{float(interval):g}"
        if shard is not None:
            params["shard"] = str(int(shard))
        return self._request(
            "POST", "/v1/admin/profile?" + urllib.parse.urlencode(params),
            timeout=max(self.timeout, float(seconds) + 30.0))

    def metrics_text(self) -> str:
        """The raw Prometheus text of ``/metrics``."""
        return self._request("GET", "/metrics")

    def routers(self, capability: str | None = None) -> list[dict]:
        path = "/v1/routers"
        if capability:
            path += "?" + urllib.parse.urlencode({"capability": capability})
        return self._request("GET", path)["routers"]

    def devices(self) -> list[dict]:
        return self._request("GET", "/v1/devices")["devices"]

    def architectures(self) -> list[str]:
        """Names the gateway resolves in submit requests."""
        return self._request("GET", "/v1/devices")["architectures"]

    def jobs(self) -> list[dict]:
        return self._request("GET", "/v1/jobs")["jobs"]

    # --------------------------------------------------------- fleet topology

    def cluster(self) -> dict:
        """Fleet topology from a dispatcher's ``/v1/cluster``.

        Raises :class:`ServerError` (404) against a plain single-process
        gateway, which has no fleet behind it.
        """
        return self._request("GET", "/v1/cluster")

    def shard_for(self, job_id: str) -> Any:
        """Predict which shard owns ``job_id``, from the dispatcher's ring.

        Builds a client-side replica of the dispatcher's consistent-hash
        ring (same shard ids, same replica count -- the construction is
        deterministic) on first use and caches it.  Call
        :meth:`refresh_cluster` after fleet topology changes.
        """
        if self._ring is None:
            self.refresh_cluster()
        return self._ring.shard_for(job_id)

    def refresh_cluster(self) -> dict:
        """Re-fetch ``/v1/cluster`` and rebuild the client-side ring."""
        from repro.cluster.hashring import HashRing

        topology = self.cluster()
        ring = topology.get("ring", {})
        shards = ring.get("shards") or [0]
        self._ring = HashRing(shards, replicas=int(ring.get("replicas", 64)))
        return topology

    # ------------------------------------------------------------- job flow

    def submit(self, circuit: Any, architecture: Architecture | str = "tokyo",
               router: Any = "satmap", name: str | None = None,
               time_budget: float | None = None) -> dict:
        """Submit one routing job; returns the status ticket.

        The ticket's ``job_id`` is the job's content hash;
        ``ticket["deduplicated"]`` says whether the gateway matched it to an
        already-known job instead of scheduling a new solve.  Raises
        :class:`QuotaExceededError` on 429.
        """
        payload = protocol.submit_payload(circuit, architecture, router=router,
                                          name=name, time_budget=time_budget)
        return self._request("POST", "/v1/jobs", payload=payload)

    def status(self, job_id: str, wait: float | None = None,
               include_result: bool = False) -> dict:
        """Job status; ``wait`` long-polls up to that many seconds."""
        query = {}
        if wait is not None:
            query["wait"] = f"{wait:.3f}"
        if include_result:
            query["include_result"] = "1"
        path = f"/v1/jobs/{job_id}"
        if query:
            path += "?" + urllib.parse.urlencode(query)
        timeout = self.timeout + (wait or 0.0)
        return self._request("GET", path, timeout=timeout)

    def result(self, job_id: str) -> RoutingResult:
        """The finished job's result, rebuilt into a :class:`RoutingResult`.

        A job that finished with a server-side error has no result payload;
        that surfaces as :class:`ServerError` carrying the error message.
        """
        payload = self._request("GET", f"/v1/jobs/{job_id}/result")
        if "result" not in payload:
            message = payload.get("error") or "job finished without a result"
            raise ServerError(500, {"error": message})
        return protocol.result_from_wire(payload["result"])

    def trace(self, job_id: str) -> dict:
        """The job's span tree from ``/v1/jobs/{id}/trace``.

        Returns the envelope payload: ``trace`` is the recursive span dict
        and ``rendered`` the server's indented text form.
        """
        return self._request("GET", f"/v1/jobs/{job_id}/trace")

    def wait(self, job_id: str, timeout: float = 120.0,
             poll: float = 10.0) -> RoutingResult:
        """Long-poll until the job finishes; the result rides the last poll.

        The result is carried on the same long-poll connection that observes
        completion, so waiting works even while the server is draining (no
        second fetch that could race the listener closing).
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(f"job {job_id} not done within {timeout}s")
            status = self.status(job_id, wait=min(poll, remaining),
                                 include_result=True)
            if status["status"] == "done":
                if status.get("error"):
                    raise ServerError(500, {"error": status["error"]})
                if "result" in status:
                    return protocol.result_from_wire(status["result"])
                return self.result(job_id)

    def route(self, circuit: Any, architecture: Architecture | str = "tokyo",
              router: Any = "satmap", name: str | None = None,
              time_budget: float | None = None,
              timeout: float = 120.0) -> RoutingResult:
        """Submit and wait: the one-call remote equivalent of :func:`repro.route`."""
        ticket = self.submit(circuit, architecture, router=router, name=name,
                             time_budget=time_budget)
        return self.wait(ticket["job_id"], timeout=timeout)

    # ---------------------------------------------------------------- admin

    def drain(self) -> dict:
        """Ask the gateway to drain and shut down gracefully."""
        return self._request("POST", "/v1/admin/drain", payload={})
