"""A small blocking client for the routing gateway.

:class:`RoutingClient` wraps the wire protocol behind library-shaped calls:
submit a circuit, long-poll for completion, get a full
:class:`~repro.core.result.RoutingResult` back (routed circuit included).
It is stdlib-only (``http.client``), one connection per request -- matching
the gateway's ``Connection: close`` HTTP -- and is what the CLI's ``submit``
subcommand, the examples, and the tests use.

Typical round trip::

    from repro.server import RoutingClient

    client = RoutingClient(port=8037)
    ticket = client.submit(circuit, architecture="tokyo8",
                           router="satmap:slice_size=25", time_budget=5)
    result = client.wait(ticket["job_id"], timeout=60)
    print(result.summary())

Overload surfaces as :class:`QuotaExceededError` carrying the server's
``Retry-After`` hint; every other non-2xx response raises
:class:`ServerError` with the decoded error payload.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse
from typing import Any

from repro.core.result import RoutingResult
from repro.hardware.architecture import Architecture
from repro.server import protocol


class ServerError(RuntimeError):
    """A non-2xx response from the gateway."""

    def __init__(self, status: int, payload: Any) -> None:
        message = payload.get("error") if isinstance(payload, dict) else str(payload)
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload


class QuotaExceededError(ServerError):
    """HTTP 429: admission control refused the submission.

    ``retry_after`` is the server's hint, in seconds, for when to retry.
    """

    def __init__(self, status: int, payload: Any, retry_after: float) -> None:
        super().__init__(status, payload)
        self.retry_after = retry_after


class RoutingClient:
    """Blocking HTTP client for a :class:`~repro.server.app.RoutingGateway`.

    Parameters
    ----------
    host / port:
        Gateway address (see also :meth:`from_url`).
    client_id:
        Sent as ``X-Client-Id``; admission quotas are tracked per client id
        (falling back to the peer address when unset).
    timeout:
        Socket timeout per request, seconds.  Long polls add their wait on
        top of this.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8037,
                 client_id: str | None = None, timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout = timeout

    @classmethod
    def from_url(cls, url: str, client_id: str | None = None,
                 timeout: float = 60.0) -> "RoutingClient":
        """Build a client from ``http://host:port`` (path/scheme extras ignored)."""
        parsed = urllib.parse.urlsplit(url if "//" in url else f"//{url}")
        if not parsed.hostname:
            raise ValueError(f"cannot parse gateway URL {url!r}")
        return cls(host=parsed.hostname, port=parsed.port or 8037,
                   client_id=client_id, timeout=timeout)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -------------------------------------------------------------- plumbing

    def _request(self, method: str, path: str, payload: dict | None = None,
                 timeout: float | None = None) -> Any:
        connection = http.client.HTTPConnection(
            self.host, self.port,
            timeout=timeout if timeout is not None else self.timeout)
        headers = {"Connection": "close"}
        if self.client_id is not None:
            headers["X-Client-Id"] = self.client_id
        body = None
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            status = response.status
            content_type = response.getheader("Content-Type", "")
            retry_after = response.getheader("Retry-After")
        finally:
            connection.close()
        if content_type.startswith("application/json"):
            decoded: Any = json.loads(raw.decode("utf-8")) if raw else {}
        else:
            decoded = raw.decode("utf-8", errors="replace")
        if status == 429:
            raise QuotaExceededError(status, decoded,
                                     retry_after=float(retry_after or 1.0))
        if status >= 400:
            raise ServerError(status, decoded)
        if isinstance(decoded, dict):
            version = decoded.get("wire_version")
            if version != protocol.WIRE_VERSION:
                raise ServerError(status, {
                    "error": f"server speaks wire_version {version!r}, "
                             f"client speaks {protocol.WIRE_VERSION}"})
        return decoded

    # ------------------------------------------------------------- inquiries

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def metrics_text(self) -> str:
        """The raw Prometheus text of ``/metrics``."""
        return self._request("GET", "/metrics")

    def routers(self, capability: str | None = None) -> list[dict]:
        path = "/v1/routers"
        if capability:
            path += "?" + urllib.parse.urlencode({"capability": capability})
        return self._request("GET", path)["routers"]

    def devices(self) -> list[dict]:
        return self._request("GET", "/v1/devices")["devices"]

    def architectures(self) -> list[str]:
        """Names the gateway resolves in submit requests."""
        return self._request("GET", "/v1/devices")["architectures"]

    def jobs(self) -> list[dict]:
        return self._request("GET", "/v1/jobs")["jobs"]

    # ------------------------------------------------------------- job flow

    def submit(self, circuit: Any, architecture: Architecture | str = "tokyo",
               router: Any = "satmap", name: str | None = None,
               time_budget: float | None = None) -> dict:
        """Submit one routing job; returns the status ticket.

        The ticket's ``job_id`` is the job's content hash;
        ``ticket["deduplicated"]`` says whether the gateway matched it to an
        already-known job instead of scheduling a new solve.  Raises
        :class:`QuotaExceededError` on 429.
        """
        payload = protocol.submit_payload(circuit, architecture, router=router,
                                          name=name, time_budget=time_budget)
        return self._request("POST", "/v1/jobs", payload=payload)

    def status(self, job_id: str, wait: float | None = None,
               include_result: bool = False) -> dict:
        """Job status; ``wait`` long-polls up to that many seconds."""
        query = {}
        if wait is not None:
            query["wait"] = f"{wait:.3f}"
        if include_result:
            query["include_result"] = "1"
        path = f"/v1/jobs/{job_id}"
        if query:
            path += "?" + urllib.parse.urlencode(query)
        timeout = self.timeout + (wait or 0.0)
        return self._request("GET", path, timeout=timeout)

    def result(self, job_id: str) -> RoutingResult:
        """The finished job's result, rebuilt into a :class:`RoutingResult`.

        A job that finished with a server-side error has no result payload;
        that surfaces as :class:`ServerError` carrying the error message.
        """
        payload = self._request("GET", f"/v1/jobs/{job_id}/result")
        if "result" not in payload:
            message = payload.get("error") or "job finished without a result"
            raise ServerError(500, {"error": message})
        return protocol.result_from_wire(payload["result"])

    def trace(self, job_id: str) -> dict:
        """The job's span tree from ``/v1/jobs/{id}/trace``.

        Returns the envelope payload: ``trace`` is the recursive span dict
        and ``rendered`` the server's indented text form.
        """
        return self._request("GET", f"/v1/jobs/{job_id}/trace")

    def wait(self, job_id: str, timeout: float = 120.0,
             poll: float = 10.0) -> RoutingResult:
        """Long-poll until the job finishes; the result rides the last poll.

        The result is carried on the same long-poll connection that observes
        completion, so waiting works even while the server is draining (no
        second fetch that could race the listener closing).
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(f"job {job_id} not done within {timeout}s")
            status = self.status(job_id, wait=min(poll, remaining),
                                 include_result=True)
            if status["status"] == "done":
                if status.get("error"):
                    raise ServerError(500, {"error": status["error"]})
                if "result" in status:
                    return protocol.result_from_wire(status["result"])
                return self.result(job_id)

    def route(self, circuit: Any, architecture: Architecture | str = "tokyo",
              router: Any = "satmap", name: str | None = None,
              time_budget: float | None = None,
              timeout: float = 120.0) -> RoutingResult:
        """Submit and wait: the one-call remote equivalent of :func:`repro.route`."""
        ticket = self.submit(circuit, architecture, router=router, name=name,
                             time_budget=time_budget)
        return self.wait(ticket["job_id"], timeout=timeout)

    # ---------------------------------------------------------------- admin

    def drain(self) -> dict:
        """Ask the gateway to drain and shut down gracefully."""
        return self._request("POST", "/v1/admin/drain", payload={})
