"""The gateway's wire protocol: versioned JSON request/response schemas.

Everything that crosses the network is defined here, so the asyncio app
(:mod:`repro.server.app`), the blocking client
(:mod:`repro.server.client`), and the tests all speak from one module.

Design rules:

* **Versioned.**  Every request and response carries ``"wire_version"``
  (:data:`WIRE_VERSION`).  A request with a missing or different version is
  rejected with HTTP 400 before any work happens, so old clients fail fast
  instead of mis-parsing.
* **Reuses the library's canonical forms.**  Routers travel as
  :meth:`repro.api.RouterSpec.to_dict` dicts (or spec strings), circuits as
  canonical OpenQASM 2.0, architectures as catalogue names or explicit
  edge lists -- exactly the data a :class:`~repro.service.jobs.RoutingJob`
  hashes.  Two clients submitting the same work therefore produce the same
  job content hash and deduplicate into a single solve.
* **Results round-trip through the cache serialiser.**  A solved result is
  shipped as the same payload :mod:`repro.service.cache` stores on disk
  (:func:`result_to_payload`), so the client can rebuild a full
  :class:`~repro.core.result.RoutingResult` -- routed circuit included.

Submit request schema (``POST /v1/jobs``)::

    {
      "wire_version": 1,
      "qasm": "OPENQASM 2.0; ...",
      "router": "satmap:slice_size=25"            # or RouterSpec.to_dict()
      "architecture": "tokyo8",                    # or {"num_qubits", "edges"}
      "name": "my_circuit",                        # optional display name
      "time_budget": 5.0                           # optional, seconds
    }

Status response schema (``GET /v1/jobs/<id>``)::

    {
      "wire_version": 1,
      "job_id": "<64-hex content hash>",
      "status": "queued" | "running" | "done",
      "name": "...", "spec": {"router": ..., "options": {...}},
      "submissions": 2,          # dedup count: submits answered by this job
      "cache_hit": false,
      "solved": true,            # only once status == "done"
      "result": {...}            # only when requested / on the result endpoint
    }
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.api.spec import RouterSpec, SpecError
from repro.circuits.qasm import circuit_to_qasm, parse_qasm
from repro.core.result import RoutingResult, RoutingStatus
from repro.hardware.architecture import Architecture
from repro.service.cache import payload_to_result, result_to_payload
from repro.service.jobs import RoutingJob

#: Bump on any incompatible change to the request/response schemas.
WIRE_VERSION = 1


class ProtocolError(ValueError):
    """A malformed or unsupported request; maps to an HTTP 4xx response."""

    def __init__(self, message: str, http_status: int = 400) -> None:
        super().__init__(message)
        self.http_status = http_status


def envelope(payload: dict | None = None, **fields: Any) -> dict:
    """A response body stamped with the wire version."""
    body = {"wire_version": WIRE_VERSION}
    if payload:
        body.update(payload)
    body.update(fields)
    return body


def check_version(payload: Mapping) -> None:
    """Reject requests that do not speak exactly :data:`WIRE_VERSION`."""
    version = payload.get("wire_version")
    if version != WIRE_VERSION:
        raise ProtocolError(
            f"unsupported wire_version {version!r}; this server speaks "
            f"wire_version {WIRE_VERSION}")


def error_payload(message: str, **extra: Any) -> dict:
    return envelope(error=message, **extra)


def numeric_param(query: Mapping, name: str, default: float,
                  minimum: float | None = None,
                  maximum: float | None = None) -> float:
    """Parse an optional numeric query parameter, clamping to the bounds.

    Shared by the admin/introspection endpoints (``?seconds=``,
    ``?limit=``, ``?wait=``-style knobs): a missing value yields
    ``default``, a non-numeric one is a :class:`ProtocolError`, and values
    outside ``[minimum, maximum]`` are clamped rather than rejected so
    operators cannot request an unbounded profile or event dump.
    """
    raw = query.get(name)
    if raw is None or raw == "":
        value = float(default)
    else:
        try:
            value = float(raw)
        except (TypeError, ValueError):
            raise ProtocolError(f"{name} must be a number") from None
    if minimum is not None:
        value = max(minimum, value)
    if maximum is not None:
        value = min(maximum, value)
    return value


# --------------------------------------------------------------- submissions


def architecture_to_wire(architecture: Architecture | str) -> Any:
    """An architecture as it travels in a submit request."""
    if isinstance(architecture, str):
        return architecture
    return {
        "num_qubits": architecture.num_qubits,
        "edges": sorted([min(a, b), max(a, b)] for a, b in architecture.edges),
        "name": architecture.name,
    }


def architecture_from_wire(field: Any,
                           catalog: Mapping[str, Architecture]) -> Architecture:
    """Resolve the ``architecture`` field of a submit request."""
    if isinstance(field, str):
        if field not in catalog:
            known = ", ".join(sorted(catalog))
            raise ProtocolError(
                f"unknown architecture {field!r}; known names: {known}")
        return catalog[field]
    if isinstance(field, Mapping):
        try:
            num_qubits = int(field["num_qubits"])
            edges = [(int(a), int(b)) for a, b in field["edges"]]
        except (KeyError, TypeError, ValueError) as error:
            raise ProtocolError(
                f"malformed architecture object: {error}") from None
        return Architecture(num_qubits, edges,
                            name=str(field.get("name", "wire-architecture")))
    raise ProtocolError("architecture must be a catalogue name or an object "
                        "with num_qubits and edges")


def submit_payload(circuit: Any, architecture: Architecture | str,
                   router: str | dict | RouterSpec = "satmap",
                   name: str | None = None,
                   time_budget: float | None = None) -> dict:
    """Build a submit request (client side).

    ``circuit`` is a :class:`~repro.circuits.circuit.QuantumCircuit` or
    OpenQASM 2.0 text; ``router`` any :class:`RouterSpec` form.
    """
    if isinstance(circuit, str):
        qasm = circuit
    else:
        qasm = circuit_to_qasm(circuit)
        if name is None:
            name = getattr(circuit, "name", None)
    if isinstance(router, RouterSpec):
        router = router.to_dict()
    payload = {
        "wire_version": WIRE_VERSION,
        "qasm": qasm,
        "router": router,
        "architecture": architecture_to_wire(architecture),
    }
    if name is not None:
        payload["name"] = name
    if time_budget is not None:
        payload["time_budget"] = float(time_budget)
    return payload


def parse_submit(payload: Mapping,
                 catalog: Mapping[str, Architecture]) -> RoutingJob:
    """Validate a submit request and build the routing job it describes.

    The job is built through :meth:`RoutingJob.from_circuit`, which
    canonicalises the QASM text and validates the spec against the registry
    schemas -- so any two requests describing the same work hash identically
    no matter how they were spelled, and misconfigured requests fail here
    with a :class:`ProtocolError` instead of inside a worker.
    """
    if not isinstance(payload, Mapping):
        raise ProtocolError("request body must be a JSON object")
    check_version(payload)
    qasm = payload.get("qasm")
    if not isinstance(qasm, str) or not qasm.strip():
        raise ProtocolError("missing or empty 'qasm' field")
    architecture = architecture_from_wire(payload.get("architecture", "tokyo"),
                                          catalog)
    try:
        spec = RouterSpec.parse(payload.get("router", "satmap"))
        if payload.get("time_budget") is not None:
            spec = spec.with_options(time_budget=float(payload["time_budget"]))
        # Validate against the registry schema now (unknown routers raise a
        # KeyError subclass) so misconfigured requests fail at the door.
        spec = spec.validated()
    except (SpecError, KeyError, TypeError, ValueError) as error:
        message = error.args[0] if error.args else error
        raise ProtocolError(f"invalid router spec: {message}") from None
    name = payload.get("name")
    if name is not None and not isinstance(name, str):
        raise ProtocolError("'name' must be a string")
    try:
        circuit = parse_qasm(qasm, name=name or "job")
    except Exception as error:
        raise ProtocolError(f"invalid OpenQASM 2.0: {error}") from None
    if circuit.num_qubits > architecture.num_qubits:
        raise ProtocolError(
            f"circuit uses {circuit.num_qubits} qubits but the architecture "
            f"has only {architecture.num_qubits}")
    try:
        return RoutingJob.from_circuit(circuit, architecture, router=spec,
                                       name=name)
    except (SpecError, KeyError, ValueError) as error:
        raise ProtocolError(f"invalid job: {error}") from None


# ------------------------------------------------------------------- results


def result_to_wire(result: RoutingResult) -> dict:
    """A routing result as it travels in a response body.

    Solved results reuse the cache serialisation (routed circuit as QASM,
    mappings, counters); unsolved ones carry status and notes only.
    """
    if result.solved and result.routed_circuit is not None:
        payload = result_to_payload(result)
        payload["solved"] = True
        return payload
    return {
        "solved": False,
        "status": result.status.value,
        "router_name": result.router_name,
        "circuit_name": result.circuit_name,
        "solve_time": result.solve_time,
        "notes": result.notes,
    }


def result_from_wire(payload: Mapping) -> RoutingResult:
    """Rebuild a :class:`RoutingResult` from :func:`result_to_wire` output."""
    if not isinstance(payload, Mapping):
        raise ProtocolError("result payload must be a JSON object")
    if payload.get("solved"):
        try:
            return payload_to_result(dict(payload))
        except Exception as error:
            raise ProtocolError(f"malformed result payload: {error}") from None
    try:
        return RoutingResult(
            status=RoutingStatus(payload["status"]),
            router_name=str(payload.get("router_name", "")),
            circuit_name=str(payload.get("circuit_name", "")),
            solve_time=float(payload.get("solve_time", 0.0)),
            notes=str(payload.get("notes", "")),
        )
    except (KeyError, ValueError) as error:
        raise ProtocolError(f"malformed result payload: {error}") from None
