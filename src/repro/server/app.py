"""The asyncio JSON-over-HTTP routing gateway.

:class:`RoutingGateway` puts a network front on
:class:`~repro.service.BatchRoutingService`: many concurrent clients submit
routing jobs, identical submissions deduplicate into one solve, admission
control sheds overload with 429s, and a metrics endpoint exposes the
service's telemetry.  Everything is stdlib: the HTTP layer is a small
HTTP/1.1 reader/writer over ``asyncio.start_server`` (one request per
connection, ``Connection: close``), which is all a JSON API needs.

Endpoints (wire schemas in :mod:`repro.server.protocol`):

==========  =========================  ==========================================
method      path                       purpose
==========  =========================  ==========================================
GET         ``/healthz``               liveness + drain state
POST        ``/v1/jobs``               submit a routing job (dedups by content)
GET         ``/v1/jobs``               list known jobs
GET         ``/v1/jobs/<id>``          job status; ``?wait=SECS`` long-polls
GET         ``/v1/jobs/<id>/result``   the full result (routed circuit as QASM)
GET         ``/v1/jobs/<id>/trace``    the job's span tree + rendered form
GET         ``/v1/routers``            registry listing (``?capability=`` filter)
GET         ``/v1/devices``            device catalogue + addressable arch names
GET         ``/v1/stats``              JSON counters (telemetry/cache/admission)
GET         ``/v1/slo``                rolling-window SLO evaluation + burn rate
GET         ``/v1/events``             structured event tail (``?level=&limit=``)
GET         ``/metrics``               Prometheus-style text metrics
POST        ``/v1/admin/drain``        begin graceful shutdown
POST        ``/v1/admin/profile``      sample all stacks for ``?seconds=N``
==========  =========================  ==========================================

Execution model: submissions land in an asyncio queue; a single dispatcher
task collects whatever is queued (up to ``max_batch``) and runs it as *one*
``route_batch`` call in a worker thread.  Parallelism across jobs comes from
the service's own worker pool; the gateway never calls the service from two
threads at once.  Dedup happens at two levels: the gateway maps equal
:meth:`~repro.service.BatchRoutingService.job_key` hashes onto one job
record before anything is queued, and the service's verified result cache
answers repeats across batches and restarts.

Graceful shutdown (`SIGTERM`, ``/v1/admin/drain``, or
:meth:`RoutingGateway.initiate_drain`): new submissions get 503, the
dispatcher finishes every queued job -- each bounded by its time budget,
with the pool's best-so-far fallback -- status/result requests keep being
served while that happens, and only then does the server close.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from dataclasses import dataclass, field

from repro.api.registry import describe_routers
from repro.core.result import RoutingResult
from repro.hardware.devices import device_records, named_architectures
from repro.obs import render_trace
from repro.obs import profiler as obs_profiler
from repro.obs.events import EventLog, LEVELS
from repro.obs.export import JsonlTraceWriter
from repro.obs.sampling import TailSampler
from repro.obs.slo import SloTracker, mirror_slo
from repro.server import http, protocol
from repro.server.admission import AdmissionController
from repro.service import BatchRoutingService
from repro.service.jobs import RoutingJob

# Shared with the cluster dispatcher; re-exported for compatibility.
MAX_BODY_BYTES = http.MAX_BODY_BYTES
READ_TIMEOUT = http.READ_TIMEOUT
MAX_HEADERS = http.MAX_HEADERS


@dataclass
class JobRecord:
    """One deduplicated unit of work and its lifecycle state."""

    job_id: str
    job: RoutingJob
    status: str = "queued"  # queued | running | done
    submissions: int = 1
    submitted_at: float = field(default_factory=time.monotonic)
    finished_at: float | None = None
    result: RoutingResult | None = None
    error: str | None = None
    done: asyncio.Event = field(default_factory=asyncio.Event)
    #: Root span id of this job's trace tree in the gateway's tracer.
    trace_id: str | None = None

    def status_payload(self, include_result: bool = False) -> dict:
        payload = {
            "job_id": self.job_id,
            "status": self.status,
            "name": self.job.name,
            "spec": self.job.spec().to_dict(),
            "architecture": self.job.arch_name,
            "submissions": self.submissions,
        }
        if self.status == "done":
            payload["elapsed"] = round(
                (self.finished_at or time.monotonic()) - self.submitted_at, 6)
            if self.error is not None:
                payload["solved"] = False
                payload["error"] = self.error
            elif self.result is not None:
                payload["solved"] = self.result.solved
                payload["cache_hit"] = "cache-hit" in self.result.notes
                if include_result:
                    payload["result"] = protocol.result_to_wire(self.result)
        return protocol.envelope(payload)


class RoutingGateway:
    """Serve :class:`BatchRoutingService` over HTTP to concurrent clients.

    Parameters
    ----------
    service:
        The backing service; a default one (auto pool mode, memory cache) is
        created when omitted and closed with the gateway.
    host / port:
        Bind address; port 0 picks a free port (see :attr:`port` after
        :meth:`start`).
    admission:
        The :class:`AdmissionController`; a permissive default is created
        when omitted.
    time_budget:
        Default per-job budget; ``None`` uses the service's own default.
    max_batch:
        Most queued jobs folded into one ``route_batch`` call.
    long_poll_cap:
        Upper bound on ``?wait=`` long-poll durations, seconds.
    max_records:
        Most finished job records kept in memory; past it the oldest
        finished ones are dropped (their results stay reachable through the
        service's result cache -- a resubmission is a fast cache hit, not a
        re-solve).  Queued/running jobs are never dropped.
    trace_dir:
        When set, every finished job's trace tree is appended as JSONL
        under this directory (size-rotated files), so production traces
        survive process restarts.
    trace_owner:
        Per-writer tag for shared ``trace_dir``/``events_dir`` directories
        (fleet workers pass ``shard-N``); also stamps this gateway's
        events.  ``None`` is fine for a single process.
    slo:
        SLO tracking: an :class:`~repro.obs.slo.SloTracker`, a sequence of
        :class:`~repro.obs.slo.SloObjective` (or their dict form) to build
        one from, ``None`` for a tracker with the default objective, or
        ``False`` to disable ``/v1/slo``.
    sampler:
        A :class:`~repro.obs.sampling.TailSampler` deciding which finished
        traces are retained (store + JSONL).  ``None`` keeps every trace.
    event_log:
        The structured :class:`~repro.obs.events.EventLog`; created from
        ``events_dir``/``trace_owner`` when omitted.  The gateway attaches
        it to the service so telemetry-level events (failures, fallbacks,
        cache churn) land in the same stream as admission and lifecycle
        events.
    events_dir:
        Directory for the event log's rotating JSONL sink (``None`` keeps
        events in memory only); ignored when ``event_log`` is supplied.
    """

    def __init__(self, service: BatchRoutingService | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 admission: AdmissionController | None = None,
                 time_budget: float | None = None,
                 max_batch: int = 32,
                 long_poll_cap: float = 30.0,
                 max_records: int = 4096,
                 architectures: dict | None = None,
                 trace_dir=None, trace_owner: str | None = None,
                 slo=None, sampler: TailSampler | None = None,
                 event_log: EventLog | None = None,
                 events_dir=None) -> None:
        self.service = service if service is not None else BatchRoutingService()
        self._owns_service = service is None
        self.host = host
        self.port = port
        self.admission = admission if admission is not None else AdmissionController()
        self.time_budget = time_budget
        self.max_batch = max(1, max_batch)
        self.long_poll_cap = long_poll_cap
        self.max_records = max(1, max_records)
        self.architectures = (architectures if architectures is not None
                              else named_architectures())
        #: Shared with the service so the worker-pool subtrees graft into
        #: the same trees the gateway's root spans live in.  ``None`` when
        #: the service was built with ``tracer=False``.
        self.tracer = self.service.tracer
        self._trace_writer = (JsonlTraceWriter(trace_dir, owner=trace_owner)
                              if trace_dir is not None else None)
        if isinstance(slo, SloTracker):
            self.slo: SloTracker | None = slo
        elif slo is False:
            self.slo = None
        else:
            self.slo = SloTracker(objectives=slo or ())
        self.sampler = sampler
        self.event_log = (event_log if event_log is not None
                          else EventLog(directory=events_dir,
                                        owner=trace_owner))
        self.service.attach_event_log(self.event_log)
        #: One registry backs /metrics: the telemetry histograms are already
        #: on it, and every gateway family is mirrored into it at scrape time.
        self.metrics = self.service.telemetry.metrics
        self._gateway_seconds = self.metrics.histogram(
            "repro_gateway_job_seconds",
            "Submission-to-finish seconds per gateway job")
        self.jobs: dict[str, JobRecord] = {}
        self.counters = {
            "requests": 0,
            "submitted": 0,
            "deduplicated": 0,
            "completed": 0,
            "failed": 0,
            "rejected_draining": 0,
            "bad_requests": 0,
            "records_pruned": 0,
        }
        self._open_jobs = 0  # queued + running
        self._draining = False
        self._started = time.monotonic()
        self._queue: asyncio.Queue = asyncio.Queue()
        self._server: asyncio.AbstractServer | None = None
        self._dispatcher: asyncio.Task | None = None
        self._connections: set[asyncio.Task] = set()
        self._closed = asyncio.Event()

    # ------------------------------------------------------------- lifecycle

    async def start(self) -> None:
        """Bind the listening socket and start the dispatcher."""
        self._server = await asyncio.start_server(self._on_connection,
                                                  self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def draining(self) -> bool:
        return self._draining

    def initiate_drain(self) -> None:
        """Begin graceful shutdown (idempotent; call from the loop thread).

        New submissions are refused with 503 from this point on; queued and
        running jobs are completed (best-so-far within their budgets) and
        stay fetchable until the queue is empty, then the server closes.
        """
        if self._draining:
            return
        self._draining = True
        self.event_log.emit("drain-initiated", level="warning",
                            jobs_open=self._open_jobs)
        self._queue.put_nowait(None)  # wake the dispatcher

    async def wait_closed(self) -> None:
        """Block until a drain has fully completed."""
        await self._closed.wait()

    async def _shutdown(self) -> None:
        """Close the listener, let in-flight responses finish, release workers."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._connections:
            await asyncio.wait(self._connections,
                               timeout=self.long_poll_cap + 5.0)
        if self._owns_service:
            self.service.close()
        self._closed.set()

    # ------------------------------------------------------------ dispatcher

    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            item = await self._queue.get()
            batch: list[JobRecord] = [] if item is None else [item]
            while len(batch) < self.max_batch:
                try:
                    extra = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is not None:
                    batch.append(extra)
            if batch:
                for record in batch:
                    record.status = "running"
                jobs = [record.job for record in batch]
                try:
                    results = await loop.run_in_executor(
                        None, self._route_batch_sync, jobs)
                except Exception as error:  # worker-side crash: fail the batch
                    for record in batch:
                        self._finish(record, None, error=repr(error))
                else:
                    for record, result in zip(batch, results):
                        self._finish(record, result)
            if self._draining and self._queue.empty():
                break
        await self._shutdown()

    def _route_batch_sync(self, jobs: list[RoutingJob]) -> list[RoutingResult]:
        return self.service.route_batch(jobs, time_budget=self.time_budget)

    def _finish(self, record: JobRecord, result: RoutingResult | None,
                error: str | None = None) -> None:
        record.result = result
        record.error = error
        record.status = "done"
        record.finished_at = time.monotonic()
        self._open_jobs -= 1
        if error is None and result is not None:
            self.counters["completed"] += 1
        else:
            self.counters["failed"] += 1
        elapsed = record.finished_at - record.submitted_at
        self._gateway_seconds.observe(elapsed)
        ok = error is None and result is not None and result.solved
        if self.slo is not None:
            self.slo.observe(record.job.router, elapsed, ok=ok)
        if error is not None:
            # Service-level failures already flow through telemetry into the
            # event log; a batch-level crash never reaches telemetry, so the
            # gateway narrates it itself.
            self.event_log.emit("job-error", level="error",
                                job_id=record.job_id,
                                job_name=record.job.name, error=error)
        if self.tracer is not None and record.trace_id is not None:
            root = self.tracer.get(record.trace_id)
            if root is not None:
                attrs = {"submissions": record.submissions}
                if result is not None:
                    attrs["status"] = result.status.value
                    attrs["swaps"] = result.swap_count
                if error is not None:
                    attrs["error"] = error
                root.finish(**attrs)
                keep = (self.sampler is None
                        or self.sampler.decide(root).keep)
                if not keep:
                    self.tracer.discard(root.trace_id)
                if keep and self._trace_writer is not None:
                    self._trace_writer.write(root)
        record.done.set()
        self._prune_records()

    def _prune_records(self) -> None:
        """Bound the in-memory job history (the cache still has the results)."""
        excess = len(self.jobs) - self.max_records
        if excess <= 0:
            return
        finished = sorted(
            (record for record in self.jobs.values()
             if record.status == "done"),
            key=lambda record: record.finished_at or 0.0)
        for record in finished[:excess]:
            del self.jobs[record.job_id]
            self.counters["records_pruned"] += 1

    # ------------------------------------------------------------- endpoints

    async def _submit(self, headers: dict, payload: dict,
                      peer: str) -> tuple[int, dict, dict]:
        client_id = headers.get("x-client-id") or peer
        submit_started = time.time()
        if self._draining:
            self.counters["rejected_draining"] += 1
            return 503, protocol.error_payload("server is draining"), {}
        decision = self.admission.admit(client_id, pending=self._open_jobs)
        if not decision:
            self.event_log.emit("admission-rejected", level="warning",
                                client=client_id, reason=decision.reason,
                                retry_after=round(decision.retry_after, 3),
                                pending=self._open_jobs)
            body = protocol.error_payload(
                f"over quota ({decision.reason})", reason=decision.reason,
                retry_after=decision.retry_after)
            return 429, body, {"Retry-After": f"{decision.retry_after:.3f}"}

        def parse_and_key():
            # QASM parsing, canonicalisation, and the SHA-256 content hash
            # can burn real CPU on large circuits -- off the loop thread.
            job = protocol.parse_submit(payload, self.architectures)
            return job, self.service.job_key(job, self.time_budget)

        loop = asyncio.get_running_loop()
        job, job_id = await loop.run_in_executor(None, parse_and_key)
        record = self.jobs.get(job_id)
        if record is not None and record.status == "done" and (
                record.error is not None
                or record.result is None or not record.result.solved):
            # A crashed or unsolved (timed-out) attempt must not poison this
            # content hash forever: forget the record and solve afresh.
            # Successful results stay deduplicated indefinitely -- they are
            # verified and content-addressed, so they cannot go stale.
            del self.jobs[job_id]
            record = None
        if record is not None:
            # Content-identical to a known job: answer with the same record,
            # whatever its state -- this is the cross-client single-solve
            # dedup path.
            record.submissions += 1
            self.counters["deduplicated"] += 1
            body = record.status_payload()
            body["deduplicated"] = True
            return 200, body, {}
        record = JobRecord(job_id=job_id, job=job)
        if self.tracer is not None:
            # The gateway owns the job's root span; admission + parsing is
            # its first (closed) child, and the job's trace context rides on
            # the job so service and pool spans graft under the same root.
            now = time.time()
            root = self.tracer.start_trace(
                "job", start=submit_started, job=job_id,
                job_name=job.name, router=job.router)
            self.tracer.record("admit", root, start=submit_started,
                               duration=now - submit_started,
                               client=client_id)
            job.trace_context = dict(root.context(), enqueued_at=now)
            record.trace_id = root.trace_id
        self.jobs[job_id] = record
        self._open_jobs += 1
        self.counters["submitted"] += 1
        self._queue.put_nowait(record)
        body = record.status_payload()
        body["deduplicated"] = False
        return 202, body, {}

    async def _job_status(self, job_id: str, query: dict) -> tuple[int, dict, dict]:
        record = self.jobs.get(job_id)
        if record is None:
            return 404, protocol.error_payload(f"unknown job {job_id!r}"), {}
        wait = 0.0
        if "wait" in query:
            try:
                wait = max(0.0, float(query["wait"]))
            except ValueError:
                raise protocol.ProtocolError("wait must be a number") from None
        if wait > 0.0 and not record.done.is_set():
            try:
                await asyncio.wait_for(record.done.wait(),
                                       min(wait, self.long_poll_cap))
            except asyncio.TimeoutError:
                pass
        # ``include_result`` lets a long-poll carry the result home on the
        # same connection -- essential during a drain, when the listener may
        # close before a follow-up fetch could connect.
        include_result = query.get("include_result", "") in ("1", "true", "yes")
        return 200, record.status_payload(include_result=include_result), {}

    def _job_trace(self, job_id: str) -> tuple[int, dict, dict]:
        """The job's span tree (finished or in flight) plus a rendered form."""
        record = self.jobs.get(job_id)
        if record is None:
            return 404, protocol.error_payload(f"unknown job {job_id!r}"), {}
        if self.tracer is None or record.trace_id is None:
            return 404, protocol.error_payload(
                "tracing is disabled for this job"), {}
        root = self.tracer.get(record.trace_id)
        if root is None:
            return 404, protocol.error_payload(
                "trace evicted from the in-memory store"), {}
        tree = root.to_dict()
        return 200, protocol.envelope(job_id=job_id, status=record.status,
                                      trace=tree,
                                      rendered=render_trace(tree)), {}

    def _job_result(self, job_id: str) -> tuple[int, dict, dict]:
        record = self.jobs.get(job_id)
        if record is None:
            return 404, protocol.error_payload(f"unknown job {job_id!r}"), {}
        if record.status != "done":
            return 409, protocol.error_payload(
                "job not finished", status=record.status), {}
        return 200, record.status_payload(include_result=True), {}

    def _stats_payload(self) -> dict:
        telemetry = self.service.telemetry
        # dict() snapshots are atomic under the GIL; the executor thread
        # mutates these counters while we serialise them.
        telemetry_counters = dict(telemetry.counters)
        stats = {
            "uptime": round(time.monotonic() - self._started, 3),
            "draining": self._draining,
            "jobs_open": self._open_jobs,
            "jobs_known": len(self.jobs),
            "gateway": dict(self.counters),
            "admission": self.admission.stats(),
            "telemetry": {kind: count
                          for kind, count in sorted(telemetry_counters.items())
                          if count},
            "throughput": round(telemetry.throughput(), 4),
        }
        if self.service.cache is not None:
            stats["cache"] = self.service.cache.stats()
        stats["events"] = self.event_log.counts_by_level()
        return stats

    def _slo_payload(self) -> tuple[int, dict, dict]:
        if self.slo is None:
            return 404, protocol.error_payload(
                "SLO tracking is disabled on this server"), {}
        return 200, protocol.envelope(self.slo.status()), {}

    def _events_payload(self, query: dict) -> tuple[int, dict, dict]:
        limit = int(protocol.numeric_param(query, "limit", 50,
                                           minimum=1, maximum=1000))
        level = query.get("level") or None
        if level is not None and level not in LEVELS:
            raise protocol.ProtocolError(
                f"unknown level {level!r}; pick one of {sorted(LEVELS)}")
        events = self.event_log.tail(limit=limit, level=level,
                                     event=query.get("event") or None)
        return 200, protocol.envelope(
            events=events, counts=self.event_log.counts_by_level(),
            dropped=self.event_log.dropped), {}

    async def _profile(self, query: dict) -> tuple[int, dict, dict]:
        """``POST /v1/admin/profile?seconds=N``: sample every thread's stack.

        The profiler blocks for the sampling window, so it runs on an
        executor thread; the event loop keeps serving.  The loaded worker
        threads it observes are exactly the ones solving, so the collapsed
        stacks name SAT-core frames directly.
        """
        seconds = protocol.numeric_param(
            query, "seconds", 1.0, minimum=0.05,
            maximum=obs_profiler.MAX_PROFILE_SECONDS)
        interval = protocol.numeric_param(query, "interval", 0.005,
                                          minimum=0.001, maximum=0.1)
        self.event_log.emit("profile-start", seconds=seconds,
                            interval=interval)
        loop = asyncio.get_running_loop()
        report = await loop.run_in_executor(
            None, lambda: obs_profiler.profile(seconds, interval=interval))
        return 200, protocol.envelope(report), {}

    _COUNTER_HELP = {
        "requests": "HTTP requests handled",
        "submitted": "Jobs accepted for solving",
        "deduplicated": "Submissions answered by an existing job record",
        "completed": "Jobs finished with a result",
        "failed": "Jobs finished with an error",
        "rejected_draining": "Submissions refused during drain",
        "bad_requests": "Requests rejected as malformed",
        "records_pruned": "Finished job records evicted from memory",
    }

    def _metrics_text(self) -> str:
        """The /metrics scrape: registry-driven Prometheus text exposition.

        Gateway counters, admission stats, telemetry event counts, and cache
        state are mirrored into the shared :class:`MetricsRegistry` at scrape
        time, then the whole registry -- including the latency/queue/stage/
        conflict histograms the telemetry log feeds -- renders as one
        document through a single formatter.
        """
        from repro import __version__

        registry = self.metrics
        info = registry.gauge("repro_server_info",
                              "Build and wire-protocol identity.")
        info.set(1, version=__version__,
                 wire_version=str(protocol.WIRE_VERSION))
        registry.gauge("repro_server_uptime_seconds",
                       "Seconds since the gateway started").set(
            round(time.monotonic() - self._started, 3))
        registry.gauge("repro_server_draining",
                       "Whether a graceful drain is in progress").set(
            int(self._draining))
        registry.gauge("repro_server_jobs_open",
                       "Jobs queued or running").set(self._open_jobs)
        registry.gauge("repro_server_jobs_known",
                       "Job records held in memory").set(len(self.jobs))
        for name, value in sorted(self.counters.items()):
            registry.counter(f"repro_server_{name}_total",
                             self._COUNTER_HELP.get(name, name)).set_total(value)
        admission = self.admission.stats()
        registry.counter("repro_server_admission_admitted_total",
                         "Submissions admitted by the controller").set_total(
            admission["admitted"])
        rejected = registry.counter(
            "repro_server_admission_rejected_total",
            "Submissions rejected by the controller, by reason")
        for reason in ("quota", "backpressure"):
            rejected.set_total(admission[f"rejected_{reason}"], reason=reason)
        events = registry.counter("repro_telemetry_events_total",
                                  "Service telemetry events, by kind")
        for kind, count in sorted(dict(self.service.telemetry.counters).items()):
            events.set_total(count, kind=kind)
        if self.service.cache is not None:
            cache = self.service.cache.stats()
            cache_help = {
                "hits": "Cache lookups answered",
                "misses": "Cache lookups that missed",
                "stores": "Results stored in the cache",
                "rejected": "Results the verifier refused to cache",
                "evictions": "Entries evicted by the size bound",
            }
            for key, help_text in cache_help.items():
                registry.counter(f"repro_cache_{key}_total",
                                 help_text).set_total(int(cache[key]))
            registry.gauge("repro_cache_entries",
                           "Entries currently cached").set(int(cache["entries"]))
            registry.gauge("repro_cache_bytes",
                           "Bytes currently cached").set(
                int(cache["total_bytes"]))
        if self.slo is not None:
            mirror_slo(registry, self.slo.status())
        if self.sampler is not None:
            sampled = registry.counter(
                "repro_trace_sampled_total",
                "Tail-sampling decisions on finished traces, by reason")
            for reason, count in sorted(dict(self.sampler.counts).items()):
                sampled.set_total(count, reason=reason)
        emitted = registry.counter(
            "repro_events_total",
            "Structured operational events emitted, by level")
        for level, count in sorted(self.event_log.counts_by_level().items()):
            emitted.set_total(count, level=level)
        return registry.render(first=("repro_server_info",))

    # ------------------------------------------------------------ HTTP layer

    def _on_connection(self, reader: asyncio.StreamReader,
                       writer: asyncio.StreamWriter) -> None:
        task = asyncio.create_task(self._handle_connection(reader, writer))
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        peername = writer.get_extra_info("peername")
        peer = f"{peername[0]}:{peername[1]}" if peername else "unknown"
        try:
            try:
                request = await asyncio.wait_for(self._read_request(reader),
                                                 READ_TIMEOUT)
            except protocol.ProtocolError as error:
                # Malformed before dispatch (bad request line, oversized or
                # negative Content-Length): still owed an HTTP error reply.
                self.counters["bad_requests"] += 1
                request = None
                status = error.http_status
                payload, extra = protocol.error_payload(str(error)), {}
            else:
                if request is None:
                    return
            if request is not None:
                method, path, query, headers, body = request
                self.counters["requests"] += 1
                try:
                    status, payload, extra = await self._dispatch(
                        method, path, query, headers, body, peer)
                except protocol.ProtocolError as error:
                    self.counters["bad_requests"] += 1
                    status = error.http_status
                    payload, extra = protocol.error_payload(str(error)), {}
                except Exception as error:  # never leak a traceback to the wire
                    status, extra = 500, {}
                    payload = protocol.error_payload(f"internal error: {error!r}")
            if isinstance(payload, str):
                await self._write_response(writer, status, payload.encode(),
                                           "text/plain; charset=utf-8", extra)
            else:
                body_bytes = json.dumps(payload, sort_keys=True).encode()
                await self._write_response(writer, status, body_bytes,
                                           "application/json", extra)
        except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                ConnectionError):
            pass  # client went away; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        return await http.read_request(reader)

    @staticmethod
    def _json_body(body: bytes) -> dict:
        if not body:
            return {}
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise protocol.ProtocolError("request body is not valid JSON") from None
        if not isinstance(payload, dict):
            raise protocol.ProtocolError("request body must be a JSON object")
        return payload

    async def _dispatch(self, method: str, path: str, query: dict,
                        headers: dict, body: bytes, peer: str):
        if path == "/healthz" and method == "GET":
            from repro import __version__
            return 200, protocol.envelope(
                status="draining" if self._draining else "ok",
                version=__version__, uptime=round(time.monotonic()
                                                  - self._started, 3)), {}
        if path == "/metrics" and method == "GET":
            return 200, self._metrics_text(), {}
        if path == "/v1/routers" and method == "GET":
            return 200, protocol.envelope(
                routers=describe_routers(query.get("capability"))), {}
        if path == "/v1/devices" and method == "GET":
            return 200, protocol.envelope(
                devices=device_records(),
                architectures=sorted(self.architectures)), {}
        if path == "/v1/stats" and method == "GET":
            return 200, protocol.envelope(self._stats_payload()), {}
        if path == "/v1/slo" and method == "GET":
            return self._slo_payload()
        if path == "/v1/events" and method == "GET":
            return self._events_payload(query)
        if path == "/v1/admin/profile" and method == "POST":
            return await self._profile(query)
        if path == "/v1/jobs" and method == "POST":
            return await self._submit(headers, self._json_body(body), peer)
        if path == "/v1/jobs" and method == "GET":
            summaries = [record.status_payload()
                         for record in self.jobs.values()]
            return 200, protocol.envelope(jobs=summaries), {}
        if path.startswith("/v1/jobs/") and method == "GET":
            job_id = path[len("/v1/jobs/"):]
            if job_id.endswith("/result"):
                return self._job_result(job_id[:-len("/result")])
            if job_id.endswith("/trace"):
                return self._job_trace(job_id[:-len("/trace")])
            return await self._job_status(job_id, query)
        if path == "/v1/admin/drain" and method == "POST":
            self.initiate_drain()
            return 200, protocol.envelope(draining=True,
                                          jobs_open=self._open_jobs), {}
        return 404, protocol.error_payload(f"no such endpoint: "
                                           f"{method} {path}"), {}

    async def _write_response(self, writer: asyncio.StreamWriter, status: int,
                              body: bytes, content_type: str,
                              extra_headers: dict) -> None:
        await http.write_response(writer, status, body, content_type,
                                  extra_headers)


async def serve(gateway: RoutingGateway,
                install_signal_handlers: bool = True,
                on_started=None) -> None:
    """Start ``gateway`` and block until it has drained and closed.

    With ``install_signal_handlers`` (the default, used by ``repro serve``)
    SIGTERM and SIGINT trigger :meth:`RoutingGateway.initiate_drain`, so a
    ^C or an orchestrator's stop signal finishes in-flight jobs -- best-so-far
    within their budgets -- before the process exits.  ``on_started`` is
    called with the gateway once the port is bound (the CLI prints its
    listening line there).
    """
    await gateway.start()
    if install_signal_handlers:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, gateway.initiate_drain)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-POSIX platforms
    if on_started is not None:
        on_started(gateway)
    await gateway.wait_closed()


class GatewayThread:
    """Run a gateway on a daemon thread: tests, examples, and benchmarks.

    Usage::

        with GatewayThread(service=BatchRoutingService(mode="thread")) as gw:
            client = RoutingClient(port=gw.port)
            ...

    Exiting the context initiates a drain and joins the thread, so queued
    jobs finish before the block returns.
    """

    def __init__(self, **gateway_kwargs) -> None:
        self._kwargs = gateway_kwargs
        self.gateway: RoutingGateway | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._main())
        finally:
            self._loop.close()

    async def _main(self) -> None:
        try:
            self.gateway = RoutingGateway(**self._kwargs)
            await self.gateway.start()
        except BaseException as error:
            self._startup_error = error
            self._ready.set()
            raise
        self._ready.set()
        await self.gateway.wait_closed()

    def start(self) -> "GatewayThread":
        self._thread.start()
        self._ready.wait(timeout=10.0)
        if self._startup_error is not None:
            raise RuntimeError("gateway failed to start") from self._startup_error
        if self.gateway is None:
            raise RuntimeError("gateway did not start within 10s")
        return self

    @property
    def host(self) -> str:
        assert self.gateway is not None
        return self.gateway.host

    @property
    def port(self) -> int:
        assert self.gateway is not None
        return self.gateway.port

    @property
    def url(self) -> str:
        assert self.gateway is not None
        return self.gateway.url

    def stop(self, timeout: float = 60.0) -> None:
        """Drain the gateway and join its thread."""
        if self._loop is not None and self.gateway is not None \
                and self._thread.is_alive():
            try:
                self._loop.call_soon_threadsafe(self.gateway.initiate_drain)
            except RuntimeError:
                pass  # the loop closed between is_alive() and the call
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "GatewayThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
