"""Network serving for the routing service: gateway, protocol, client.

This subsystem puts a request-lifecycle layer in front of
:class:`~repro.service.BatchRoutingService` so callers no longer have to
live in the same Python process:

* :mod:`repro.server.protocol` -- the versioned JSON wire schemas, built on
  the library's canonical forms (``RouterSpec.to_dict``, canonical QASM,
  the job content hash) so identical requests from different clients
  deduplicate into one solve;
* :mod:`repro.server.admission` -- token-bucket quotas per client plus a
  global pending-work bound; overload degrades to 429 + ``Retry-After``;
* :mod:`repro.server.app` -- the stdlib asyncio JSON-over-HTTP gateway:
  submit / poll / long-poll / fetch-result job lifecycle, registry and
  device listings, ``/metrics``, and graceful drain on SIGTERM;
* :mod:`repro.server.client` -- a small blocking :class:`RoutingClient`
  used by ``repro submit``, the examples, and the tests.

Quick round trip (in-process server thread)::

    from repro.server import GatewayThread, RoutingClient

    with GatewayThread() as gw:
        client = RoutingClient(port=gw.port)
        result = client.route(circuit, architecture="tokyo8",
                              router="sabre:seed=1")
"""

from repro.server.admission import AdmissionController, AdmissionDecision, TokenBucket
from repro.server.app import GatewayThread, JobRecord, RoutingGateway, serve
from repro.server.client import QuotaExceededError, RoutingClient, ServerError
from repro.server.protocol import WIRE_VERSION, ProtocolError

__all__ = [
    "RoutingGateway",
    "GatewayThread",
    "JobRecord",
    "serve",
    "RoutingClient",
    "ServerError",
    "QuotaExceededError",
    "AdmissionController",
    "AdmissionDecision",
    "TokenBucket",
    "ProtocolError",
    "WIRE_VERSION",
]
