"""Tests for the assignment trail."""

from repro.sat.assignment import Trail


class TestTrail:
    def test_grow_allocates_slots(self):
        trail = Trail()
        trail.grow_to(4)
        assert trail.value_of_var(4) is None

    def test_assign_sets_value(self):
        trail = Trail()
        trail.grow_to(3)
        trail.assign(2, None)
        assert trail.value_of_var(2) is True
        assert trail.value_of_literal(2) is True
        assert trail.value_of_literal(-2) is False

    def test_assign_negative_literal(self):
        trail = Trail()
        trail.grow_to(3)
        trail.assign(-3, None)
        assert trail.value_of_var(3) is False
        assert trail.value_of_literal(-3) is True

    def test_decision_levels(self):
        trail = Trail()
        trail.grow_to(3)
        assert trail.decision_level == 0
        trail.new_decision_level()
        trail.assign(1, None)
        assert trail.decision_level == 1
        assert trail.level_of_var(1) == 1

    def test_backtrack_clears_assignments(self):
        trail = Trail()
        trail.grow_to(3)
        trail.assign(1, None)
        trail.new_decision_level()
        trail.assign(2, None)
        undone = trail.backtrack_to(0)
        assert undone == [2]
        assert trail.value_of_var(2) is None
        assert trail.value_of_var(1) is True

    def test_backtrack_to_current_level_is_noop(self):
        trail = Trail()
        trail.grow_to(2)
        trail.assign(1, None)
        assert trail.backtrack_to(0) == []

    def test_phase_saving_remembers_last_polarity(self):
        trail = Trail()
        trail.grow_to(2)
        trail.new_decision_level()
        trail.assign(-2, None)
        trail.backtrack_to(0)
        assert trail.saved_phases[2] is False

    def test_reason_tracking(self):
        trail = Trail()
        trail.grow_to(2)
        reason = object()
        trail.assign(1, reason)
        assert trail.reason_of_var(1) is reason

    def test_len_counts_assigned_literals(self):
        trail = Trail()
        trail.grow_to(5)
        trail.assign(1, None)
        trail.assign(-4, None)
        assert len(trail) == 2
