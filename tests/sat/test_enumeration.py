"""Tests for blocking-clause model enumeration."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.enumeration import ModelEnumerator, all_models, count_models


class TestBasicEnumeration:
    def test_single_variable_has_two_models_under_tautology(self):
        # x or not x: both assignments of x are models.
        assert count_models([[1, -1]]) == 2

    def test_unit_clause_pins_one_model(self):
        models = all_models([[1]])
        assert len(models) == 1
        assert models[0][1] is True

    def test_unsat_formula_has_no_models(self):
        assert count_models([[1], [-1]]) == 0

    def test_two_free_variables_give_four_models(self):
        # A tautological constraint over vars 1, 2.
        assert count_models([[1, -1], [2, -2]]) == 4

    def test_xor_has_two_models(self):
        clauses = [[1, 2], [-1, -2]]
        models = all_models(clauses)
        assert len(models) == 2
        assert all(model[1] != model[2] for model in models)

    def test_limit_stops_early(self):
        assert count_models([[1, -1], [2, -2]], limit=3) == 3


class TestProjection:
    def test_projection_collapses_irrelevant_variables(self):
        # Variable 2 is free, variable 1 is pinned true; projecting on 1
        # yields a single model even though two total models exist.
        clauses = [[1], [2, -2]]
        assert count_models(clauses, projection=[1]) == 1
        assert count_models(clauses) == 2

    def test_projection_on_xor(self):
        clauses = [[1, 2], [-1, -2], [3, -3]]
        assert count_models(clauses, projection=[1, 2]) == 2

    def test_models_respect_projection_distinctness(self):
        clauses = [[1, 2], [3, -3]]
        models = all_models(clauses, projection=[1, 2])
        projected = {(model.get(1, False), model.get(2, False)) for model in models}
        assert len(projected) == len(models)


class TestStats:
    def test_exhausted_flag_set(self):
        enumerator = ModelEnumerator([[1]])
        list(enumerator.enumerate())
        assert enumerator.stats.exhausted
        assert enumerator.stats.models == 1
        assert enumerator.stats.sat_calls >= 2

    def test_blocking_clauses_recorded(self):
        enumerator = ModelEnumerator([[1, 2]])
        list(enumerator.enumerate())
        assert len(enumerator.stats.blocking_clauses) == enumerator.stats.models

    def test_iter_protocol(self):
        assert len(list(ModelEnumerator([[1]]))) == 1


class TestCountsMatchBruteForce:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(
        st.lists(st.integers(min_value=-4, max_value=4).filter(lambda x: x != 0),
                 min_size=1, max_size=3),
        min_size=1, max_size=6))
    def test_enumeration_matches_truth_table(self, clauses):
        variables = sorted({abs(l) for clause in clauses for l in clause})
        expected = 0
        for bits in range(2 ** len(variables)):
            assignment = {var: bool((bits >> i) & 1) for i, var in enumerate(variables)}
            if all(any(assignment[abs(l)] == (l > 0) for l in clause) for clause in clauses):
                expected += 1
        assert count_models(clauses, projection=variables) == expected
