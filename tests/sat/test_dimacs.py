"""Tests for DIMACS CNF / WCNF parsing and writing."""

import pytest

from repro.sat.dimacs import (
    CnfFormula,
    WcnfFormula,
    load_cnf,
    parse_cnf,
    parse_wcnf,
    save_cnf,
    save_wcnf,
    load_wcnf,
    write_cnf,
    write_wcnf,
)


SAMPLE_CNF = """c a comment
p cnf 3 2
1 -2 0
2 3 0
"""

SAMPLE_WCNF = """c weighted
p wcnf 3 3 10
10 1 2 0
3 -1 0
1 -2 3 0
"""


class TestCnfParsing:
    def test_parse_clause_count(self):
        formula = parse_cnf(SAMPLE_CNF)
        assert len(formula.clauses) == 2

    def test_parse_clause_contents(self):
        formula = parse_cnf(SAMPLE_CNF)
        assert formula.clauses[0] == [1, -2]
        assert formula.clauses[1] == [2, 3]

    def test_num_vars_from_header(self):
        assert parse_cnf("p cnf 9 1\n1 0\n").num_vars == 9

    def test_num_vars_grows_beyond_header(self):
        assert parse_cnf("p cnf 1 1\n5 0\n").num_vars == 5

    def test_multi_line_clause(self):
        formula = parse_cnf("p cnf 3 1\n1 2\n3 0\n")
        assert formula.clauses == [[1, 2, 3]]

    def test_comments_ignored(self):
        formula = parse_cnf("c hello\nc world\np cnf 2 1\n1 2 0\n")
        assert len(formula.clauses) == 1

    def test_malformed_problem_line_rejected(self):
        with pytest.raises(ValueError):
            parse_cnf("p dnf 2 1\n1 0\n")

    def test_roundtrip(self):
        formula = parse_cnf(SAMPLE_CNF)
        assert parse_cnf(write_cnf(formula)).clauses == formula.clauses


class TestWcnfParsing:
    def test_hard_and_soft_split(self):
        formula = parse_wcnf(SAMPLE_WCNF)
        assert formula.hard == [[1, 2]]
        assert formula.soft == [(3, [-1]), (1, [-2, 3])]

    def test_roundtrip_preserves_weights(self):
        formula = parse_wcnf(SAMPLE_WCNF)
        again = parse_wcnf(write_wcnf(formula))
        assert again.hard == formula.hard
        assert again.soft == formula.soft

    def test_clause_must_end_with_zero(self):
        with pytest.raises(ValueError):
            parse_wcnf("p wcnf 2 1 5\n5 1 2\n")

    def test_top_weight_exceeds_soft_total(self):
        formula = WcnfFormula()
        formula.add_hard([1])
        formula.add_soft([2], 3)
        formula.add_soft([-2], 4)
        assert formula.top_weight == 8


class TestContainers:
    def test_cnf_add_clause_tracks_vars(self):
        formula = CnfFormula()
        formula.add_clause([4, -6])
        assert formula.num_vars == 6

    def test_cnf_rejects_zero_literal(self):
        with pytest.raises(ValueError):
            CnfFormula().add_clause([0])

    def test_wcnf_rejects_nonpositive_weight(self):
        with pytest.raises(ValueError):
            WcnfFormula().add_soft([1], 0)

    def test_file_roundtrip(self, tmp_path):
        formula = parse_cnf(SAMPLE_CNF)
        path = tmp_path / "f.cnf"
        save_cnf(formula, path)
        assert load_cnf(path).clauses == formula.clauses

    def test_wcnf_file_roundtrip(self, tmp_path):
        formula = parse_wcnf(SAMPLE_WCNF)
        path = tmp_path / "f.wcnf"
        save_wcnf(formula, path)
        again = load_wcnf(path)
        assert again.hard == formula.hard and again.soft == formula.soft
