"""Tests for the CDCL SAT solver."""

import pytest

from repro.sat import SatSolver, SolverStatus


def model_satisfies(model: dict[int, bool], clauses: list[list[int]]) -> bool:
    for clause in clauses:
        if not any(model.get(abs(l), False) if l > 0 else not model.get(abs(l), False)
                   for l in clause):
            return False
    return True


class TestBasicSolving:
    def test_empty_formula_is_sat(self):
        assert SatSolver().solve().is_sat

    def test_single_unit_clause(self):
        solver = SatSolver()
        solver.add_clause([1])
        result = solver.solve()
        assert result.is_sat
        assert result.model[1] is True

    def test_negative_unit_clause(self):
        solver = SatSolver()
        solver.add_clause([-1])
        result = solver.solve()
        assert result.is_sat
        assert result.model[1] is False

    def test_contradictory_units_unsat(self):
        solver = SatSolver()
        solver.add_clause([1])
        assert solver.add_clause([-1]) is False
        assert solver.solve().is_unsat

    def test_simple_implication_chain(self):
        solver = SatSolver()
        solver.add_clause([1])
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        result = solver.solve()
        assert result.is_sat
        assert result.model[3] is True

    def test_two_sat_instance(self):
        clauses = [[1, 2], [-1, 3], [-2, -3], [1, -3]]
        solver = SatSolver()
        solver.add_clauses(clauses)
        result = solver.solve()
        assert result.is_sat
        assert model_satisfies(result.model, clauses)

    def test_unsat_small_formula(self):
        # (a) & (-a | b) & (-b)
        solver = SatSolver()
        solver.add_clauses([[1], [-1, 2], [-2]])
        assert solver.solve().is_unsat

    def test_tautological_clause_ignored(self):
        solver = SatSolver()
        solver.add_clause([1, -1])
        solver.add_clause([2])
        result = solver.solve()
        assert result.is_sat
        assert result.model[2] is True

    def test_duplicate_literals_collapsed(self):
        solver = SatSolver()
        solver.add_clause([3, 3, 3])
        result = solver.solve()
        assert result.is_sat and result.model[3] is True

    def test_zero_literal_rejected(self):
        solver = SatSolver()
        with pytest.raises(ValueError):
            solver.add_clause([1, 0])

    def test_model_covers_all_variables(self):
        solver = SatSolver()
        solver.ensure_vars(6)
        solver.add_clause([1, 2])
        result = solver.solve()
        assert set(result.model) == set(range(1, 7))


class TestPigeonhole:
    """Pigeonhole formulas: n+1 pigeons into n holes is UNSAT, n into n is SAT."""

    @staticmethod
    def _php(pigeons: int, holes: int) -> SatSolver:
        solver = SatSolver()

        def var(pigeon: int, hole: int) -> int:
            return pigeon * holes + hole + 1

        for pigeon in range(pigeons):
            solver.add_clause([var(pigeon, hole) for hole in range(holes)])
        for hole in range(holes):
            for first in range(pigeons):
                for second in range(first + 1, pigeons):
                    solver.add_clause([-var(first, hole), -var(second, hole)])
        return solver

    def test_php_4_into_3_unsat(self):
        assert self._php(4, 3).solve().is_unsat

    def test_php_5_into_4_unsat(self):
        assert self._php(5, 4).solve().is_unsat

    def test_php_4_into_4_sat(self):
        assert self._php(4, 4).solve().is_sat

    def test_php_6_into_6_sat(self):
        assert self._php(6, 6).solve().is_sat


class TestIncrementalAndAssumptions:
    def test_solve_twice_same_answer(self):
        solver = SatSolver()
        solver.add_clauses([[1, 2], [-1, 2]])
        assert solver.solve().is_sat
        assert solver.solve().is_sat

    def test_adding_clauses_between_solves(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        assert solver.solve().is_sat
        solver.add_clause([-1])
        solver.add_clause([-2])
        assert solver.solve().is_unsat

    def test_assumption_forces_value(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        result = solver.solve(assumptions=[-1])
        assert result.is_sat
        assert result.model[1] is False
        assert result.model[2] is True

    def test_assumptions_do_not_persist(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        solver.solve(assumptions=[-1, -2])
        result = solver.solve()
        assert result.is_sat

    def test_conflicting_assumptions_give_core(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        result = solver.solve(assumptions=[-1, -2])
        assert result.is_unsat
        assert set(abs(l) for l in result.core) <= {1, 2}
        assert result.core

    def test_core_is_subset_of_assumptions(self):
        solver = SatSolver()
        solver.add_clauses([[1], [-1, 2], [-2, 3]])
        result = solver.solve(assumptions=[-3, 5])
        assert result.is_unsat
        assert set(result.core) <= {-3, 5}

    def test_assumption_on_fresh_variable(self):
        solver = SatSolver()
        solver.add_clause([1])
        result = solver.solve(assumptions=[9])
        assert result.is_sat
        assert result.model[9] is True


class TestBudgets:
    def test_conflict_budget_gives_unknown_on_hard_instance(self):
        # PHP(7, 6) is hard enough that one conflict is never sufficient.
        solver = TestPigeonhole._php(7, 6)
        result = solver.solve(conflict_budget=1)
        assert result.status in (SolverStatus.UNKNOWN, SolverStatus.UNSAT)

    def test_zero_time_budget_still_terminates(self):
        solver = TestPigeonhole._php(6, 5)
        result = solver.solve(time_budget=0.0)
        assert result.status in (SolverStatus.UNKNOWN, SolverStatus.UNSAT)

    def test_statistics_are_recorded(self):
        solver = TestPigeonhole._php(5, 4)
        result = solver.solve()
        assert result.conflicts > 0
        assert result.propagations > 0
        assert result.solve_time >= 0.0


class TestGraphColoring:
    """Graph colouring encodings exercise longer clauses and symmetry."""

    @staticmethod
    def _coloring(edges: list[tuple[int, int]], nodes: int, colors: int) -> SatSolver:
        solver = SatSolver()

        def var(node: int, color: int) -> int:
            return node * colors + color + 1

        for node in range(nodes):
            solver.add_clause([var(node, color) for color in range(colors)])
        for first, second in edges:
            for color in range(colors):
                solver.add_clause([-var(first, color), -var(second, color)])
        return solver

    def test_triangle_needs_three_colors(self):
        triangle = [(0, 1), (1, 2), (0, 2)]
        assert self._coloring(triangle, 3, 2).solve().is_unsat
        assert self._coloring(triangle, 3, 3).solve().is_sat

    def test_complete_graph_k5(self):
        k5 = [(i, j) for i in range(5) for j in range(i + 1, 5)]
        assert self._coloring(k5, 5, 4).solve().is_unsat
        assert self._coloring(k5, 5, 5).solve().is_sat

    def test_cycle_of_five_needs_three_colors(self):
        cycle = [(i, (i + 1) % 5) for i in range(5)]
        assert self._coloring(cycle, 5, 2).solve().is_unsat
        assert self._coloring(cycle, 5, 3).solve().is_sat
