"""Tests for the VSIDS activity heap."""

import pytest

from repro.sat.vsids import VsidsHeap


class TestHeapBasics:
    def test_grow_adds_all_variables(self):
        heap = VsidsHeap()
        heap.grow_to(5)
        assert all(variable in heap for variable in range(1, 6))

    def test_pop_from_empty_returns_none(self):
        heap = VsidsHeap()
        assert heap.pop_max() is None

    def test_pop_removes_variable(self):
        heap = VsidsHeap()
        heap.grow_to(3)
        popped = heap.pop_max()
        assert popped not in heap

    def test_push_reinserts_popped_variable(self):
        heap = VsidsHeap()
        heap.grow_to(3)
        popped = heap.pop_max()
        heap.push(popped)
        assert popped in heap

    def test_push_is_idempotent(self):
        heap = VsidsHeap()
        heap.grow_to(3)
        heap.push(1)
        heap.push(1)
        popped = {heap.pop_max() for _ in range(3)}
        assert popped == {1, 2, 3}

    def test_invalid_decay_rejected(self):
        with pytest.raises(ValueError):
            VsidsHeap(decay=0.0)
        with pytest.raises(ValueError):
            VsidsHeap(decay=1.5)


class TestActivityOrdering:
    def test_bumped_variable_pops_first(self):
        heap = VsidsHeap()
        heap.grow_to(10)
        heap.bump(7)
        assert heap.pop_max() == 7

    def test_repeated_bumps_dominate(self):
        heap = VsidsHeap()
        heap.grow_to(4)
        heap.bump(2)
        heap.bump(3)
        heap.bump(3)
        assert heap.pop_max() == 3
        assert heap.pop_max() == 2

    def test_decay_makes_later_bumps_heavier(self):
        heap = VsidsHeap(decay=0.5)
        heap.grow_to(4)
        heap.bump(1)
        heap.decay_activities()
        heap.bump(2)
        # Variable 2's bump used a larger increment, so it outranks variable 1.
        assert heap.pop_max() == 2

    def test_rescaling_preserves_order(self):
        heap = VsidsHeap(decay=0.5)
        heap.grow_to(3)
        # Force many decays so the increment crosses the rescale limit.
        for _ in range(400):
            heap.decay_activities()
            heap.bump(1)
        heap.bump(2)
        assert heap.activity[1] < VsidsHeap.RESCALE_LIMIT
        assert heap.pop_max() == 1

    def test_pop_returns_every_variable_exactly_once(self):
        heap = VsidsHeap()
        heap.grow_to(20)
        for variable in (3, 7, 11):
            heap.bump(variable)
        seen = []
        while True:
            variable = heap.pop_max()
            if variable is None:
                break
            seen.append(variable)
        assert sorted(seen) == list(range(1, 21))
