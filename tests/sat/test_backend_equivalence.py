"""Backend equivalence: the compiled CDCL core answers like the reference.

The native backend (``repro.sat._native.core`` driven by
:class:`~repro.sat.native.NativeSatSolver`) is only admissible because it is
*observably interchangeable* with the pure-Python :class:`SatSolver`: same
SAT/UNSAT verdicts, same MaxSAT optima through every strategy, same routing
results, and byte-identical job content hashes (backend choice must never
leak into cache keys).  These tests pin that contract.

Everything here that needs the compiled core is skipped when the extension
is not built, so the file passes on a wheel installed without a C
toolchain -- the fallback behaviour itself is tested unconditionally.
"""

import random

import pytest

from repro.maxsat import MaxSatSolver, MaxSatStatus, WcnfBuilder
from repro.sat import SatSession, SatSolver
from repro.sat.backends import (
    BACKEND_ENV,
    CROSSCHECK_ENV,
    DISABLE_NATIVE_ENV,
    available_backends,
    create_solver,
    native_available,
    resolve_backend,
)

needs_native = pytest.mark.skipif(
    not native_available(), reason="compiled SAT core not built")


def random_cnf(rng: random.Random, num_vars: int, num_clauses: int) -> list[list[int]]:
    """A random CNF instance (clause width 1..3) in the session-test idiom."""
    clauses = []
    for _ in range(num_clauses):
        width = rng.randint(1, 3)
        variables = rng.sample(range(1, num_vars + 1), min(width, num_vars))
        clauses.append([v if rng.random() < 0.5 else -v for v in variables])
    return clauses


def check_model(model: dict[int, bool], clauses: list[list[int]]) -> bool:
    return all(
        any(model.get(abs(lit), False) == (lit > 0) for lit in clause)
        for clause in clauses)


@needs_native
class TestVerdictEquivalence:
    """Same verdicts on randomized instances, models verified clause-wise."""

    def test_plain_instances(self):
        rng = random.Random(2201)
        for _ in range(30):
            clauses = random_cnf(rng, rng.randint(4, 18), rng.randint(6, 70))
            verdicts = {}
            for backend in ("python", "native"):
                session = SatSession(backend=backend)
                for clause in clauses:
                    session.add_hard(clause)
                result = session.solve()
                verdicts[backend] = result.is_sat
                if result.is_sat:
                    assert check_model(result.model, clauses), backend
            assert verdicts["python"] == verdicts["native"], clauses

    def test_instances_under_assumptions(self):
        rng = random.Random(2202)
        for _ in range(25):
            num_vars = rng.randint(5, 15)
            clauses = random_cnf(rng, num_vars, rng.randint(8, 50))
            assumptions = [v if rng.random() < 0.5 else -v
                           for v in rng.sample(range(1, num_vars + 1),
                                               rng.randint(1, 3))]
            outcomes = {}
            for backend in ("python", "native"):
                session = SatSession(backend=backend)
                for clause in clauses:
                    session.add_hard(clause)
                result = session.solve(assumptions=assumptions)
                outcomes[backend] = result.is_sat
                if result.is_sat:
                    assert check_model(result.model, clauses)
                    for lit in assumptions:
                        assert result.model[abs(lit)] == (lit > 0)
                else:
                    # The final-conflict core is a subset of the assumptions.
                    assert set(map(abs, result.core)) <= set(map(abs, assumptions))
            assert outcomes["python"] == outcomes["native"], (clauses, assumptions)

    def test_incremental_growth_stays_equivalent(self):
        """Interleaved add/solve -- the incremental path both cores share."""
        rng = random.Random(2203)
        python = SatSession(backend="python")
        native = SatSession(backend="native")
        clauses: list[list[int]] = []
        for _ in range(12):
            batch = random_cnf(rng, 12, rng.randint(3, 10))
            clauses.extend(batch)
            for clause in batch:
                python.add_hard(clause)
                native.add_hard(clause)
            p, n = python.solve(), native.solve()
            assert p.is_sat == n.is_sat
            if n.is_sat:
                assert check_model(n.model, clauses)
            else:
                break


@needs_native
class TestOptimaEquivalence:
    """Linear and OLL strategies reach the same optimum on either core."""

    @staticmethod
    def _random_wcnf(rng: random.Random) -> tuple[int, list, list]:
        num_vars = rng.randint(3, 8)
        hard = random_cnf(rng, num_vars, rng.randint(0, 10))
        soft = [(rng.randint(1, 4), clause)
                for clause in random_cnf(rng, num_vars, rng.randint(2, 8))]
        return num_vars, hard, soft

    @staticmethod
    def _build(num_vars, hard, soft) -> WcnfBuilder:
        builder = WcnfBuilder()
        builder.new_vars(num_vars)
        for clause in hard:
            builder.add_hard(list(clause))
        for weight, clause in soft:
            builder.add_soft(list(clause), weight)
        return builder

    @pytest.mark.parametrize("strategy", ["linear", "rc2"])
    def test_same_optima(self, strategy):
        rng = random.Random(2204)
        for _ in range(15):
            num_vars, hard, soft = self._random_wcnf(rng)
            outcomes = {}
            for backend in ("python", "native"):
                solver = MaxSatSolver(strategy,
                                      session=SatSession(backend=backend))
                result = solver.solve(self._build(num_vars, hard, soft))
                outcomes[backend] = (result.status, result.cost)
            assert outcomes["python"] == outcomes["native"], (hard, soft)

    @pytest.mark.parametrize("strategy", ["linear", "rc2"])
    def test_same_optima_without_session(self, strategy):
        """The session-less path resolves its own solver per strategy."""
        rng = random.Random(2205)
        for _ in range(8):
            num_vars, hard, soft = self._random_wcnf(rng)
            outcomes = {}
            for backend in ("python", "native"):
                solver = MaxSatSolver(strategy, solver_backend=backend)
                result = solver.solve(self._build(num_vars, hard, soft))
                outcomes[backend] = (result.status, result.cost)
            assert outcomes["python"] == outcomes["native"], (hard, soft)


@needs_native
class TestRoutingEquivalence:
    """Whole-pipeline equivalence: identical routing results, tagged stats."""

    @staticmethod
    def _route(backend: str):
        from repro.core.satmap import SatMapRouter
        from repro.circuits.named_circuits import qft_circuit
        from repro.hardware.topologies import line_architecture

        router = SatMapRouter(slice_size=10, time_budget=30.0,
                              solver_backend=backend)
        return router.route(qft_circuit(4), line_architecture(4))

    def test_identical_routing_results(self):
        python = self._route("python")
        native = self._route("native")
        assert python.solved and native.solved
        assert python.optimal == native.optimal
        assert python.swap_count == native.swap_count
        assert python.added_cnots == native.added_cnots
        assert python.status == native.status
        assert python.solver_stats["backend"] == "python"
        assert native.solver_stats["backend"] == "native"

    def test_golden_job_hashes_are_backend_independent(self, monkeypatch):
        """Backend choice via the environment never perturbs cache keys.

        The golden value is the ``satmap`` hash frozen in
        ``tests/service/test_hash_compat.py``: if either backend shifted it,
        a fleet mixing solve cores would stop deduplicating.
        """
        from repro.circuits.named_circuits import qft_circuit
        from repro.hardware.topologies import tokyo_architecture
        from repro.service.jobs import RoutingJob

        golden = "8da806fa513fa80d8a7a417e560a884c1a27a0c4054122a39a4991a26ec59f91"
        for backend in ("python", "native"):
            monkeypatch.setenv(BACKEND_ENV, backend)
            job = RoutingJob.from_spec(qft_circuit(5), tokyo_architecture(),
                                       "satmap")
            assert job.content_hash() == golden, backend


class TestBackendResolution:
    """Selection precedence and the graceful-fallback contract."""

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "python")
        assert resolve_backend("python") == "python"
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend("python") == "python"

    def test_env_beats_auto(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "python")
        assert resolve_backend() == "python"
        assert resolve_backend("auto") == "python"
        session = SatSession()
        assert session.backend == "python"
        assert isinstance(session.solver, SatSolver)

    def test_unknown_names_are_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("minisat")

    def test_forced_fallback_auto_uses_python(self, monkeypatch):
        """Native unavailable -> ``auto`` silently runs the reference core."""
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        monkeypatch.setenv(DISABLE_NATIVE_ENV, "1")
        assert not native_available()
        assert available_backends() == ["python"]
        assert resolve_backend() == "python"
        session = SatSession()
        assert session.backend == "python"
        assert isinstance(session.solver, SatSolver)
        session.add_hard([1, 2])
        session.add_hard([-1])
        result = session.solve()
        assert result.is_sat and result.model[2] is True
        assert session.solver_stats()["backend"] == "python"

    def test_forced_fallback_explicit_native_is_loud(self, monkeypatch):
        """An *explicit* native request must fail, never silently degrade."""
        monkeypatch.setenv(DISABLE_NATIVE_ENV, "1")
        with pytest.raises(RuntimeError, match="native"):
            resolve_backend("native")
        with pytest.raises(RuntimeError, match="native"):
            SatSession(backend="native")

    @needs_native
    def test_auto_prefers_native_when_available(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        monkeypatch.delenv(DISABLE_NATIVE_ENV, raising=False)
        assert resolve_backend() == "native"
        assert "native" in available_backends()

    @needs_native
    def test_stats_carry_the_backend_tag(self):
        for backend in ("python", "native"):
            solver = create_solver(backend)
            solver.ensure_vars(2)
            solver.add_clause([1, 2])
            assert solver.solve().is_sat
            assert solver.stats.as_dict()["backend"] == backend


@needs_native
class TestCrossCheck:
    """REPRO_SAT_CROSSCHECK=1 replays native answers through the python core."""

    def test_sat_and_unsat_verdicts_survive_crosschecking(self, monkeypatch):
        monkeypatch.setenv(CROSSCHECK_ENV, "1")
        rng = random.Random(2206)
        saw_sat = saw_unsat = False
        for _ in range(20):
            clauses = random_cnf(rng, rng.randint(4, 12), rng.randint(6, 45))
            session = SatSession(backend="native")
            for clause in clauses:
                session.add_hard(clause)
            result = session.solve()  # CrossCheckError on any divergence
            saw_sat |= result.is_sat
            saw_unsat |= not result.is_sat
        assert saw_sat and saw_unsat, "sweep should exercise both verdicts"

    def test_crosscheck_covers_assumption_cores(self, monkeypatch):
        monkeypatch.setenv(CROSSCHECK_ENV, "1")
        session = SatSession(backend="native")
        session.add_hard([-1, -2])
        result = session.solve(assumptions=[1, 2])
        assert not result.is_sat
        assert set(map(abs, result.core)) <= {1, 2}
