"""Tests for persistent solve sessions (repro.sat.session).

The heart of the incremental refactor is an equivalence claim: solving
through one long-lived session must return the same SAT/UNSAT verdicts as
solving every instance from scratch.  These tests check that claim
property-style on randomized CNF instances, plus the core-extraction
behaviour the MaxSAT layer depends on.
"""

import random

from repro.sat import ClauseSink, SatSession, SatSolver
from repro.maxsat.wcnf import WcnfBuilder


def random_cnf(rng: random.Random, num_vars: int, num_clauses: int) -> list[list[int]]:
    """A random 3-CNF-ish instance (clause width 1..3)."""
    clauses = []
    for _ in range(num_clauses):
        width = rng.randint(1, 3)
        variables = rng.sample(range(1, num_vars + 1), min(width, num_vars))
        clauses.append([v if rng.random() < 0.5 else -v for v in variables])
    return clauses


class TestSessionBasics:
    def test_is_a_clause_sink(self):
        assert isinstance(SatSession(), ClauseSink)
        assert isinstance(WcnfBuilder(), ClauseSink)

    def test_streams_and_solves(self):
        session = SatSession()
        session.add_hard([1, 2])
        session.add_hard([-1, 2])
        result = session.solve()
        assert result.is_sat and result.model[2] is True
        assert session.stats.clauses_streamed == 2
        assert session.stats.solve_calls == 1

    def test_solver_survives_across_calls(self):
        session = SatSession()
        session.add_hard([1, 2])
        assert session.solve().is_sat
        solver_before = session.solver
        session.add_hard([-1])
        assert session.solve().is_sat
        assert session.solver is solver_before

    def test_learnt_clauses_are_retained(self):
        rng = random.Random(11)
        session = SatSession()
        for clause in random_cnf(rng, 30, 140):
            session.add_hard(clause)
        session.solve()
        # A second solve keeps whatever the first one learnt.
        learnt = session.learnt_clauses_retained
        session.solve(assumptions=[1])
        assert session.learnt_clauses_retained >= learnt >= 0

    def test_reset_discards_everything(self):
        session = SatSession()
        session.add_hard([1])
        session.add_hard([-1])
        assert session.solve().is_unsat
        session.reset()
        assert session.ok
        assert session.stats.clauses_streamed == 0
        session.add_hard([2])
        assert session.solve().is_sat

    def test_reset_makes_attached_builders_restream(self):
        """A reset session must be re-fed the formula, not answer for nothing."""
        builder = WcnfBuilder()
        v = builder.new_var()
        session = SatSession()
        builder.attach_sink(session)
        builder.add_hard([v])
        builder.add_hard([-v])
        assert session.solve().is_unsat
        session.reset()
        builder.sync_sink()
        # The fresh solver holds the (still unsatisfiable) formula again.
        assert session.stats.clauses_streamed > 0
        assert session.solve().is_unsat

    def test_describe_reports_reuse_counters(self):
        session = SatSession()
        session.add_hard([1, 2])
        session.solve()
        described = session.describe()
        assert described["clauses_streamed"] == 1
        assert described["solve_calls"] == 1
        assert described["num_vars"] == 2


class TestSessionEquivalence:
    """Session-reuse verdicts == from-scratch verdicts on random CNF."""

    def test_incremental_clause_addition_matches_from_scratch(self):
        for seed in range(12):
            rng = random.Random(1000 + seed)
            clauses = random_cnf(rng, rng.randint(5, 14), rng.randint(10, 50))
            session = SatSession()
            # Feed the instance in chunks, solving between chunks (the session
            # path), and compare every verdict with a fresh solver built from
            # the clauses streamed so far (the from-scratch path).
            streamed: list[list[int]] = []
            chunk = max(1, len(clauses) // 4)
            for start in range(0, len(clauses), chunk):
                for clause in clauses[start:start + chunk]:
                    session.add_hard(clause)
                    streamed.append(clause)
                fresh = SatSolver()
                for clause in streamed:
                    fresh.add_clause(clause)
                assert session.solve().status is fresh.solve().status, (
                    f"seed {seed}: session and from-scratch verdicts diverged "
                    f"after {len(streamed)} clauses")

    def test_assumption_solving_matches_hard_unit_solving(self):
        for seed in range(12):
            rng = random.Random(2000 + seed)
            num_vars = rng.randint(6, 12)
            clauses = random_cnf(rng, num_vars, rng.randint(15, 45))
            assumption_sets = [
                [v if rng.random() < 0.5 else -v
                 for v in rng.sample(range(1, num_vars + 1), rng.randint(1, 3))]
                for _ in range(4)
            ]
            session = SatSession()
            for clause in clauses:
                session.add_hard(clause)
            for assumptions in assumption_sets:
                fresh = SatSolver()
                for clause in clauses:
                    fresh.add_clause(clause)
                for literal in assumptions:
                    fresh.add_clause([literal])
                expected = fresh.solve().status.value
                got = session.solve(assumptions=assumptions).status.value
                # A poisoned fresh solver reports UNSAT the same way.
                assert got == expected, (
                    f"seed {seed}: assumptions {assumptions} gave {got}, "
                    f"from-scratch hard units gave {expected}")


class TestUnsatCoreStability:
    def _pigeonhole_session(self) -> tuple[SatSession, list[int]]:
        """Three pigeons, two holes, selectable per-pigeon placement duty."""
        session = SatSession()
        # var(p, h) = 1 + 2p + h ; selector s_p = 7 + p enables pigeon p.
        def var(p, h):
            return 1 + 2 * p + h
        selectors = [7 + p for p in range(3)]
        for p in range(3):
            session.add_hard([-selectors[p], var(p, 0), var(p, 1)])
        for h in range(2):
            for p1 in range(3):
                for p2 in range(p1 + 1, 3):
                    session.add_hard([-var(p1, h), -var(p2, h)])
        return session, selectors

    def test_core_is_stable_across_successive_calls(self):
        session, selectors = self._pigeonhole_session()
        assumptions = selectors  # enable all three pigeons: UNSAT
        cores = []
        for _ in range(3):
            result = session.solve(assumptions=assumptions)
            assert result.is_unsat
            assert result.core, "an assumption-UNSAT result must carry a core"
            assert set(result.core) <= set(assumptions)
            cores.append(sorted(result.core))
        # Re-solving the identical query on the warmed session must keep
        # returning a valid core; re-assuming any reported core is UNSAT.
        for core in cores:
            assert session.solve(assumptions=core).is_unsat
        # And the session is not poisoned: dropping one pigeon is SAT again.
        assert session.solve(assumptions=selectors[:2]).is_sat

    def test_core_shrinks_to_the_conflicting_subset(self):
        session, selectors = self._pigeonhole_session()
        # An irrelevant extra assumption must not be required in the core.
        extra = 20
        session.ensure_vars(extra)
        result = session.solve(assumptions=selectors + [extra])
        assert result.is_unsat
        assert session.solve(assumptions=[lit for lit in result.core
                                          if lit != extra]).is_unsat
