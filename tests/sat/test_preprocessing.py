"""Tests for the CNF preprocessor."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.preprocessing import Preprocessor, simplify_clauses
from repro.sat.solver import SatSolver, SolverStatus


def _solve(clauses):
    solver = SatSolver()
    max_var = max((abs(l) for clause in clauses for l in clause), default=0)
    solver.ensure_vars(max_var)
    for clause in clauses:
        solver.add_clause(clause)
    return solver.solve()


def _satisfies(clauses, model):
    for clause in clauses:
        if not any((model.get(abs(l), False)) == (l > 0) for l in clause):
            return False
    return True


class TestUnitPropagation:
    def test_single_unit_is_fixed(self):
        result = simplify_clauses([[1], [-1, 2]])
        assert not result.unsatisfiable
        assert 1 in result.fixed_literals
        assert 2 in result.fixed_literals
        assert result.clauses == []

    def test_conflicting_units_are_unsat(self):
        result = simplify_clauses([[1], [-1]])
        assert result.unsatisfiable

    def test_chain_of_implications_propagates(self):
        clauses = [[1], [-1, 2], [-2, 3], [-3, 4]]
        result = simplify_clauses(clauses)
        assert set(result.fixed_literals) == {1, 2, 3, 4}

    def test_propagation_exposes_empty_clause(self):
        result = simplify_clauses([[1], [2], [-1, -2]])
        assert result.unsatisfiable

    def test_counter_reports_units(self):
        result = simplify_clauses([[5], [-5, 6]])
        assert result.propagated_units >= 2


class TestTautologyAndDuplicates:
    def test_tautology_removed(self):
        result = simplify_clauses([[1, -1, 2], [2, 3]])
        assert result.removed_tautologies == 1
        assert len(result.clauses) <= 1 or result.fixed_literals

    def test_duplicate_literals_collapsed(self):
        result = simplify_clauses([[1, 1, 2], [-1, 3]])
        for clause in result.clauses:
            assert len(clause) == len(set(clause))

    def test_empty_input_clause_is_unsat(self):
        result = simplify_clauses([[1, 2], []])
        assert result.unsatisfiable


class TestPureLiterals:
    def test_pure_literal_is_fixed_positively(self):
        # Variable 3 only occurs positively.
        result = simplify_clauses([[1, 3], [-1, 3], [1, -2]])
        assert 3 in result.fixed_literals

    def test_pure_elimination_removes_clauses(self):
        result = simplify_clauses([[4, 5], [4, -5]])
        # 4 is pure, so both clauses disappear.
        assert result.clauses == []
        assert 4 in result.fixed_literals


class TestSubsumption:
    def test_superset_clause_removed(self):
        result = simplify_clauses([[1, -2], [1, -2, 3], [2, 3, 4], [-1, -3]])
        assert result.removed_subsumed >= 1
        assert [1, -2, 3] not in result.clauses

    def test_identical_clauses_deduplicated(self):
        result = simplify_clauses([[1, 2, 7], [1, 2, 7], [-1, -7, 3]])
        occurrences = sum(1 for clause in result.clauses if sorted(clause, key=abs) == [1, 2, 7])
        assert occurrences <= 1


class TestSelfSubsumption:
    def test_clause_strengthened(self):
        # (1 2) and (1 -2 3): the second strengthens to (1 3).  Every variable
        # occurs in both polarities so pure-literal elimination stays out of
        # the way.
        result = simplify_clauses(
            [[1, 2], [1, -2, 3], [-1, -3], [-2, -3], [2, 3, -1]])
        assert result.strengthened >= 1

    def test_equivalence_pair_reduces_to_units_or_binary(self):
        # (1 -2) and (-1 2) encode 1 <-> 2; no contradiction, stays satisfiable.
        result = simplify_clauses([[1, -2], [-1, 2]])
        assert not result.unsatisfiable


class TestModelExtension:
    def test_extend_model_adds_fixed_literals(self):
        result = simplify_clauses([[1], [-1, 2], [3, 4], [-3, 4]])
        model = {}
        for clause in result.clauses:
            model[abs(clause[0])] = clause[0] > 0
        extended = Preprocessor.extend_model(model, result.fixed_literals)
        assert extended[1] is True
        assert extended[2] is True

    def test_extension_preserves_existing_entries(self):
        extended = Preprocessor.extend_model({7: False}, [1, -2])
        assert extended == {7: False, 1: True, 2: False}


class TestEquisatisfiability:
    def test_rejects_bad_max_rounds(self):
        import pytest

        with pytest.raises(ValueError):
            Preprocessor(max_rounds=0)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(
        st.lists(st.integers(min_value=-6, max_value=6).filter(lambda x: x != 0),
                 min_size=1, max_size=4),
        min_size=1, max_size=12))
    def test_simplification_preserves_satisfiability(self, clauses):
        original = _solve(clauses)
        result = simplify_clauses(clauses)
        if result.unsatisfiable:
            assert original.status is SolverStatus.UNSAT
            return
        simplified = _solve(result.clauses) if result.clauses else None
        if original.status is SolverStatus.SAT:
            assert simplified is None or simplified.status is SolverStatus.SAT
            if simplified is not None:
                extended = Preprocessor.extend_model(simplified.model, result.fixed_literals)
                assert _satisfies(clauses, extended)
        else:
            # Original UNSAT: simplified formula must not become satisfiable
            # in a way that extends to the original.
            if simplified is not None and simplified.status is SolverStatus.SAT:
                extended = Preprocessor.extend_model(simplified.model, result.fixed_literals)
                assert not _satisfies(clauses, extended)
