"""Tests for literal/variable helpers."""

import pytest

from repro.sat.literals import lit, neg, sign_of, var_of


class TestLit:
    def test_positive_literal(self):
        assert lit(3) == 3

    def test_negative_literal(self):
        assert lit(3, positive=False) == -3

    def test_rejects_zero_variable(self):
        with pytest.raises(ValueError):
            lit(0)

    def test_rejects_negative_variable(self):
        with pytest.raises(ValueError):
            lit(-2)


class TestNeg:
    def test_neg_positive(self):
        assert neg(5) == -5

    def test_neg_negative(self):
        assert neg(-5) == 5

    def test_double_negation_is_identity(self):
        assert neg(neg(7)) == 7

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            neg(0)


class TestVarOf:
    def test_var_of_positive(self):
        assert var_of(9) == 9

    def test_var_of_negative(self):
        assert var_of(-9) == 9

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            var_of(0)


class TestSignOf:
    def test_sign_of_positive(self):
        assert sign_of(4) is True

    def test_sign_of_negative(self):
        assert sign_of(-4) is False

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            sign_of(0)
