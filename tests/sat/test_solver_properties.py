"""Property-based tests cross-checking the CDCL solver against brute force."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.sat import SatSolver
from repro.sat.solver import luby


def brute_force_sat(num_vars: int, clauses: list[list[int]]) -> bool:
    for bits in itertools.product([False, True], repeat=num_vars):
        if all(any(bits[abs(l) - 1] if l > 0 else not bits[abs(l) - 1] for l in clause)
               for clause in clauses):
            return True
    return False


@st.composite
def random_cnf(draw):
    num_vars = draw(st.integers(min_value=2, max_value=7))
    num_clauses = draw(st.integers(min_value=1, max_value=24))
    clauses = []
    for _ in range(num_clauses):
        width = draw(st.integers(min_value=1, max_value=3))
        clause = [draw(st.sampled_from([1, -1])) * draw(st.integers(1, num_vars))
                  for _ in range(width)]
        clauses.append(clause)
    return num_vars, clauses


class TestSolverAgainstBruteForce:
    @given(random_cnf())
    @settings(max_examples=60, deadline=None)
    def test_sat_answer_matches_brute_force(self, instance):
        num_vars, clauses = instance
        solver = SatSolver()
        solver.add_clauses([list(clause) for clause in clauses])
        result = solver.solve()
        assert result.is_sat == brute_force_sat(num_vars, clauses)

    @given(random_cnf())
    @settings(max_examples=60, deadline=None)
    def test_returned_models_satisfy_the_formula(self, instance):
        num_vars, clauses = instance
        solver = SatSolver()
        solver.add_clauses([list(clause) for clause in clauses])
        result = solver.solve()
        if result.is_sat:
            for clause in clauses:
                assert any(result.model[abs(l)] if l > 0 else not result.model[abs(l)]
                           for l in clause)

    @given(random_cnf(), st.lists(st.integers(1, 5), min_size=1, max_size=3, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_assumptions_respected_in_models(self, instance, assumed_vars):
        num_vars, clauses = instance
        assumptions = [-v for v in assumed_vars]
        solver = SatSolver()
        solver.add_clauses([list(clause) for clause in clauses])
        result = solver.solve(assumptions=assumptions)
        if result.is_sat:
            for literal in assumptions:
                value = result.model[abs(literal)]
                assert value is (literal > 0)

    @given(random_cnf())
    @settings(max_examples=30, deadline=None)
    def test_incremental_resolve_is_consistent(self, instance):
        num_vars, clauses = instance
        solver = SatSolver()
        solver.add_clauses([list(clause) for clause in clauses])
        first = solver.solve()
        second = solver.solve()
        assert first.is_sat == second.is_sat


class TestLubySequence:
    def test_prefix(self):
        expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]
        assert [luby(index) for index in range(1, 16)] == expected

    @given(st.integers(min_value=1, max_value=500))
    @settings(max_examples=50, deadline=None)
    def test_values_are_powers_of_two(self, index):
        value = luby(index)
        assert value & (value - 1) == 0
