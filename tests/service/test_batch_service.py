"""End-to-end behaviour of the BatchRoutingService facade."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_many_routers
from repro.analysis.suite import tiny_suite
from repro.circuits.random_circuits import random_circuit
from repro.core.verifier import verify_routing
from repro.hardware.topologies import reduced_tokyo_architecture
from repro.service import BatchRoutingService, RoutingJob


@pytest.fixture
def arch():
    return reduced_tokyo_architecture(6)


def make_jobs(arch, count=4, router="sabre"):
    return [RoutingJob.from_circuit(
        random_circuit(4, 8 + 2 * index, seed=40 + index, name=f"batch_{index}"),
        arch, router=router) for index in range(count)]


class TestBatchBasics:
    def test_every_result_answers_its_job_in_order(self, arch):
        jobs = make_jobs(arch)
        with BatchRoutingService(mode="serial", time_budget=10.0) as service:
            results = service.route_batch(jobs)
        assert len(results) == len(jobs)
        for job, result in zip(jobs, results):
            assert result.solved
            assert result.circuit_name == job.name
            swaps = verify_routing(job.circuit(), result.routed_circuit,
                                   result.initial_mapping, job.architecture())
            assert swaps == result.swap_count

    def test_second_identical_batch_is_served_from_cache(self, arch, tmp_path):
        jobs = make_jobs(arch)
        with BatchRoutingService(mode="serial", time_budget=10.0,
                                 cache_dir=tmp_path) as service:
            first = service.route_batch(jobs)
            second = service.route_batch(jobs)
        assert service.cache.hits == len(jobs)
        assert [r.swap_count for r in first] == [r.swap_count for r in second]
        assert all("cache-hit" in result.notes for result in second)

    def test_duplicate_jobs_within_a_batch_hit_the_cache(self, arch):
        jobs = make_jobs(arch, count=2)
        with BatchRoutingService(mode="serial", time_budget=10.0) as service:
            results = service.route_batch(jobs + jobs)
        assert all(result.solved for result in results)
        assert service.cache.hits == 2

    def test_progress_callback_sees_every_job(self, arch):
        jobs = make_jobs(arch, count=3)
        seen = []
        with BatchRoutingService(mode="serial", time_budget=10.0) as service:
            service.route_batch(jobs, progress=lambda update: seen.append(update))
        assert [update.completed for update in seen] == [1, 2, 3]
        assert seen[-1].fraction == 1.0

    def test_telemetry_records_the_job_lifecycle(self, arch):
        jobs = make_jobs(arch, count=1)
        with BatchRoutingService(mode="serial", time_budget=10.0) as service:
            service.route_batch(jobs)
            service.route_batch(jobs)
        key = jobs[0].key
        kinds = service.telemetry.kinds_for(key)
        assert kinds == ["queued", "started", "cache-store", "finished",
                         "queued", "cache-hit"]
        assert service.telemetry.jobs_finished == 2

    def test_route_circuit_convenience(self, arch):
        circuit = random_circuit(4, 8, seed=77, name="conv")
        with BatchRoutingService(mode="serial", time_budget=10.0) as service:
            result = service.route_circuit(circuit, arch, router="naive")
        assert result.solved
        assert result.router_name == "naive"


class TestDeterminism:
    @pytest.mark.parametrize("workers,mode", [(1, "serial"), (2, "thread"),
                                              (2, "process")])
    def test_results_are_identical_regardless_of_worker_count(self, arch,
                                                              workers, mode):
        """Same batch, any executor: same swap counts in the same order."""
        jobs = make_jobs(arch, count=5, router="sabre")
        with BatchRoutingService(max_workers=workers, mode=mode,
                                 time_budget=30.0, cache=False) as service:
            results = service.route_batch(jobs)
        swap_counts = [result.swap_count for result in results]

        with BatchRoutingService(max_workers=1, mode="serial",
                                 time_budget=30.0, cache=False) as reference:
            expected = [r.swap_count for r in reference.route_batch(jobs)]
        assert swap_counts == expected

    def test_portfolio_batches_are_deterministic_for_deterministic_entrants(
            self, arch):
        jobs = make_jobs(arch, count=3, router="sabre")
        runs = []
        for _ in range(2):
            with BatchRoutingService(mode="serial", time_budget=30.0, cache=False,
                                     portfolio=("sabre", "naive")) as service:
                runs.append([r.swap_count for r in service.route_batch(jobs)])
        assert runs[0] == runs[1]


class TestServiceExperimentHarness:
    def test_run_many_routers_mixes_service_and_local_factories(self, arch):
        from repro.baselines import NaiveShortestPathRouter

        suite = tiny_suite()[:3]
        with BatchRoutingService(mode="serial", time_budget=10.0) as service:
            comparison = run_many_routers(
                {"SABRE": "sabre",
                 "naive": lambda: NaiveShortestPathRouter(time_budget=10.0)},
                suite, arch, service=service)
        assert comparison.solved_count("SABRE") == len(suite)
        assert comparison.solved_count("naive") == len(suite)

    def test_spec_string_without_service_runs_in_process(self, arch):
        # Since the repro.api redesign, spec strings resolve through the one
        # registry, so the harness no longer needs a service to run them.
        suite = tiny_suite()[:1]
        comparison = run_many_routers({"SABRE": "sabre:seed=1"}, suite, arch)
        assert comparison.solved_count("SABRE") == len(suite)

    def test_unknown_spec_string_fails_loudly(self, arch):
        with pytest.raises(KeyError):
            run_many_routers({"X": "no-such-router"}, tiny_suite()[:1], arch)
