"""Cache-compatibility regression: job content hashes are frozen.

The flat-IR refactor rebuilt the circuit and architecture layers underneath
the service, but a :class:`~repro.service.jobs.RoutingJob` hashes only the
canonical QASM text, the architecture's edge list, and the canonical router
spec -- none of the derived data (CSR adjacency, flat distance matrices,
prefix statistics).  These golden hashes were captured from the pre-refactor
implementation; if any of them moves, previously cached results silently
stop being found (or worse, alias), so a change here is a cache-format
break and must bump ``JOB_HASH_VERSION`` deliberately.
"""

from repro.circuits.named_circuits import ghz_circuit, qft_circuit
from repro.circuits.random_circuits import random_circuit
from repro.hardware.topologies import (
    grid_architecture,
    line_architecture,
    tokyo_architecture,
)
from repro.service.jobs import RoutingJob

#: spec string -> (job builder, golden SHA-256 captured before the IR refactor)
GOLDEN = {
    "satmap": (
        lambda: (qft_circuit(5), tokyo_architecture()),
        "8da806fa513fa80d8a7a417e560a884c1a27a0c4054122a39a4991a26ec59f91",
    ),
    "satmap:slice_size=10,swaps_per_gate=2": (
        lambda: (qft_circuit(4), line_architecture(5)),
        "e295a47cb8096cf3dd728069101ff5125fd4039b2d96c0a4e3a6eb3085860cc5",
    ),
    "sabre:seed=3": (
        lambda: (ghz_circuit(6), grid_architecture(2, 4)),
        "89c4f523fa8e262199bf54ba24af26c3be074ca8361bd33c27f6d254f3ad6ecd",
    ),
    "tket": (
        lambda: (random_circuit(num_qubits=6, num_two_qubit_gates=20, seed=11),
                 grid_architecture(3, 3)),
        "9e76c9f930b53f139a5aee1547cf5317d322e6652434b7cd707fe4be9d5bb6c0",
    ),
    "astar": (
        lambda: (random_circuit(num_qubits=4, num_two_qubit_gates=8,
                                single_qubit_ratio=0.5, seed=7),
                 line_architecture(4)),
        "b65ab85656dc8bf35d8fe61483516418769b9824960c0c332df902405d693f1a",
    ),
}


def test_job_content_hashes_are_byte_identical_to_the_seed():
    for spec, (build, golden) in GOLDEN.items():
        circuit, architecture = build()
        job = RoutingJob.from_spec(circuit, architecture, spec)
        assert job.content_hash() == golden, (
            f"content hash for {spec!r} drifted -- cached results would be "
            f"orphaned; bump JOB_HASH_VERSION if this is intentional"
        )


def test_hash_is_insensitive_to_derived_architecture_state():
    """Forcing the derived caches (distances, CSR) must not perturb the hash."""
    circuit, architecture = GOLDEN["satmap"][0]()
    cold = RoutingJob.from_spec(circuit, architecture, "satmap").content_hash()
    architecture.flat_distance_matrix()
    architecture.distance_matrix()
    architecture.is_connected()
    warm = RoutingJob.from_spec(circuit, architecture, "satmap").content_hash()
    assert cold == warm == GOLDEN["satmap"][1]


def test_hash_is_insensitive_to_circuit_views_and_caches():
    """A slice view covering the whole circuit hashes like the circuit."""
    circuit, architecture = GOLDEN["tket"][0]()
    whole_view = circuit.sliced_by_two_qubit_gates(
        circuit.num_two_qubit_gates)[0]
    from_view = RoutingJob.from_circuit(whole_view, architecture, "tket",
                                        name=circuit.name)
    assert from_view.content_hash() == GOLDEN["tket"][1]
