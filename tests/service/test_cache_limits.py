"""Size-bounded ResultCache: LRU eviction, counters, telemetry (ISSUE 4)."""

from __future__ import annotations

import os
import time

import pytest

from repro.api.routing import route
from repro.circuits.random_circuits import random_circuit
from repro.hardware.topologies import line_architecture
from repro.service import BatchRoutingService, ResultCache, RoutingJob


def solved_pair(seed: int, architecture):
    """A (job, verified result) pair the cache will accept."""
    circuit = random_circuit(4, 6, seed=seed, name=f"bounded_{seed}")
    job = RoutingJob.from_circuit(circuit, architecture, router="sabre",
                                  options={"seed": 0})
    result = route(circuit, architecture, spec="sabre:seed=0")
    assert result.solved
    return job, result


@pytest.fixture
def architecture():
    return line_architecture(4)


@pytest.fixture
def pairs(architecture):
    return [solved_pair(seed, architecture) for seed in range(4)]


def entry_size(tmp_path, pairs) -> int:
    """Serialised size of one entry, measured on a throwaway cache."""
    probe = ResultCache(directory=tmp_path / "probe")
    job, result = pairs[0]
    assert probe.put(job, result)
    return probe.total_bytes()


class TestUnbounded:
    def test_default_cache_never_evicts(self, tmp_path, pairs):
        cache = ResultCache(directory=tmp_path / "cache")
        for job, result in pairs:
            assert cache.put(job, result)
        assert cache.evictions == 0
        assert len(cache) == len(pairs)

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            ResultCache(max_bytes=0)


class TestLruEviction:
    def test_oldest_entry_evicted_first(self, tmp_path, pairs):
        size = entry_size(tmp_path, pairs)
        cache = ResultCache(directory=tmp_path / "cache",
                            max_bytes=int(size * 2.5))
        for job, result in pairs[:3]:
            assert cache.put(job, result)
        # 3 entries never fit in 2.5x: the first-stored one is gone
        assert cache.evictions == 1
        assert cache.get(pairs[0][0]) is None
        assert cache.get(pairs[1][0]) is not None
        assert cache.get(pairs[2][0]) is not None

    def test_a_hit_refreshes_recency(self, tmp_path, pairs):
        size = entry_size(tmp_path, pairs)
        cache = ResultCache(directory=tmp_path / "cache",
                            max_bytes=int(size * 2.5))
        cache.put(*pairs[0])
        cache.put(*pairs[1])
        assert cache.get(pairs[0][0]) is not None  # 0 is now most recent
        cache.put(*pairs[2])  # must evict 1, not 0
        assert cache.get(pairs[0][0]) is not None
        assert cache.get(pairs[1][0]) is None

    def test_most_recent_store_always_survives(self, tmp_path, pairs):
        size = entry_size(tmp_path, pairs)
        cache = ResultCache(directory=tmp_path / "cache",
                            max_bytes=max(1, size // 2))
        assert cache.put(*pairs[0])
        assert cache.get(pairs[0][0]) is not None
        assert cache.put(*pairs[1])
        # the newest oversized entry is kept; the older one was evicted
        assert cache.get(pairs[1][0]) is not None
        assert cache.get(pairs[0][0]) is None

    def test_eviction_removes_disk_file(self, tmp_path, pairs):
        size = entry_size(tmp_path, pairs)
        directory = tmp_path / "cache"
        cache = ResultCache(directory=directory, max_bytes=int(size * 1.5))
        cache.put(*pairs[0])
        cache.put(*pairs[1])
        remaining = list(directory.glob("*.json"))
        assert len(remaining) == 1
        assert remaining[0].stem == pairs[1][0].content_hash()

    def test_memory_only_cache_is_bounded_too(self, pairs):
        probe = ResultCache()
        probe.put(*pairs[0])
        per_entry = probe.total_bytes()
        cache = ResultCache(max_bytes=int(per_entry * 1.5))
        cache.put(*pairs[0])
        cache.put(*pairs[1])
        assert cache.evictions == 1
        assert cache.get(pairs[0][0]) is None
        assert cache.get(pairs[1][0]) is not None

    def test_lru_order_survives_restart_via_mtime(self, tmp_path, pairs):
        size = entry_size(tmp_path, pairs)
        directory = tmp_path / "cache"
        first = ResultCache(directory=directory)
        first.put(*pairs[0])
        first.put(*pairs[1])
        # age the first entry on disk so a fresh process sees it as cold
        old = time.time() - 3600
        path = directory / f"{pairs[0][0].content_hash()}.json"
        os.utime(path, (old, old))
        second = ResultCache(directory=directory, max_bytes=int(size * 2.5))
        second.put(*pairs[2])
        assert second.evictions == 1
        assert not path.exists()

    def test_stats_expose_budget_and_evictions(self, tmp_path, pairs):
        size = entry_size(tmp_path, pairs)
        cache = ResultCache(directory=tmp_path / "cache",
                            max_bytes=int(size * 1.5))
        cache.put(*pairs[0])
        cache.put(*pairs[1])
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["max_bytes"] == int(size * 1.5)
        assert 0 < stats["total_bytes"] <= stats["max_bytes"]


class TestServiceIntegration:
    def test_service_emits_cache_evict_telemetry(self, tmp_path, architecture):
        circuits = [random_circuit(4, 6, seed=900 + index,
                                   name=f"evict_{index}")
                    for index in range(3)]
        probe = ResultCache(directory=tmp_path / "probe")
        probe_job = RoutingJob.from_circuit(circuits[0], architecture,
                                            router="sabre", options={"seed": 0})
        probe_result = route(circuits[0], architecture, spec="sabre:seed=0")
        probe.put(probe_job, probe_result)
        size = probe.total_bytes()

        with BatchRoutingService(mode="serial", time_budget=5.0,
                                 cache_dir=tmp_path / "cache",
                                 cache_max_bytes=int(size * 1.5)) as service:
            jobs = [RoutingJob.from_circuit(circuit, architecture,
                                            router="sabre",
                                            options={"seed": 0})
                    for circuit in circuits]
            results = service.route_batch(jobs)
            assert all(result.solved for result in results)
            assert service.cache.evictions >= 1
            assert service.telemetry.counters["cache-evict"] >= 1
            evict_events = [event for event in service.telemetry.events
                            if event.kind == "cache-evict"]
            assert evict_events[0].detail["evicted"] >= 1
