"""Telemetry log: events, counters, subscriptions, and summaries."""

from __future__ import annotations

from repro.service import TelemetryLog


class TestTelemetryLog:
    def test_record_appends_and_counts(self):
        log = TelemetryLog()
        log.record("queued", "abc", "job-a")
        log.record("started", "abc", "job-a")
        log.record("finished", "abc", "job-a", swaps=3, solve_time=0.5)
        assert log.counters["queued"] == 1
        assert log.counters["finished"] == 1
        assert log.jobs_finished == 1
        assert [event.kind for event in log.events_for("abc")] == [
            "queued", "started", "finished"]

    def test_cache_hits_count_as_finished_work(self):
        log = TelemetryLog()
        log.record("cache-hit", "abc", "job-a")
        assert log.jobs_finished == 1
        assert log.cache_hits == 1

    def test_unknown_kinds_are_tracked_rather_than_dropped(self):
        log = TelemetryLog()
        log.record("custom-kind", "k", "j")
        assert log.counters["custom-kind"] == 1

    def test_subscribers_observe_subsequent_events(self):
        log = TelemetryLog()
        log.record("queued", "before", "j")
        seen = []
        log.subscribe(seen.append)
        log.record("started", "after", "j", worker=1)
        assert len(seen) == 1
        assert seen[0].kind == "started"
        assert seen[0].detail == {"worker": 1}

    def test_events_carry_monotonic_elapsed_times(self):
        log = TelemetryLog()
        first = log.record("queued", "a", "j")
        second = log.record("started", "a", "j")
        assert 0.0 <= first.elapsed <= second.elapsed

    def test_summary_and_format_render(self):
        log = TelemetryLog()
        log.record("queued", "a", "job-a")
        log.record("finished", "a", "job-a", solve_time=0.25)
        text = log.summary()
        assert "queued" in text and "throughput" in text
        line = log.events[0].format()
        assert "job-a" in line and "queued" in line

    def test_throughput_is_positive_once_work_finished(self):
        log = TelemetryLog()
        log.record("finished", "a", "j", solve_time=0.1)
        assert log.throughput() > 0.0
