"""Telemetry log: events, counters, subscriptions, and summaries."""

from __future__ import annotations

from repro.service import TelemetryLog


class TestTelemetryLog:
    def test_record_appends_and_counts(self):
        log = TelemetryLog()
        log.record("queued", "abc", "job-a")
        log.record("started", "abc", "job-a")
        log.record("finished", "abc", "job-a", swaps=3, solve_time=0.5)
        assert log.counters["queued"] == 1
        assert log.counters["finished"] == 1
        assert log.jobs_finished == 1
        assert [event.kind for event in log.events_for("abc")] == [
            "queued", "started", "finished"]

    def test_cache_hits_count_as_finished_work(self):
        log = TelemetryLog()
        log.record("cache-hit", "abc", "job-a")
        assert log.jobs_finished == 1
        assert log.cache_hits == 1

    def test_unknown_kinds_are_tracked_rather_than_dropped(self):
        log = TelemetryLog()
        log.record("custom-kind", "k", "j")
        assert log.counters["custom-kind"] == 1

    def test_subscribers_observe_subsequent_events(self):
        log = TelemetryLog()
        log.record("queued", "before", "j")
        seen = []
        log.subscribe(seen.append)
        log.record("started", "after", "j", worker=1)
        assert len(seen) == 1
        assert seen[0].kind == "started"
        assert seen[0].detail == {"worker": 1}

    def test_events_carry_monotonic_elapsed_times(self):
        log = TelemetryLog()
        first = log.record("queued", "a", "j")
        second = log.record("started", "a", "j")
        assert 0.0 <= first.elapsed <= second.elapsed

    def test_summary_and_format_render(self):
        log = TelemetryLog()
        log.record("queued", "a", "job-a")
        log.record("finished", "a", "job-a", solve_time=0.25)
        text = log.summary()
        assert "queued" in text and "throughput" in text
        line = log.events[0].format()
        assert "job-a" in line and "queued" in line

    def test_throughput_is_positive_once_work_finished(self):
        log = TelemetryLog()
        log.record("finished", "a", "j", solve_time=0.1)
        assert log.throughput() > 0.0


class TestSubscriberGuard:
    def test_raising_subscriber_is_dropped_not_fatal(self):
        log = TelemetryLog()
        healthy = []

        def broken(event):
            raise RuntimeError("observer bug")

        log.subscribe(broken)
        log.subscribe(healthy.append)
        event = log.record("queued", "a", "j")
        assert event.kind == "queued"  # record() survived the raise
        assert len(healthy) == 1
        assert log.counters["subscriber-error"] == 1
        # The broken subscriber is gone: no further errors accumulate.
        log.record("started", "a", "j")
        assert log.counters["subscriber-error"] == 1
        assert len(healthy) == 2


class TestRingBuffer:
    def test_events_are_bounded_but_counters_stay_exact(self):
        log = TelemetryLog(max_events=5)
        for index in range(12):
            log.record("finished", f"job-{index}", "j", solve_time=0.01)
        assert len(log.events) == 5
        assert log.events[0].job_key == "job-7"  # oldest events evicted
        assert log.counters["finished"] == 12
        assert log.jobs_finished == 12
        assert log.metrics.get("repro_job_seconds").count == 12

    def test_max_events_must_be_positive(self):
        import pytest

        with pytest.raises(ValueError):
            TelemetryLog(max_events=0)

    def test_finished_details_feed_the_histograms(self):
        log = TelemetryLog()
        log.record("finished", "a", "j", solve_time=0.5, stage_encode=0.1,
                   stage_solve=0.3, conflicts=42, queue_wait=0.05)
        assert log.metrics.get("repro_job_seconds").count == 1
        stage = log.metrics.get("repro_stage_seconds")
        assert stage.snapshot(stage="encode")["count"] == 1
        assert stage.snapshot(stage="solve")["count"] == 1
        assert log.metrics.get("repro_solve_conflicts").count == 1
        assert log.metrics.get("repro_queue_wait_seconds").count == 1
        assert log.stage_totals == {"encode": 0.1, "solve": 0.3}
