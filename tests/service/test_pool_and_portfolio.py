"""Worker pool timeout semantics and portfolio racing."""

from __future__ import annotations

import pytest

from repro.circuits.random_circuits import random_circuit
from repro.core.verifier import verify_routing
from repro.hardware.topologies import reduced_tokyo_architecture
from repro.service import (
    RoutingJob,
    WorkerPool,
    build_router,
    execute_job,
    outcome_to_result,
    race_portfolio,
)


@pytest.fixture
def arch():
    return reduced_tokyo_architecture(6)


def make_job(arch, router="satmap", seed=3, gates=18, qubits=5):
    circuit = random_circuit(qubits, gates, seed=seed, name=f"pp_seed{seed}")
    return RoutingJob.from_circuit(circuit, arch, router=router)


class TestExecuteJob:
    def test_outcome_round_trips_to_a_verified_result(self, arch):
        job = make_job(arch, router="sabre")
        outcome = execute_job(job, time_budget=10.0)
        assert outcome["solved"]
        result = outcome_to_result(job, outcome)
        swaps = verify_routing(job.circuit(), result.routed_circuit,
                               result.initial_mapping, job.architecture())
        assert swaps == result.swap_count

    def test_unknown_router_fails_loudly(self, arch):
        job = make_job(arch, router="sabre")
        job.router = "no-such-router"
        with pytest.raises(KeyError):
            execute_job(job, time_budget=1.0)


class TestTimeoutSemantics:
    def test_tiny_budget_still_returns_a_feasible_result(self, arch):
        """Graceful timeout: the caller gets a best-so-far feasible routing."""
        job = make_job(arch, router="satmap", gates=24)
        with WorkerPool(max_workers=1, mode="serial") as pool:
            [result] = pool.run([job], time_budget=0.02)
        assert result.solved, result.notes
        # whatever produced it, the answer must survive independent verification
        swaps = verify_routing(job.circuit(), result.routed_circuit,
                               result.initial_mapping, job.architecture())
        assert swaps == result.swap_count

    def test_fallback_is_attributed_in_notes(self, arch):
        job = make_job(arch, router="satmap", gates=24)
        outcome = execute_job(job, time_budget=0.02)
        result = outcome_to_result(job, outcome)
        if result.router_name != "SATMAP":  # the budget was indeed too small
            assert "fallback" in result.notes

    def test_fallback_can_be_disabled(self, arch):
        job = make_job(arch, router="satmap", gates=24)
        outcome = execute_job(job, time_budget=0.02, fallback=False)
        if not outcome["solved"]:
            assert outcome["payload"] is None


class TestPoolModes:
    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    def test_all_modes_return_results_in_submission_order(self, arch, mode):
        jobs = [make_job(arch, router="sabre", seed=s, gates=8 + s) for s in range(3)]
        with WorkerPool(max_workers=2, mode=mode) as pool:
            results = pool.run(jobs, time_budget=10.0)
        assert len(results) == len(jobs)
        for job, result in zip(jobs, results):
            assert result.solved
            assert result.circuit_name == job.name

    def test_auto_mode_resolves_to_something_usable(self):
        with WorkerPool(mode="auto") as pool:
            assert pool.mode in ("process", "thread", "serial")

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            WorkerPool(mode="quantum")


class TestPortfolio:
    def test_winner_is_no_worse_than_any_standalone_entrant(self, arch):
        entrants = ("satmap", "sabre", "naive")
        job = make_job(arch, router="satmap", seed=7, gates=12, qubits=4)
        winner = race_portfolio(job, time_budget=10.0, entrants=entrants)
        assert winner.solved
        standalone_costs = []
        for name in entrants:
            result = build_router(name, 10.0).route(job.circuit(), job.architecture())
            if result.solved:
                standalone_costs.append(result.added_cnots)
        assert standalone_costs, "at least one entrant must solve standalone"
        assert winner.added_cnots <= min(standalone_costs)

    def test_winner_is_verified_and_annotated(self, arch):
        job = make_job(arch, router="satmap", seed=9, gates=10, qubits=4)
        winner = race_portfolio(job, time_budget=10.0)
        assert winner.solved
        assert "portfolio winner=" in winner.notes
        swaps = verify_routing(job.circuit(), winner.routed_circuit,
                               winner.initial_mapping, job.architecture())
        assert swaps == winner.swap_count

    def test_race_through_a_pool(self, arch):
        job = make_job(arch, router="satmap", seed=13, gates=10, qubits=4)
        with WorkerPool(max_workers=2, mode="thread") as pool:
            winner = race_portfolio(job, time_budget=10.0,
                                    entrants=("sabre", "naive"), pool=pool)
        assert winner.solved
        assert winner.router_name in ("SABRE", "naive")

    def test_empty_portfolio_is_an_error(self, arch):
        job = make_job(arch)
        with pytest.raises(ValueError):
            race_portfolio(job, time_budget=1.0, entrants=())
