"""RouterSpec integration with jobs, cache keys, and portfolio entrants."""

import json

from repro.api import RouterSpec
from repro.circuits.random_circuits import random_circuit
from repro.hardware.topologies import line_architecture
from repro.service.jobs import RoutingJob
from repro.service.portfolio import entrant_job


def make_job(router="sabre", options=None):
    return RoutingJob.from_circuit(random_circuit(4, 10, seed=1),
                                   line_architecture(5), router=router,
                                   options=options)


class TestJobsFromSpecs:
    def test_from_circuit_parses_spec_strings(self):
        job = make_job(router="sabre:seed=7,lookahead_size=5")
        assert job.router == "sabre"
        assert job.options == {"seed": 7, "lookahead_size": 5}

    def test_from_spec_validates(self):
        import pytest

        circuit = random_circuit(4, 10, seed=1)
        arch = line_architecture(5)
        job = RoutingJob.from_spec(circuit, arch, "satmap:slice_size=10")
        assert job.spec() == RouterSpec("satmap", {"slice_size": 10})
        with pytest.raises(Exception):
            RoutingJob.from_spec(circuit, arch, "satmap:bogus=1")

    def test_content_payload_embeds_the_canonical_spec_dict(self):
        job = make_job(router="sabre:seed=7")
        payload = json.loads(job.content_payload())
        assert payload["spec"] == {"router": "sabre", "options": {"seed": 7}}
        assert payload["version"] >= 2

    def test_equivalent_spec_spellings_share_a_hash(self):
        by_string = make_job(router="sabre:seed=7")
        by_options = make_job(router="sabre", options={"seed": 7})
        by_spec = make_job(router=RouterSpec("sabre", {"seed": 7}))
        assert by_string.content_hash() == by_options.content_hash()
        assert by_string.content_hash() == by_spec.content_hash()

    def test_different_options_change_the_hash(self):
        assert (make_job(router="sabre:seed=7").content_hash()
                != make_job(router="sabre:seed=8").content_hash())

    def test_with_spec_rekeys_the_same_work(self):
        job = make_job()
        rekeyed = job.with_spec("tket:window_size=9")
        assert rekeyed.qasm == job.qasm
        assert rekeyed.router == "tket"
        assert rekeyed.options == {"window_size": 9}

    def test_construction_paths_hash_identically(self):
        # from_circuit canonicalises option types like from_spec does, so
        # the same configured router hashes the same no matter which API
        # (or scalar spelling) built the job.
        circuit = random_circuit(4, 10, seed=1)
        arch = line_architecture(5)
        by_spec = RoutingJob.from_spec(circuit, arch, "sabre:lookahead_weight=1")
        by_circuit = RoutingJob.from_circuit(circuit, arch,
                                             router="sabre:lookahead_weight=1")
        by_options = RoutingJob.from_circuit(
            circuit, arch, router="sabre", options={"lookahead_weight": 1.0})
        assert by_spec.content_hash() == by_circuit.content_hash()
        assert by_spec.content_hash() == by_options.content_hash()

    def test_from_circuit_rejects_unknown_options_at_submission(self):
        import pytest

        with pytest.raises(Exception):
            make_job(router="sabre:warp_factor=9")


class TestBudgetKeying:
    def test_spec_budget_wins_in_the_cache_key(self):
        # A time_budget carried in the job's spec is the one the worker
        # runs with, so it must key the cache too: a 0.5s-budget job and a
        # plain job under a 10s service budget may never share an entry.
        from repro.service import BatchRoutingService

        with BatchRoutingService(mode="serial", time_budget=10.0,
                                 cache=False) as service:
            explicit = make_job(router="sabre:time_budget=0.5")
            plain = make_job(router="sabre")
            key_explicit = service._key_job(explicit, 10.0)
            key_plain = service._key_job(plain, 10.0)
            assert key_explicit.content_hash() != key_plain.content_hash()
            assert key_explicit.options["time_budget"] == 0.5
            assert key_plain.options["time_budget"] == 10.0


class TestPortfolioEntrants:
    def test_entrants_accept_configured_specs(self):
        job = make_job(router="satmap", options={"slice_size": 25})
        entrant = entrant_job(job, "sabre:seed=3")
        assert entrant.router == "sabre"
        assert entrant.options == {"seed": 3}

    def test_same_router_entrant_inherits_job_options(self):
        job = make_job(router="satmap", options={"slice_size": 25})
        entrant = entrant_job(job, "satmap")
        assert entrant.options == {"slice_size": 25}

    def test_same_router_entrant_options_win_over_jobs(self):
        job = make_job(router="satmap", options={"slice_size": 25})
        entrant = entrant_job(job, "satmap:slice_size=10")
        assert entrant.options == {"slice_size": 10}
