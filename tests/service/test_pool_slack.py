"""Configurable hard-timeout slack on the worker pool."""

import pytest

from repro.service.pool import HARD_TIMEOUT_SLACK, WorkerPool


class TestPoolSlack:
    def test_default_matches_module_constant(self):
        assert WorkerPool(mode="serial").slack == HARD_TIMEOUT_SLACK

    def test_constructor_override(self):
        assert WorkerPool(mode="serial", slack=5).slack == 5.0
        assert WorkerPool(mode="serial", slack=0).slack == 0.0

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_SLACK", "2.5")
        assert WorkerPool(mode="serial").slack == 2.5

    def test_constructor_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_SLACK", "2.5")
        assert WorkerPool(mode="serial", slack=7).slack == 7.0

    def test_invalid_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_SLACK", "plenty")
        with pytest.raises(ValueError, match="REPRO_POOL_SLACK"):
            WorkerPool(mode="serial")
        monkeypatch.setenv("REPRO_POOL_SLACK", "-1")
        with pytest.raises(ValueError, match="REPRO_POOL_SLACK"):
            WorkerPool(mode="serial")

    def test_invalid_constructor_value_rejected(self):
        with pytest.raises(ValueError, match="slack"):
            WorkerPool(mode="serial", slack=-3)
        with pytest.raises(ValueError, match="slack"):
            WorkerPool(mode="serial", slack=True)
