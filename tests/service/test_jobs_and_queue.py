"""Job identity (content hashing) and batch queue ordering."""

from __future__ import annotations

from repro.circuits.random_circuits import random_circuit
from repro.hardware.topologies import line_architecture, ring_architecture
from repro.service import JobQueue, RoutingJob, dispatch_order


def make_job(seed: int = 1, router: str = "sabre", options: dict | None = None,
             gates: int = 8) -> RoutingJob:
    circuit = random_circuit(4, gates, seed=seed, name=f"job_seed{seed}")
    return RoutingJob.from_circuit(circuit, line_architecture(5), router=router,
                                   options=options)


class TestContentHash:
    def test_hash_is_stable_across_constructions(self):
        assert make_job().content_hash() == make_job().content_hash()

    def test_hash_is_hex_sha256(self):
        digest = make_job().content_hash()
        assert len(digest) == 64
        int(digest, 16)  # raises if not hex

    def test_display_name_does_not_affect_hash(self):
        job = make_job()
        renamed = RoutingJob(qasm=job.qasm, arch_num_qubits=job.arch_num_qubits,
                             arch_edges=job.arch_edges, arch_name=job.arch_name,
                             router=job.router, options=dict(job.options),
                             name="completely-different")
        assert renamed.content_hash() == job.content_hash()

    def test_circuit_router_options_and_arch_all_discriminate(self):
        base = make_job()
        assert make_job(seed=2).content_hash() != base.content_hash()
        assert make_job(router="naive").content_hash() != base.content_hash()
        assert make_job(options={"seed": 7}).content_hash() != base.content_hash()
        other_arch = RoutingJob.from_circuit(base.circuit(), ring_architecture(5),
                                             router=base.router)
        assert other_arch.content_hash() != base.content_hash()

    def test_edge_order_is_canonicalised(self):
        job = make_job()
        shuffled = RoutingJob(qasm=job.qasm, arch_num_qubits=job.arch_num_qubits,
                              arch_edges=tuple(reversed([(b, a) for a, b in
                                                         job.arch_edges])),
                              router=job.router)
        assert shuffled.content_hash() == job.content_hash()

    def test_round_trip_preserves_circuit_and_architecture(self):
        job = make_job()
        circuit = job.circuit()
        assert circuit.num_qubits == 4
        assert circuit.num_two_qubit_gates == 8
        architecture = job.architecture()
        assert architecture.num_qubits == 5
        assert architecture.edges == line_architecture(5).edges


class TestQueue:
    def test_costliest_jobs_dispatch_first(self):
        small = make_job(seed=1, gates=4)
        large = make_job(seed=2, gates=24)
        medium = make_job(seed=3, gates=12)
        order = dispatch_order([small, large, medium])
        assert order == [1, 2, 0]

    def test_ties_preserve_submission_order(self):
        jobs = [make_job(seed=s, gates=10) for s in range(4)]
        assert dispatch_order(jobs) == [0, 1, 2, 3]

    def test_drain_empties_the_queue(self):
        queue = JobQueue()
        queue.extend([make_job(seed=s) for s in range(3)])
        assert len(queue) == 3
        drained = queue.drain()
        assert len(drained) == 3
        assert not queue
