"""Result cache: hit/miss accounting, persistence, and corruption rejection."""

from __future__ import annotations

import json

import pytest

from repro.circuits.random_circuits import random_circuit
from repro.hardware.topologies import line_architecture
from repro.service import (
    ResultCache,
    RoutingJob,
    build_router,
    payload_to_result,
    result_to_payload,
)


@pytest.fixture
def job() -> RoutingJob:
    circuit = random_circuit(4, 10, seed=11, name="cache_test")
    return RoutingJob.from_circuit(circuit, line_architecture(5), router="sabre")


@pytest.fixture
def solved_result(job):
    router = build_router(job.router, time_budget=10.0)
    result = router.route(job.circuit(), job.architecture())
    assert result.solved
    return result


class TestSerialization:
    def test_round_trip_preserves_everything_relevant(self, job, solved_result):
        rebuilt = payload_to_result(result_to_payload(solved_result))
        assert rebuilt.status == solved_result.status
        assert rebuilt.swap_count == solved_result.swap_count
        assert rebuilt.initial_mapping == solved_result.initial_mapping
        assert rebuilt.final_mapping == solved_result.final_mapping
        assert rebuilt.optimal == solved_result.optimal
        assert len(rebuilt.routed_circuit) == len(solved_result.routed_circuit)

    def test_unsolved_result_cannot_be_serialised(self, job):
        from repro.core.result import RoutingResult, RoutingStatus

        with pytest.raises(ValueError):
            result_to_payload(RoutingResult(status=RoutingStatus.TIMEOUT,
                                            router_name="x"))


class TestHitMiss:
    def test_miss_then_hit(self, tmp_path, job, solved_result):
        cache = ResultCache(directory=tmp_path)
        assert cache.get(job) is None
        assert cache.misses == 1
        assert cache.put(job, solved_result)
        hit = cache.get(job)
        assert hit is not None
        assert hit.swap_count == solved_result.swap_count
        assert cache.hits == 1
        assert "cache-hit" in hit.notes

    def test_memory_only_cache_works(self, job, solved_result):
        cache = ResultCache(directory=None)
        cache.put(job, solved_result)
        assert cache.get(job) is not None
        assert len(cache) == 1

    def test_disk_entries_survive_a_fresh_cache_instance(self, tmp_path, job,
                                                         solved_result):
        ResultCache(directory=tmp_path).put(job, solved_result)
        fresh = ResultCache(directory=tmp_path)
        assert fresh.get(job) is not None
        assert fresh.hits == 1

    def test_different_job_is_a_miss(self, tmp_path, job, solved_result):
        cache = ResultCache(directory=tmp_path)
        cache.put(job, solved_result)
        other = RoutingJob.from_circuit(random_circuit(4, 10, seed=99),
                                        line_architecture(5), router="sabre")
        assert cache.get(other) is None
        assert cache.stats()["hit_rate"] == 0.0


class TestVerificationGate:
    def test_wrong_result_is_refused_at_put(self, tmp_path, job, solved_result):
        """A result claiming the wrong swap count never enters the cache."""
        cache = ResultCache(directory=tmp_path)
        solved_result.swap_count += 1
        assert not cache.put(job, solved_result)
        assert cache.rejected == 1
        assert len(cache) == 0

    def test_result_for_another_job_is_refused(self, tmp_path, job, solved_result):
        cache = ResultCache(directory=tmp_path)
        other = RoutingJob.from_circuit(random_circuit(4, 12, seed=5),
                                        line_architecture(5), router="sabre")
        assert not cache.put(other, solved_result)

    def test_corrupted_disk_entry_is_rejected_not_returned(self, tmp_path, job,
                                                           solved_result):
        """Regression: tampering with the on-disk JSON must yield a miss."""
        cache = ResultCache(directory=tmp_path)
        assert cache.put(job, solved_result)
        path = tmp_path / f"{job.content_hash()}.json"
        payload = json.loads(path.read_text())
        # claim one swap fewer than the routed circuit actually contains
        payload["swap_count"] = max(0, payload["swap_count"] - 1)
        path.write_text(json.dumps(payload))

        cache.clear_memory()
        assert cache.get(job) is None
        assert cache.rejected >= 1
        assert not path.exists(), "corrupted entry should be evicted"

    def test_garbage_json_is_rejected_not_returned(self, tmp_path, job,
                                                   solved_result):
        cache = ResultCache(directory=tmp_path)
        assert cache.put(job, solved_result)
        path = tmp_path / f"{job.content_hash()}.json"
        path.write_text("{not valid json")
        cache.clear_memory()
        assert cache.get(job) is None

    def test_tampered_routed_circuit_is_rejected(self, tmp_path, job, solved_result):
        """Swapping in a different routed circuit fails independent verification."""
        cache = ResultCache(directory=tmp_path)
        assert cache.put(job, solved_result)
        path = tmp_path / f"{job.content_hash()}.json"
        payload = json.loads(path.read_text())
        # drop the final gate: per-qubit sequences no longer match the original
        lines = payload["routed_qasm"].strip().splitlines()
        payload["routed_qasm"] = "\n".join(lines[:-1]) + "\n"
        path.write_text(json.dumps(payload))
        cache.clear_memory()
        assert cache.get(job) is None
        assert cache.rejected >= 1
