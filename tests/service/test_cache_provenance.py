"""Regression tests: the cache must only ever serve what was asked for.

A job's content hash names a specific router (or portfolio config); results
produced by anything else -- the fallback rescue, a portfolio race -- must
not be stored under that key, or a later request would be served a
different algorithm's answer forever.
"""

from __future__ import annotations

from repro.circuits.random_circuits import random_circuit
from repro.hardware.topologies import reduced_tokyo_architecture
from repro.service import BatchRoutingService, RoutingJob, is_fallback_result


def make_job(router="satmap", gates=24, seed=3):
    circuit = random_circuit(5, gates, seed=seed, name=f"prov_seed{seed}")
    return RoutingJob.from_circuit(circuit, reduced_tokyo_architecture(6),
                                   router=router)


class TestFallbackProvenance:
    def test_rescued_result_is_not_cached_under_the_primary_key(self, tmp_path):
        """A naive rescue of a timed-out satmap job must not poison the key."""
        job = make_job(gates=30)
        with BatchRoutingService(mode="serial", cache_dir=tmp_path) as service:
            result = service.route_one(job, time_budget=0.02)
        assert result.solved  # best-so-far semantics still hold
        if is_fallback_result(result):
            # the poisoning scenario: the answer came from the fallback
            # router, so the satmap-keyed entry must not exist
            assert len(list(tmp_path.glob("*.json"))) == 0
            assert service.telemetry.counters.get("fallback", 0) == 1
        else:
            # budget was enough after all; the genuine result may be cached
            assert result.router_name == "SATMAP"

    def test_fallback_false_never_substitutes_another_router(self, tmp_path):
        job = make_job(gates=30)
        with BatchRoutingService(mode="serial", cache=False,
                                 fallback=False) as service:
            result = service.route_one(job, time_budget=0.02)
        assert not is_fallback_result(result)
        if result.solved:
            assert result.router_name == "SATMAP"
        else:
            # a timeout stays a timeout record, attributable to satmap
            assert service.telemetry.counters["failed"] == 1


class TestPortfolioProvenance:
    def test_portfolio_results_use_a_namespaced_cache_key(self, tmp_path):
        job = make_job(gates=10)
        with BatchRoutingService(mode="serial", cache_dir=tmp_path,
                                 portfolio=("sabre", "naive")) as portfolio_service:
            raced = portfolio_service.route_one(job, time_budget=10.0)
        assert raced.solved
        assert len(list(tmp_path.glob("*.json"))) == 1

        # a plain satmap service sharing the same cache dir must NOT be
        # served the portfolio winner
        with BatchRoutingService(mode="serial", cache_dir=tmp_path) as plain:
            result = plain.route_one(job, time_budget=10.0)
        assert plain.cache.hits == 0
        assert result.router_name == "SATMAP"

        # while the portfolio config itself hits its own entry
        with BatchRoutingService(mode="serial", cache_dir=tmp_path,
                                 portfolio=("sabre", "naive")) as again:
            rehit = again.route_one(job, time_budget=10.0)
        assert again.cache.hits == 1
        assert rehit.swap_count == raced.swap_count


class TestExecutionConfigKeying:
    def test_portfolio_keys_do_not_collide_across_router_options(self, tmp_path):
        """Same circuit, different satmap options: distinct portfolio entries."""
        base = make_job(gates=10)
        loose = base.with_router("satmap", options={"swaps_per_gate": 2})
        with BatchRoutingService(mode="serial", cache_dir=tmp_path,
                                 portfolio=("satmap", "naive")) as service:
            results = service.route_batch([base, loose], time_budget=10.0)
        assert all(result.solved for result in results)
        assert service.cache.hits == 0  # the second job is NOT a duplicate
        assert len(list(tmp_path.glob("*.json"))) == 2

    def test_low_budget_results_are_not_served_to_high_budget_runs(self, tmp_path):
        """The effective time budget is part of the cache key."""
        job = make_job(router="sabre", gates=10)
        with BatchRoutingService(mode="serial", cache_dir=tmp_path) as service:
            service.route_one(job, time_budget=1.0)
            service.route_one(job, time_budget=60.0)
            assert service.cache.hits == 0
            assert len(list(tmp_path.glob("*.json"))) == 2
            # while an identical budget does hit
            service.route_one(job, time_budget=60.0)
            assert service.cache.hits == 1


class TestCrashTolerance:
    def test_serial_race_survives_a_crashing_entrant(self, monkeypatch):
        """Serial path matches the pool path: a crashed entrant just loses."""
        import repro.service.portfolio as portfolio_module
        from repro.service.portfolio import race_portfolio

        real_execute = portfolio_module.execute_job

        def flaky_execute(sub_job, time_budget, fallback=True):
            if sub_job.router == "sabre":
                raise RuntimeError("entrant crashed")
            return real_execute(sub_job, time_budget, fallback=fallback)

        monkeypatch.setattr(portfolio_module, "execute_job", flaky_execute)
        winner = race_portfolio(make_job(gates=8), time_budget=10.0,
                                entrants=("sabre", "naive"), pool=None)
        assert winner.solved
        assert winner.router_name == "naive"

    def test_cache_put_survives_disk_errors(self, tmp_path, monkeypatch):
        """A full disk degrades to memory-only caching, not a failed batch."""
        from pathlib import Path

        from repro.service import ResultCache, build_router

        job = make_job(router="sabre", gates=8)
        result = build_router("sabre", 10.0).route(job.circuit(), job.architecture())
        cache = ResultCache(directory=tmp_path)
        monkeypatch.setattr(Path, "write_text",
                            lambda self, *a, **k: (_ for _ in ()).throw(
                                OSError("disk full")))
        assert cache.put(job, result)  # stored in memory despite the disk error
        assert cache.get(job) is not None


class TestDisplayNames:
    def test_registry_display_names_match_router_self_reports(self):
        from repro.service.registry import display_name

        assert display_name("satmap") == "SATMAP"
        assert display_name("sabre") == "SABRE"
        assert display_name("naive") == "naive"
        assert display_name("not-a-router") == "not-a-router"


class TestDedupTelemetry:
    def test_uncached_duplicates_still_count_as_finished_work(self):
        job = make_job(router="sabre", gates=8)
        with BatchRoutingService(mode="serial", cache=False) as service:
            results = service.route_batch([job, job, job], time_budget=10.0)
        assert all(result.solved for result in results)
        # 1 computed + 2 dedup-served: throughput accounting sees all 3
        assert service.telemetry.jobs_finished == 3
        assert service.telemetry.counters["cache-hit"] == 2
