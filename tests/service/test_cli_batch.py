"""The ``batch`` and ``bench-service`` CLI subcommands."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main

QASM = """OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
cx q[0],q[1];
cx q[0],q[2];
cx q[3],q[2];
cx q[0],q[3];
"""


@pytest.fixture
def qasm_files(tmp_path):
    paths = []
    for index in range(2):
        path = tmp_path / f"prog{index}.qasm"
        path.write_text(QASM)
        paths.append(path)
    return paths


class TestBatchParser:
    def test_defaults(self):
        args = build_parser().parse_args(["batch"])
        assert args.arch == "tokyo8"
        assert args.router == "satmap"
        assert not args.portfolio

    def test_rejects_unknown_router(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["batch", "--router", "no-such"])


class TestBatchCommand:
    def test_batch_of_files_routes_and_caches(self, qasm_files, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        argv = ["batch", *map(str, qasm_files), "--arch", "tokyo6",
                "--router", "sabre", "--mode", "serial",
                "--cache-dir", str(cache_dir), "--quiet"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "solved 2/2 jobs" in out
        # identical circuits dedup to one computed job + one cache hit
        assert len(list(cache_dir.glob("*.json"))) == 1

        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "cache: 2 hits / 0 misses" in out

    def test_batch_builtin_suite(self, capsys):
        argv = ["batch", "--arch", "tokyo6", "--router", "naive",
                "--mode", "serial", "--suite-size", "3", "--no-cache", "--quiet"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "Batch of 3 jobs" in out
        assert "solved 3/3 jobs" in out

    def test_batch_progress_lines(self, capsys):
        argv = ["batch", "--arch", "tokyo6", "--router", "naive",
                "--mode", "serial", "--suite-size", "2", "--no-cache"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "[  1/2]" in out and "[  2/2]" in out

    def test_batch_portfolio(self, capsys):
        argv = ["batch", "--arch", "tokyo6", "--router", "sabre",
                "--mode", "serial", "--suite-size", "2", "--no-cache",
                "--portfolio", "--quiet", "--time-budget", "5"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "solved 2/2 jobs" in out


class TestBenchServiceCommand:
    def test_reports_three_configurations(self, capsys, monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)  # keep any cache artefacts out of the repo
        argv = ["bench-service", "--arch", "tokyo6", "--router", "naive",
                "--jobs", "3", "--time-budget", "5", "--workers", "1"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "serial (no cache)" in out
        assert "warm cache" in out
        assert "speedup" in out
