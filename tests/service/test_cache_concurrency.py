"""The shared disk cache under concurrent multi-process writers.

The fleet points every shard worker at one cache directory, so ``put``
must survive two processes storing -- and LRU-evicting -- at the same
time: unique temp files + atomic rename keep every ``<hash>.json`` whole,
the ``.lock`` flock serialises eviction scans, and ``stored_by`` stamps
record which shard wrote what.
"""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.api.routing import route
from repro.circuits.random_circuits import random_circuit
from repro.hardware.topologies import line_architecture
from repro.service import ResultCache, RoutingJob
from repro.service.cache import payload_to_result


def solved_pair(seed: int, architecture):
    circuit = random_circuit(4, 6, seed=seed, name=f"contend_{seed}")
    job = RoutingJob.from_circuit(circuit, architecture, router="sabre",
                                  options={"seed": 0})
    result = route(circuit, architecture, spec="sabre:seed=0")
    assert result.solved
    return job, result


def hammer(directory: str, owner: str, seeds: list[int], rounds: int,
           max_bytes: int | None, queue) -> None:
    """Child-process target: repeatedly store a working set of entries."""
    try:
        architecture = line_architecture(4)
        pairs = [solved_pair(seed, architecture) for seed in seeds]
        cache = ResultCache(directory=directory, owner=owner,
                            max_bytes=max_bytes)
        stored = 0
        for _ in range(rounds):
            for job, result in pairs:
                if cache.put(job, result):
                    stored += 1
        queue.put(("ok", owner, stored))
    except BaseException as error:  # pragma: no cover - failure reporting
        queue.put(("error", owner, repr(error)))


def run_writers(tmp_path, seed_sets, rounds: int = 10,
                max_bytes: int | None = None) -> str:
    """Race one writer process per seed set against a shared directory."""
    context = multiprocessing.get_context("fork" if "fork"
                                          in multiprocessing.get_all_start_methods()
                                          else "spawn")
    queue = context.Queue()
    directory = str(tmp_path / "shared-cache")
    processes = [
        context.Process(target=hammer,
                        args=(directory, f"shard-{index}", seeds, rounds,
                              max_bytes, queue))
        for index, seeds in enumerate(seed_sets)]
    for process in processes:
        process.start()
    outcomes = [queue.get(timeout=120) for _ in processes]
    for process in processes:
        process.join(timeout=30)
        assert process.exitcode == 0
    for kind, owner, detail in outcomes:
        assert kind == "ok", f"{owner} failed: {detail}"
    return directory


class TestConcurrentPut:
    def test_two_processes_same_keys_never_corrupt(self, tmp_path):
        """Both writers hammer the SAME entries; every file stays whole."""
        directory = run_writers(tmp_path, [[0, 1, 2], [0, 1, 2]], rounds=15)
        architecture = line_architecture(4)
        reader = ResultCache(directory=directory)
        for seed in (0, 1, 2):
            job, _ = solved_pair(seed, architecture)
            result = reader.get(job)
            assert result is not None and result.solved
        assert reader.rejected == 0  # nothing half-written survived

        # Every disk entry parses, verifies, and names its last writer.
        from pathlib import Path
        entries = list(Path(directory).glob("*.json"))
        assert len(entries) == 3
        for path in entries:
            payload = json.loads(path.read_text())
            assert payload["stored_by"] in ("shard-0", "shard-1")
            assert payload_to_result(payload).solved

    def test_disjoint_writers_all_land(self, tmp_path):
        directory = run_writers(tmp_path, [[10, 11], [12, 13]], rounds=5)
        architecture = line_architecture(4)
        reader = ResultCache(directory=directory)
        for seed in (10, 11, 12, 13):
            job, _ = solved_pair(seed, architecture)
            assert reader.get(job) is not None
        assert reader.hits == 4

    def test_concurrent_eviction_under_tight_budget(self, tmp_path):
        """Two over-budget writers evicting at once must not corrupt state."""
        architecture = line_architecture(4)
        probe = ResultCache(directory=tmp_path / "probe")
        job, result = solved_pair(0, architecture)
        assert probe.put(job, result)
        entry = probe.total_bytes()

        # Budget holds ~2 entries; each writer cycles 3, forcing eviction
        # on nearly every put in both processes simultaneously.
        directory = run_writers(tmp_path, [[0, 1, 2], [3, 4, 5]],
                                rounds=8, max_bytes=int(entry * 2.5))
        reader = ResultCache(directory=directory)
        stats = reader.stats()
        assert 1 <= stats["entries"] <= 6
        # Whatever survived the eviction storm is intact and verified.
        served = 0
        for seed in range(6):
            job, _ = solved_pair(seed, architecture)
            found = reader.get(job)
            if found is not None:
                assert found.solved
                served += 1
        assert served == stats["entries"]
        assert reader.rejected == 0


class TestOwnerStamp:
    def test_put_stamps_and_get_ignores(self, tmp_path):
        architecture = line_architecture(4)
        job, result = solved_pair(99, architecture)
        writer = ResultCache(directory=tmp_path / "cache", owner="shard-7")
        assert writer.put(job, result)
        (path,) = (tmp_path / "cache").glob("*.json")
        assert json.loads(path.read_text())["stored_by"] == "shard-7"
        # A reader with no owner (or another owner) still verifies + serves.
        reader = ResultCache(directory=tmp_path / "cache")
        found = reader.get(job)
        assert found is not None and found.swap_count == result.swap_count

    def test_unowned_cache_payloads_unchanged(self, tmp_path):
        architecture = line_architecture(4)
        job, result = solved_pair(98, architecture)
        cache = ResultCache(directory=tmp_path / "cache")
        assert cache.put(job, result)
        (path,) = (tmp_path / "cache").glob("*.json")
        assert "stored_by" not in json.loads(path.read_text())

    def test_lock_file_not_counted_as_entry(self, tmp_path):
        architecture = line_architecture(4)
        job, result = solved_pair(97, architecture)
        cache = ResultCache(directory=tmp_path / "cache", owner="shard-0")
        assert cache.put(job, result)
        assert (tmp_path / "cache" / ".lock").exists()
        assert len(cache) == 1
        assert cache.stats()["entries"] == 1
