"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import cx
from repro.hardware.topologies import (
    grid_architecture,
    line_architecture,
    reduced_tokyo_architecture,
    ring_architecture,
    tokyo_architecture,
)


@pytest.fixture
def running_example_circuit() -> QuantumCircuit:
    """The paper's Fig. 3 running example: four CNOTs on four qubits."""
    circuit = QuantumCircuit(4, name="running_example")
    circuit.extend([cx(0, 1), cx(0, 2), cx(3, 2), cx(0, 3)])
    return circuit


@pytest.fixture
def line4():
    """The paper's Fig. 3(b) connectivity graph: a 4-qubit line."""
    return line_architecture(4)


@pytest.fixture
def line5():
    return line_architecture(5)


@pytest.fixture
def ring6():
    return ring_architecture(6)


@pytest.fixture
def grid2x3():
    return grid_architecture(2, 3)


@pytest.fixture
def tokyo():
    return tokyo_architecture()


@pytest.fixture
def tokyo8():
    """An 8-qubit Tokyo subgraph, the scaled default target."""
    return reduced_tokyo_architecture(8)
