"""End-to-end trace smoke: service -> pool -> SAT core span trees.

This is the test behind the CI smoke gate: one routed job must produce a
single trace tree whose spans cover queue wait, encoding, solving, and
extraction, nest child-within-parent, and carry SAT counters on the solve
span -- through both the serial path and a real process pool.
"""

from __future__ import annotations

import pytest

from repro.circuits.random_circuits import random_circuit
from repro.hardware.devices import named_architectures
from repro.obs import JsonlTraceWriter, find_span, span_names, validate_trace
from repro.obs.export import read_traces
from repro.service import BatchRoutingService, RoutingJob

REQUIRED_SPANS = ("queue-wait", "encode", "solve", "extract", "verify")


def small_job() -> RoutingJob:
    circuit = random_circuit(num_qubits=3, num_two_qubit_gates=5, seed=7,
                             name="trace-smoke")
    return RoutingJob.from_circuit(circuit, named_architectures()["line8"],
                                   router="satmap")


def assert_complete_tree(tree: dict) -> None:
    assert tree is not None, "routed job produced no trace"
    names = span_names(tree)
    for name in REQUIRED_SPANS:
        assert name in names, f"span {name!r} missing from {names}"
    assert validate_trace(tree) == []
    solve = find_span(tree, "solve")
    attrs = solve["attributes"]
    assert attrs.get("status") is not None
    for counter in ("conflicts", "propagations", "restarts"):
        assert counter in attrs, f"solve span lacks SAT counter {counter!r}"


class TestServiceTraces:
    def test_serial_route_produces_a_complete_trace(self):
        with BatchRoutingService(mode="serial", cache=False,
                                 time_budget=10.0) as service:
            [result] = service.route_batch([small_job()])
        assert result.solved
        assert_complete_tree(result.trace)
        assert result.solver_stats.get("propagations", 0) > 0
        # The finished tree is also retained on the service tracer.
        root = service.tracer.latest("job")
        assert root is not None and root.finished

    def test_process_pool_trace_crosses_the_pickle_boundary(self):
        with BatchRoutingService(mode="process", max_workers=2, cache=False,
                                 time_budget=15.0) as service:
            if service.pool.mode != "process":
                pytest.skip("no process pool on this platform")
            [result] = service.route_batch([small_job()])
        assert result.solved
        assert_complete_tree(result.trace)
        # The worker subtree was grafted under the service-owned root.
        assert span_names(result.trace)[0] == "job"
        assert find_span(result.trace, "route") is not None

    def test_tracing_disabled_leaves_results_bare(self):
        with BatchRoutingService(mode="serial", cache=False, tracer=False,
                                 time_budget=10.0) as service:
            [result] = service.route_batch([small_job()])
        assert result.solved
        assert result.trace is None
        assert service.tracer is None

    def test_trace_dir_persists_finished_trees(self, tmp_path):
        with BatchRoutingService(mode="serial", cache=False,
                                 time_budget=10.0,
                                 trace_dir=tmp_path) as service:
            [result] = service.route_batch([small_job()])
        assert result.solved
        traces = read_traces(tmp_path)
        assert len(traces) == 1
        assert_complete_tree(traces[0])

    def test_queue_wait_feeds_the_telemetry_histogram(self):
        with BatchRoutingService(mode="serial", cache=False,
                                 time_budget=10.0) as service:
            service.route_batch([small_job()])
            histogram = service.telemetry.metrics.get("repro_queue_wait_seconds")
            assert histogram.count >= 1
