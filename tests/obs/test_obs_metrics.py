"""Counters, gauges, histograms, and registry rendering."""

from __future__ import annotations

import math

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, render_families
from repro.obs.metrics import format_value


class TestFormatValue:
    def test_whole_numbers_render_without_decimal_point(self):
        assert format_value(1.0) == "1"
        assert format_value(0.0) == "0"
        assert format_value(-3.0) == "-3"

    def test_fractions_infinities_and_nan(self):
        assert format_value(0.25) == "0.25"
        assert format_value(math.inf) == "+Inf"
        assert format_value(-math.inf) == "-Inf"
        assert format_value(math.nan) == "NaN"


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("repro_things_total")
        counter.inc()
        counter.inc(2)
        assert counter.value() == 3

    def test_counters_only_go_up(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_labeled_series_render_separately(self):
        counter = Counter("repro_rejected_total")
        counter.inc(reason="quota")
        counter.inc(2, reason="backlog")
        lines = counter.render()
        assert 'repro_rejected_total{reason="quota"} 1' in lines
        assert 'repro_rejected_total{reason="backlog"} 2' in lines

    def test_set_total_mirrors_an_external_count(self):
        counter = Counter("c")
        counter.set_total(42)
        assert counter.render() == ["c 42"]


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("repro_jobs_open")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value() == 4

    def test_callback_gauges_sample_at_render_time(self):
        box = {"value": 1.0}
        gauge = Gauge("repro_uptime_seconds")
        gauge.set_function(lambda: box["value"])
        assert gauge.render() == ["repro_uptime_seconds 1"]
        box["value"] = 2.5
        assert gauge.render() == ["repro_uptime_seconds 2.5"]


class TestHistogram:
    def test_observations_fill_cumulative_buckets(self):
        histogram = Histogram("repro_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["buckets"] == {"0.1": 1, "1": 3, "10": 4, "+Inf": 5}
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(56.05)

    def test_render_ends_every_series_with_inf_and_totals(self):
        histogram = Histogram("h", buckets=(1.0,))
        histogram.observe(0.5)
        lines = histogram.render()
        assert lines == ['h_bucket{le="1"} 1', 'h_bucket{le="+Inf"} 1',
                         "h_sum 0.5", "h_count 1"]

    def test_empty_histogram_still_renders_one_series(self):
        lines = Histogram("h", buckets=(1.0,)).render()
        assert 'h_bucket{le="+Inf"} 0' in lines
        assert "h_count 0" in lines

    def test_labeled_series_share_the_family_bounds(self):
        histogram = Histogram("repro_stage_seconds", buckets=(1.0,))
        histogram.observe(0.5, stage="encode")
        histogram.observe(2.0, stage="solve")
        text = "\n".join(histogram.render())
        assert 'repro_stage_seconds_bucket{stage="encode",le="1"} 1' in text
        assert 'repro_stage_seconds_bucket{stage="solve",le="1"} 0' in text
        assert histogram.count == 2
        assert histogram.snapshot(stage="solve")["count"] == 1

    def test_le_is_a_reserved_label(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0,)).observe(0.5, le="oops")

    def test_bucket_bounds_must_be_unique_and_nonempty(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))


class TestHistogramQuantile:
    def test_interpolates_linearly_within_a_bucket(self):
        histogram = Histogram("h", buckets=(1.0, 2.0))
        for _ in range(4):
            histogram.observe(1.5)
        # All mass in (1, 2]: the median interpolates halfway through it.
        assert histogram.quantile(0.5) == pytest.approx(1.5)
        assert histogram.quantile(1.0) == pytest.approx(2.0)

    def test_first_bucket_anchors_at_zero(self):
        histogram = Histogram("h", buckets=(1.0, 2.0))
        histogram.observe(0.5)
        histogram.observe(0.5)
        assert histogram.quantile(0.5) == pytest.approx(0.5)

    def test_overflow_ranks_clamp_to_the_highest_finite_bound(self):
        histogram = Histogram("h", buckets=(1.0, 2.0))
        histogram.observe(50.0)
        assert histogram.quantile(0.99) == pytest.approx(2.0)

    def test_empty_histogram_has_no_quantiles(self):
        assert Histogram("h", buckets=(1.0,)).quantile(0.5) is None

    def test_labels_select_one_series_and_default_merges_all(self):
        histogram = Histogram("h", buckets=(1.0, 10.0))
        histogram.observe(0.5, stage="encode")
        histogram.observe(5.0, stage="solve")
        assert histogram.quantile(0.5, stage="encode") <= 1.0
        assert histogram.quantile(0.5, stage="solve") > 1.0
        assert histogram.quantile(0.99) > 1.0  # merged family view
        assert histogram.quantile(0.5, stage="missing") is None

    def test_quantile_argument_is_validated(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0,)).quantile(1.5)


class TestMetricsRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("c", "help text")
        assert registry.counter("c") is first
        assert registry.get("c") is first
        assert registry.names() == ["c"]

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_render_emits_help_type_pairs_in_order(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total", "a counter").inc()
        registry.gauge("repro_b", "a gauge").set(2)
        text = registry.render()
        assert text.index("# HELP repro_a_total") < text.index("# HELP repro_b")
        assert "# TYPE repro_a_total counter" in text
        assert "# TYPE repro_b gauge" in text
        assert text.endswith("\n")

    def test_render_pins_named_families_first(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total").inc()
        registry.gauge("repro_server_info").set(1, version="1.6.0")
        text = registry.render(first=("repro_server_info",))
        assert text.startswith("# HELP repro_server_info")

    def test_render_families_escapes_help_text(self):
        counter = Counter("c", "line1\nline2 with \\ backslash")
        text = render_families([counter])
        assert r"line1\nline2 with \\ backslash" in text
