"""Wall-clock sampling profiler: collapsed stacks, top table, exclusions."""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs import SamplingProfiler
from repro.obs.profiler import profile


def spin_briefly(stop: threading.Event) -> None:
    while not stop.is_set():
        sum(range(200))


class TestSamplingProfiler:
    def test_samples_a_busy_thread_into_collapsed_stacks(self):
        stop = threading.Event()
        worker = threading.Thread(target=spin_briefly, args=(stop,),
                                  name="busy")
        worker.start()
        try:
            with SamplingProfiler(interval=0.002) as profiler:
                time.sleep(0.15)
        finally:
            stop.set()
            worker.join()
        assert profiler.samples > 5
        collapsed = profiler.collapsed()
        assert any("spin_briefly" in stack for stack in collapsed)
        # Stacks are rooted at the outermost frame (thread bootstrap).
        busy = next(s for s in collapsed if "spin_briefly" in s)
        assert busy.split(";")[-1].endswith("spin_briefly")

    def test_collapsed_text_is_flamegraph_format(self):
        profiler = SamplingProfiler()
        profiler._collapsed = {"a.main;b.work": 3, "a.main": 1}
        text = profiler.collapsed_text()
        assert text.splitlines() == ["a.main;b.work 3", "a.main 1"]

    def test_top_splits_self_from_total(self):
        profiler = SamplingProfiler()
        profiler._collapsed = {"a.main;b.work": 8, "a.main;c.other": 2}
        by_frame = {row["frame"]: row for row in profiler.top()}
        assert by_frame["a.main"]["total"] == 10
        assert by_frame["a.main"]["self"] == 0
        assert by_frame["b.work"]["self"] == 8
        # Ranked by self time: the leaves come first.
        assert profiler.top(limit=1)[0]["frame"] == "b.work"

    def test_caller_thread_is_never_sampled(self):
        with SamplingProfiler(interval=0.002) as profiler:
            deadline = time.monotonic() + 0.1
            while time.monotonic() < deadline:
                sum(range(200))
        assert all("test_caller_thread_is_never_sampled" not in stack
                   for stack in profiler.collapsed())

    def test_report_carries_everything_the_endpoint_serves(self):
        with SamplingProfiler(interval=0.005) as profiler:
            time.sleep(0.02)
        report = profiler.report(seconds=0.02)
        assert set(report) == {"interval", "seconds", "samples",
                               "stacks_sampled", "collapsed",
                               "collapsed_text", "top"}

    def test_double_start_raises_and_stop_is_idempotent(self):
        profiler = SamplingProfiler().start()
        with pytest.raises(RuntimeError):
            profiler.start()
        profiler.stop()
        profiler.stop()

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0.0)


class TestProfileFunction:
    def test_profiles_other_threads_for_the_duration(self):
        stop = threading.Event()
        worker = threading.Thread(target=spin_briefly, args=(stop,))
        worker.start()
        try:
            report = profile(0.1, interval=0.002)
        finally:
            stop.set()
            worker.join()
        assert report["seconds"] == pytest.approx(0.1)
        assert report["stacks_sampled"] > 0
        assert "spin_briefly" in report["collapsed_text"]

    def test_duration_clamps_to_the_floor(self):
        report = profile(0.0)
        assert report["seconds"] == pytest.approx(0.05)
