"""The ``repro top`` dashboard: snapshot folding, rendering, the poll loop."""

from __future__ import annotations

import io

from repro.obs import SloTracker, normalize_snapshot, render_dashboard, run_top
from repro.obs.dashboard import CLEAR


def gateway_stats(**overrides) -> dict:
    stats = {"uptime": 12.0, "draining": False, "jobs_open": 2,
             "jobs_known": 9, "throughput": 1.5,
             "cache": {"hit_rate": 0.5}}
    stats.update(overrides)
    return stats


def slo_status(seconds: float = 0.1, ok: bool = True) -> dict:
    tracker = SloTracker(clock=lambda: 0.0)
    tracker.observe("satmap", seconds, ok=ok)
    return tracker.status()


def fleet_stats() -> dict:
    return {
        "fleet": {"uptime": 30.0, "draining": False, "workers": 2,
                  "workers_alive": 1,
                  "worker_detail": [
                      {"shard": 0, "alive": True, "restarts": 0},
                      {"shard": 1, "alive": False, "restarts": 3}]},
        "totals": {"jobs_open": 4, "jobs_known": 11, "throughput": 2.5},
        "shards": {"0": gateway_stats(), "1": None},
    }


class TestNormalizeSnapshot:
    def test_gateway_shape_becomes_one_row(self):
        snapshot = normalize_snapshot(gateway_stats(), slo_status())
        assert snapshot["fleet"] is False
        assert snapshot["workers"] == snapshot["workers_alive"] == 1
        assert snapshot["totals"]["jobs_open"] == 2
        (row,) = snapshot["rows"]
        assert row["shard"] == "-"
        assert row["hit_rate"] == 0.5
        assert row["requests"] == 1

    def test_fleet_shape_yields_a_row_per_shard(self):
        slo = {"fleet": slo_status(), "shards": {"0": slo_status(),
                                                 "1": None}}
        snapshot = normalize_snapshot(fleet_stats(), slo)
        assert snapshot["fleet"] is True
        assert snapshot["workers_alive"] == 1
        assert [row["shard"] for row in snapshot["rows"]] == ["0", "1"]
        dead = snapshot["rows"][1]
        assert dead["alive"] is False and dead["restarts"] == 3
        assert dead["p95"] is None  # unreachable shard: dashes, not a crash

    def test_missing_slo_payload_is_tolerated(self):
        snapshot = normalize_snapshot(gateway_stats(), None)
        assert snapshot["slo"] is None
        assert snapshot["rows"][0]["p95"] is None


class TestRenderDashboard:
    def test_frame_shows_state_totals_slo_and_table(self):
        frame = render_dashboard(
            normalize_snapshot(gateway_stats(), slo_status()))
        assert frame.startswith("repro top -- serving, up 12s")
        assert "jobs open 2  known 9  throughput 1.5/s" in frame
        assert "slo [*] p95" in frame and "OK" in frame
        assert "shard" in frame and "hit%" in frame

    def test_breaching_objective_renders_breach(self):
        frame = render_dashboard(
            normalize_snapshot(gateway_stats(), slo_status(ok=False)))
        assert "BREACH" in frame

    def test_draining_fleet_renders_worker_counts_and_down_rows(self):
        frame = render_dashboard(normalize_snapshot(
            dict(fleet_stats(), fleet=dict(fleet_stats()["fleet"],
                                           draining=True)), None))
        assert "DRAINING" in frame
        assert "workers 1/2" in frame
        assert "DOWN" in frame


class FakeClient:
    def __init__(self, stats, slo=None, fail=False):
        self._stats = stats
        self._slo = slo
        self.fail = fail

    def stats(self):
        if self.fail:
            raise ConnectionError("gateway down")
        return self._stats

    def slo(self):
        if self._slo is None:
            raise ConnectionError("no slo endpoint")
        return self._slo


class TestRunTop:
    def test_draws_the_requested_frames_and_sleeps_between(self):
        stream = io.StringIO()
        sleeps = []
        frames = run_top(FakeClient(gateway_stats(), slo_status()),
                         interval=0.5, iterations=3, stream=stream,
                         clock=sleeps.append)
        assert frames == 3
        assert sleeps == [0.5, 0.5]  # no sleep after the final frame
        assert stream.getvalue().count(CLEAR) == 3

    def test_clear_false_appends_instead_of_repainting(self):
        stream = io.StringIO()
        run_top(FakeClient(gateway_stats()), iterations=1, stream=stream,
                clear=False, clock=lambda _: None)
        assert CLEAR not in stream.getvalue()

    def test_unreachable_target_renders_a_banner_and_keeps_going(self):
        stream = io.StringIO()
        frames = run_top(FakeClient({}, fail=True), iterations=2,
                         stream=stream, clear=False, clock=lambda _: None)
        assert frames == 2
        assert "unreachable: gateway down" in stream.getvalue()

    def test_slo_endpoint_failure_degrades_to_stats_only(self):
        stream = io.StringIO()
        run_top(FakeClient(gateway_stats()), iterations=1, stream=stream,
                clear=False, clock=lambda _: None)
        text = stream.getvalue()
        assert "repro top -- serving" in text
        assert "slo [" not in text
