"""Tail-based trace sampling: keep the interesting, sample the boring."""

from __future__ import annotations

import pytest

from repro.obs import TailSampler, Tracer


def finished_root(tracer: Tracer, trace_id: str | None = None, **attrs):
    root = tracer.start_trace("request", trace_id=trace_id)
    root.finish(**attrs)
    return root


class TestAlwaysKeepRules:
    def test_errors_are_always_kept(self):
        sampler = TailSampler(rate=0.0)
        root = finished_root(Tracer(), error="BrokenError('x')")
        decision = sampler.decide(root)
        assert decision.keep and decision.reason == "error"

    def test_timeout_status_is_kept_as_deadline(self):
        sampler = TailSampler(rate=0.0)
        root = finished_root(Tracer(), status="timeout")
        assert sampler.decide(root).reason == "deadline"

    def test_error_status_is_kept(self):
        sampler = TailSampler(rate=0.0)
        assert sampler.decide(finished_root(Tracer(), status="error")).keep

    def test_slow_traces_beat_the_sampling_rate(self):
        sampler = TailSampler(rate=0.0, slow_threshold=0.0)
        decision = sampler.decide(finished_root(Tracer(), status="optimal"))
        assert decision.keep and decision.reason == "slow"

    def test_unfinished_roots_are_anomalies_and_kept(self):
        sampler = TailSampler(rate=0.0)
        root = Tracer().start_trace("request")  # never finished
        assert sampler.decide(root).reason == "error"


class TestProbabilisticRule:
    def test_rate_one_keeps_everything_rate_zero_drops_everything(self):
        keep_all = TailSampler(rate=1.0)
        keep_none = TailSampler(rate=0.0)
        for index in range(20):
            root = finished_root(Tracer(), status="optimal")
            assert keep_all.decide(root).reason == "sampled"
            assert keep_none.decide(root).reason == "unsampled"

    def test_decisions_are_deterministic_per_trace_id(self):
        first = TailSampler(rate=0.5)
        second = TailSampler(rate=0.5)
        for index in range(50):
            root = finished_root(Tracer(), trace_id=f"trace-{index}",
                                 status="optimal")
            assert first.decide(root).keep == second.decide(root).keep

    def test_intermediate_rate_keeps_roughly_that_fraction(self):
        sampler = TailSampler(rate=0.5)
        kept = sum(
            sampler.decide(finished_root(Tracer(), trace_id=f"t-{i}",
                                         status="optimal")).keep
            for i in range(400))
        assert 120 < kept < 280  # hash-uniform, not exact

    def test_dict_payloads_work_like_spans(self):
        sampler = TailSampler(rate=0.0)
        payload = {"trace_id": "abc", "duration": 0.01,
                   "attributes": {"status": "optimal"}}
        assert not sampler.decide(payload).keep


class TestCountsAndValidation:
    def test_counts_tally_by_reason(self):
        sampler = TailSampler(rate=1.0, slow_threshold=1e9)
        tracer = Tracer()
        sampler.decide(finished_root(tracer, error="boom"))
        sampler.decide(finished_root(tracer, status="optimal"))
        sampler.decide(finished_root(tracer, status="optimal"))
        assert sampler.counts == {"error": 1, "sampled": 2}

    def test_validation(self):
        with pytest.raises(ValueError):
            TailSampler(rate=1.5)
        with pytest.raises(ValueError):
            TailSampler(slow_threshold=-1.0)

    def test_decision_is_truthy_iff_kept(self):
        sampler = TailSampler(rate=0.0)
        assert bool(sampler.decide(finished_root(Tracer(), error="x")))
        assert not bool(sampler.decide(
            finished_root(Tracer(), status="optimal")))
