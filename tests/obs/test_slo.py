"""Rolling-window SLO tracking: objectives, quantiles, merging, gauges."""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry, SloObjective, SloTracker, merge_slo_statuses, mirror_slo
from repro.obs.promcheck import check_exposition


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestSloObjective:
    def test_defaults_and_label(self):
        objective = SloObjective()
        assert objective.route == "*"
        assert objective.quantile_label == "p95"
        assert objective.latency_target == 2.0

    def test_round_trips_through_dicts(self):
        objective = SloObjective(route="satmap", quantile=0.99,
                                 latency_target=5.0,
                                 availability_target=0.995)
        assert SloObjective.from_dict(objective.to_dict()) == objective

    def test_validation(self):
        with pytest.raises(ValueError):
            SloObjective(quantile=1.0)
        with pytest.raises(ValueError):
            SloObjective(latency_target=0.0)
        with pytest.raises(ValueError):
            SloObjective(availability_target=1.5)


class TestSloTracker:
    def test_quantiles_come_from_windowed_bucket_counts(self):
        tracker = SloTracker(bounds=(0.1, 1.0, 10.0), clock=FakeClock())
        for _ in range(95):
            tracker.observe("satmap", 0.05)
        for _ in range(5):
            tracker.observe("satmap", 5.0)
        # p50 lands in the first bucket, p99 interpolates inside (1, 10].
        assert tracker.quantile("satmap", 0.5) == pytest.approx(0.0526, abs=1e-3)
        assert 1.0 < tracker.quantile("satmap", 0.99) <= 10.0

    def test_star_route_aggregates_all_routes(self):
        tracker = SloTracker(clock=FakeClock())
        tracker.observe("satmap", 0.5)
        tracker.observe("sabre", 0.5, ok=False)
        assert tracker.availability("*") == pytest.approx(0.5)
        assert tracker.availability("satmap") == pytest.approx(1.0)

    def test_old_traffic_ages_out_of_the_window(self):
        clock = FakeClock()
        tracker = SloTracker(window=60.0, slots=6, clock=clock)
        tracker.observe("satmap", 0.5, ok=False)
        assert tracker.status()["routes"]["*"]["requests"] == 1
        clock.advance(120.0)  # two full windows later
        status = tracker.status()
        assert status["routes"]["*"]["requests"] == 0
        assert status["ok"] is True  # empty window: nothing is breaching

    def test_status_evaluates_burn_rate_and_breach(self):
        tracker = SloTracker(
            objectives=[{"route": "*", "quantile": 0.95,
                         "latency_target": 2.0, "availability_target": 0.9}],
            clock=FakeClock())
        for index in range(10):
            tracker.observe("satmap", 0.1, ok=index >= 8)  # 8 of 10 fail
        entry = tracker.status()["objectives"][0]
        assert entry["availability"] == pytest.approx(0.2)
        assert entry["availability_ok"] is False
        # error rate 0.8 against a 0.1 budget: burning 8x too fast.
        assert entry["error_budget_burn_rate"] == pytest.approx(8.0)
        assert entry["ok"] is False

    def test_empty_tracker_reports_star_route_and_passes(self):
        status = SloTracker(clock=FakeClock()).status()
        assert set(status["routes"]) == {"*"}
        assert status["objectives"][0]["latency"] is None
        assert status["ok"] is True

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SloTracker(window=0.0)
        with pytest.raises(ValueError):
            SloTracker(slots=0)


class TestMergeSloStatuses:
    def test_merged_quantiles_sum_bucket_counts(self):
        # One shard all-fast, one all-slow: the merged p50 must sit between
        # them, which averaging per-shard quantiles would also get right --
        # but the merged p95 must come from the *slow* shard's buckets.
        fast = SloTracker(clock=FakeClock())
        slow = SloTracker(clock=FakeClock())
        for _ in range(50):
            fast.observe("satmap", 0.05)
            slow.observe("satmap", 8.0)
        merged = merge_slo_statuses([fast.status(), slow.status()])
        star = merged["routes"]["*"]
        assert star["requests"] == 100
        assert star["p95"] > 5.0
        assert merged["routes"]["satmap"]["requests"] == 100

    def test_unusable_statuses_are_skipped(self):
        tracker = SloTracker(clock=FakeClock())
        tracker.observe("satmap", 0.5)
        merged = merge_slo_statuses([None, {"error": "down"},
                                     tracker.status()])
        assert merged["routes"]["*"]["requests"] == 1

    def test_nothing_usable_returns_none(self):
        assert merge_slo_statuses([None, {}]) is None


class TestMirrorSlo:
    def test_gauges_render_promcheck_clean(self):
        tracker = SloTracker(clock=FakeClock())
        tracker.observe("satmap", 0.2)
        tracker.observe("satmap", 0.4, ok=False)
        registry = MetricsRegistry()
        mirror_slo(registry, tracker.status())
        text = registry.render()
        assert 'repro_slo_latency_seconds{route="*",quantile="p95"}' in text
        assert 'repro_slo_error_budget_burn_rate{route="*"}' in text
        assert 'repro_slo_ok{route="*"}' in text
        assert check_exposition(text) == []

    def test_empty_window_skips_latency_but_keeps_target(self):
        registry = MetricsRegistry()
        mirror_slo(registry, SloTracker(clock=FakeClock()).status())
        text = registry.render()
        assert "repro_slo_latency_seconds{" not in text
        assert 'repro_slo_latency_target_seconds{route="*",quantile="p95"} 2' in text
