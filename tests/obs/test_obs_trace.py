"""Spans, tracers, propagation context, and trace-tree tools."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.obs import (
    Span,
    Tracer,
    activate,
    add_attributes,
    current_tracer,
    find_span,
    record,
    render_trace,
    span,
    span_names,
    validate_trace,
)


class TestSpan:
    def test_finish_stamps_duration_once(self):
        s = Span("work")
        assert not s.finished
        s.finish(swaps=3)
        first = s.duration
        assert s.finished and first >= 0.0
        s.finish()
        assert s.duration == first
        assert s.attributes["swaps"] == 3

    def test_explicit_earlier_start_measures_from_that_start(self):
        # A gateway stamps its root with the request arrival time, which
        # may be well before the Span object is constructed.
        s = Span("job", start=time.time() - 1.0)
        s.finish()
        assert s.duration >= 0.9

    def test_to_dict_from_dict_round_trip(self):
        root = Span("root", attributes={"router": "satmap"})
        child = Span("child", start=root.start)
        child.finish(conflicts=7)
        root.add_child(child)
        root.finish()
        payload = json.loads(json.dumps(root.to_dict()))
        rebuilt = Span.from_dict(payload)
        assert rebuilt.name == "root"
        assert rebuilt.children[0].attributes == {"conflicts": 7}
        assert rebuilt.children[0].trace_id == rebuilt.trace_id
        assert rebuilt.to_dict() == payload

    def test_add_child_adopts_the_parent_trace_id(self):
        parent = Span("parent")
        child = Span("child")
        parent.add_child(child)
        assert child.trace_id == parent.trace_id
        assert [s.name for s in parent.walk()] == ["parent", "child"]


class TestTracer:
    def test_start_trace_registers_and_bounds_the_store(self):
        tracer = Tracer(max_traces=2)
        roots = [tracer.start_trace(f"job-{i}") for i in range(3)]
        stored = tracer.traces()
        assert roots[0] not in stored
        assert roots[1] in stored and roots[2] in stored
        assert tracer.get(roots[0].trace_id) is None

    def test_latest_filters_by_name_and_attributes(self):
        tracer = Tracer()
        tracer.start_trace("job", job="a")
        wanted = tracer.start_trace("job", job="b")
        tracer.start_trace("other", job="c")
        assert tracer.latest("job", job="b") is wanted
        assert tracer.latest("job") is wanted

    def test_record_attaches_a_closed_child(self):
        tracer = Tracer()
        root = tracer.start_trace("job")
        child = tracer.record("queue-wait", root, start=root.start,
                              duration=0.25)
        assert child.finished and child.duration == 0.25
        assert root.children == [child]

    def test_record_clamps_negative_durations(self):
        tracer = Tracer()
        root = tracer.start_trace("job")
        child = tracer.record("wait", root, start=root.start, duration=-1.0)
        assert child.duration == 0.0

    def test_attach_tree_grafts_under_the_named_parent(self):
        tracer = Tracer()
        root = tracer.start_trace("job")
        worker = Tracer(max_traces=1)
        subtree = worker.start_trace("route")
        worker.start_span("encode", subtree).finish()
        subtree.finish()
        attached = tracer.attach_tree(subtree.to_dict(),
                                      trace_id=root.trace_id,
                                      parent_span_id=root.span_id)
        assert attached in root.children
        assert attached.trace_id == root.trace_id
        assert attached.children[0].name == "encode"

    def test_attach_tree_to_unknown_trace_is_dropped(self):
        tracer = Tracer()
        orphan = Span("route")
        orphan.finish()
        assert tracer.attach_tree(orphan.to_dict(), trace_id="no-such") is None

    def test_span_context_manager_nests_under_current(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current_span() is inner
            assert tracer.current_span() is outer
        assert inner in outer.children
        assert outer.finished and inner.finished

    def test_thread_current_stacks_are_independent(self):
        tracer = Tracer()
        seen = {}

        def worker():
            with tracer.span("thread-root") as s:
                seen["thread"] = tracer.current_span() is s

        with tracer.span("main-root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            assert tracer.current_span().name == "main-root"
        assert seen["thread"]


class TestModuleHelpers:
    def test_helpers_are_noops_without_an_active_tracer(self):
        assert current_tracer() is None
        with span("anything") as s:
            s.set(ignored=True)  # the noop span accepts attributes
        record("closed", start=0.0, duration=0.1)
        add_attributes(also_ignored=1)

    def test_helpers_attach_to_the_active_root(self):
        tracer = Tracer()
        root = tracer.start_trace("job")
        with activate(tracer, root):
            assert current_tracer() is tracer
            with span("encode") as s:
                s.set(variables=10)
            record("sat-solve", start=root.start, duration=0.01, conflicts=2)
            add_attributes(router="satmap")
        assert current_tracer() is None
        assert [c.name for c in root.children] == ["encode", "sat-solve"]
        assert root.attributes["router"] == "satmap"
        assert root.children[0].attributes == {"variables": 10}


class TestTreeTools:
    def make_tree(self) -> dict:
        tracer = Tracer()
        root = tracer.start_trace("job")
        route = tracer.start_span("route", root)
        tracer.record("queue-wait", route, start=route.start, duration=0.0)
        tracer.start_span("solve", route).finish(conflicts=5)
        route.finish()
        root.finish()
        return root.to_dict()

    def test_find_span_and_span_names(self):
        tree = self.make_tree()
        assert span_names(tree) == ["job", "route", "queue-wait", "solve"]
        assert find_span(tree, "solve")["attributes"] == {"conflicts": 5}
        assert find_span(tree, "missing") is None

    def test_validate_trace_accepts_a_well_nested_tree(self):
        assert validate_trace(self.make_tree()) == []

    def test_validate_trace_flags_unfinished_and_escaping_children(self):
        tree = self.make_tree()
        tree["children"][0]["duration"] = None
        child = tree["children"][0]["children"][0]
        child["start"] = tree["start"] - 1.0
        problems = validate_trace(tree)
        assert any("not finished" in p for p in problems)
        assert any("before its parent" in p for p in problems)

    def test_validate_trace_flags_children_ending_after_parent(self):
        tree = self.make_tree()
        tree["children"][0]["children"][1]["duration"] = 60.0
        assert any("after its parent" in p for p in validate_trace(tree))

    def test_render_trace_shows_names_durations_and_attributes(self):
        text = render_trace(self.make_tree())
        lines = text.splitlines()
        assert len(lines) == 4
        assert "job" in lines[0]
        assert "queue-wait" in lines[2]
        assert "conflicts=5" in lines[3]
        assert "ms" in lines[3]
