"""The Prometheus exposition checker (and the instruments against it)."""

from __future__ import annotations

from repro.obs import MetricsRegistry, check_exposition, parse_exposition

GOOD = """\
# HELP repro_jobs_total Jobs accepted.
# TYPE repro_jobs_total counter
repro_jobs_total 4
# HELP repro_seconds Job seconds.
# TYPE repro_seconds histogram
repro_seconds_bucket{le="0.1"} 1
repro_seconds_bucket{le="1"} 3
repro_seconds_bucket{le="+Inf"} 4
repro_seconds_sum 2.5
repro_seconds_count 4
"""


class TestParseExposition:
    def test_parses_families_metadata_and_samples(self):
        problems: list[str] = []
        families = parse_exposition(GOOD, problems)
        assert problems == []
        assert families["repro_jobs_total"].type == "counter"
        assert families["repro_jobs_total"].samples[0].value == 4
        histogram = families["repro_seconds"]
        assert len(histogram.samples) == 5
        assert histogram.samples[2].labels == {"le": "+Inf"}
        assert histogram.samples[2].value == 4
        assert histogram.samples[3].value == 2.5

    def test_label_escapes_round_trip(self):
        text = ('# HELP m help\n# TYPE m gauge\n'
                'm{path="a\\\\b",note="say \\"hi\\"\\nbye"} 1\n')
        families = parse_exposition(text)
        labels = families["m"].samples[0].labels
        assert labels["path"] == "a\\b"
        assert labels["note"] == 'say "hi"\nbye'

    def test_syntax_problems_are_reported(self):
        problems: list[str] = []
        parse_exposition('# HELP m h\n# TYPE m gauge\nm{broken 1\n', problems)
        assert any("unterminated" in p for p in problems)


class TestCheckExposition:
    def test_clean_document_has_no_problems(self):
        assert check_exposition(GOOD) == []

    def test_missing_trailing_newline(self):
        assert any("newline" in p for p in check_exposition(GOOD.rstrip("\n")))

    def test_samples_without_metadata_are_flagged(self):
        problems = check_exposition("repro_orphans_total 1\n")
        assert any("no preceding" in p for p in problems)
        assert any("missing # HELP" in p for p in problems)
        assert any("missing # TYPE" in p for p in problems)

    def test_negative_counter_is_flagged(self):
        text = "# HELP c h\n# TYPE c counter\nc -1\n"
        assert any("negative" in p for p in check_exposition(text))

    def test_unknown_type_is_flagged(self):
        text = "# HELP c h\n# TYPE c widget\nc 1\n"
        assert any("unknown type" in p for p in check_exposition(text))

    def test_histogram_must_end_with_inf_bucket(self):
        text = ("# HELP h x\n# TYPE h histogram\n"
                'h_bucket{le="1"} 1\nh_sum 0.5\nh_count 1\n')
        assert any('+Inf' in p for p in check_exposition(text))

    def test_histogram_decreasing_buckets_are_flagged(self):
        text = ("# HELP h x\n# TYPE h histogram\n"
                'h_bucket{le="1"} 3\nh_bucket{le="2"} 2\n'
                'h_bucket{le="+Inf"} 3\nh_sum 1\nh_count 3\n')
        assert any("decrease" in p for p in check_exposition(text))

    def test_histogram_inf_must_match_count(self):
        text = ("# HELP h x\n# TYPE h histogram\n"
                'h_bucket{le="+Inf"} 3\nh_sum 1\nh_count 4\n')
        assert any("_count" in p for p in check_exposition(text))

    def test_histogram_missing_sum_or_count_is_flagged(self):
        text = ("# HELP h x\n# TYPE h histogram\n"
                'h_bucket{le="+Inf"} 0\n')
        problems = check_exposition(text)
        assert any("missing _sum" in p for p in problems)
        assert any("missing _count" in p for p in problems)

    def test_labeled_histograms_validate_series_by_series(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_stage_seconds", "stages",
                                       buckets=(0.1, 1.0))
        histogram.observe(0.05, stage="encode")
        histogram.observe(0.5, stage="solve")
        histogram.observe(5.0, stage="solve")
        assert check_exposition(registry.render()) == []

    def test_registry_output_is_always_clean(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total", "a").inc(3)
        registry.gauge("repro_b", "b").set(-2.5)
        registry.histogram("repro_c_seconds", "c", buckets=(1.0, 2.0))
        registry.histogram("repro_d_seconds", "d").observe(0.2)
        assert check_exposition(registry.render()) == []
