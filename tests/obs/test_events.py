"""Structured event logging: ring, levels, trace stamping, file sink."""

from __future__ import annotations

import json

import pytest

from repro.obs import EventLog, Tracer, read_events
from repro.obs.trace import activate


class TestEmit:
    def test_records_carry_level_event_and_typed_fields(self):
        log = EventLog(clock=lambda: 123.0)
        record = log.emit("job-error", level="error", job_id="j1", retries=2,
                          weird=object())
        assert record["ts"] == 123.0
        assert record["level"] == "error"
        assert record["event"] == "job-error"
        assert record["job_id"] == "j1"
        assert record["retries"] == 2
        assert record["weird"].startswith("<object")  # coerced, not crashed
        json.dumps(record)  # every record must be JSON-serialisable

    def test_below_threshold_events_are_dropped_and_counted(self):
        log = EventLog(level="warning")
        assert log.emit("chatter", level="debug") is None
        assert log.emit("trouble", level="warning") is not None
        assert log.dropped == 1
        assert len(log) == 1

    def test_unknown_levels_raise(self):
        log = EventLog()
        with pytest.raises(ValueError):
            log.emit("x", level="severe")
        with pytest.raises(ValueError):
            EventLog(level="severe")

    def test_ring_is_bounded_but_counts_are_exact(self):
        log = EventLog(max_events=4)
        for index in range(10):
            log.emit("tick", index=index)
        assert len(log) == 4
        assert log.counts_by_level() == {"info": 10}
        assert [r["index"] for r in log.tail()] == [6, 7, 8, 9]

    def test_active_span_stamps_trace_and_span_ids(self):
        tracer = Tracer()
        log = EventLog()
        with activate(tracer):
            with tracer.span("solve") as span:
                record = log.emit("solver-fallback", level="warning")
        assert record["trace_id"] == span.trace_id
        assert record["span_id"] == span.span_id
        assert "trace_id" not in log.emit("no-span")


class TestTail:
    def test_filters_by_level_floor_and_event_name(self):
        log = EventLog()
        log.emit("a", level="debug")
        log.emit("b", level="warning")
        log.emit("b", level="error")
        assert [r["level"] for r in log.tail(level="warning")] == ["warning",
                                                                  "error"]
        assert len(log.tail(event="b")) == 2
        with pytest.raises(ValueError):
            log.tail(level="severe")

    def test_limit_keeps_the_newest(self):
        log = EventLog()
        for index in range(5):
            log.emit("tick", index=index)
        assert [r["index"] for r in log.tail(limit=2)] == [3, 4]


class TestFileSink:
    def test_events_append_as_jsonl_with_owner_tag(self, tmp_path):
        log = EventLog(directory=tmp_path, owner="shard-0")
        log.emit("worker-restart", level="warning", shard=0)
        assert log.path.name == "events.shard-0.jsonl"
        records = read_events(tmp_path)
        assert records[0]["event"] == "worker-restart"
        assert records[0]["owner"] == "shard-0"

    def test_read_events_merges_all_owners(self, tmp_path):
        EventLog(directory=tmp_path, owner="shard-0").emit("a")
        EventLog(directory=tmp_path, owner="shard-1").emit("b")
        EventLog(directory=tmp_path, owner="dispatcher").emit("c")
        assert {r["event"] for r in read_events(tmp_path)} == {"a", "b", "c"}

    def test_sink_rotation_keeps_every_record(self, tmp_path):
        log = EventLog(directory=tmp_path, max_bytes=300)
        for index in range(20):
            log.emit("tick", index=index)
        assert len(read_events(tmp_path)) == 20
        assert len(list(tmp_path.glob("events*.jsonl"))) > 1

    def test_failing_sink_disables_itself_without_raising(self, tmp_path):
        log = EventLog(directory=tmp_path)

        def explode(payload):
            raise OSError("disk full")

        log._sink.write_record = explode
        record = log.emit("job-error", level="error")
        assert record is not None  # the emit itself still succeeded
        assert log.sink_errors == 1
        log.emit("next")  # sink gone; no further errors
        assert log.sink_errors == 1
