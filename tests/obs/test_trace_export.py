"""JSONL trace persistence with size rotation."""

from __future__ import annotations

import json

import pytest

from repro.obs import JsonlTraceWriter, Span, Tracer
from repro.obs.export import read_traces


def finished_trace(name: str = "job") -> Span:
    tracer = Tracer()
    root = tracer.start_trace(name, job=name)
    tracer.start_span("route", root).finish()
    return root.finish()


class TestJsonlTraceWriter:
    def test_write_appends_one_line_per_trace(self, tmp_path):
        writer = JsonlTraceWriter(tmp_path)
        writer.write(finished_trace("a"))
        writer.write(finished_trace("b").to_dict())
        lines = writer.path.read_text().splitlines()
        assert len(lines) == 2
        assert writer.written == 2
        names = [json.loads(line)["name"] for line in lines]
        assert names == ["a", "b"]

    def test_rotation_keeps_every_trace(self, tmp_path):
        writer = JsonlTraceWriter(tmp_path, max_bytes=600)
        for index in range(8):
            writer.write(finished_trace(f"job-{index}"))
        assert writer.rotations >= 1
        files = writer.files()
        assert files[-1] == writer.path
        assert len(files) == writer.rotations + 1
        names = [trace["attributes"]["job"] for trace in read_traces(tmp_path)]
        assert names == [f"job-{index}" for index in range(8)]

    def test_max_bytes_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlTraceWriter(tmp_path, max_bytes=0)

    def test_read_traces_on_missing_directory_is_empty(self, tmp_path):
        assert read_traces(tmp_path / "nowhere") == []


class TestSharedDirectoryOwners:
    def test_owner_tag_lands_in_the_active_filename(self, tmp_path):
        writer = JsonlTraceWriter(tmp_path, owner="shard-0")
        writer.write(finished_trace("a"))
        assert writer.path.name == "traces.shard-0.jsonl"

    def test_owners_never_touch_each_others_files(self, tmp_path):
        first = JsonlTraceWriter(tmp_path, owner="shard-0", max_bytes=600)
        second = JsonlTraceWriter(tmp_path, owner="shard-1", max_bytes=600)
        for index in range(8):
            first.write(finished_trace(f"a-{index}"))
            second.write(finished_trace(f"b-{index}"))
        assert first.rotations >= 1 and second.rotations >= 1
        assert not set(first.files()) & set(second.files())
        # Rotated names disambiguate owner digits: shard-0's rotations are
        # traces.shard-0.r<n>.jsonl, never confusable with a shard-10 owner.
        assert all(".r" in path.stem for path in first.files()[:-1])

    def test_read_traces_collects_every_owner_in_order(self, tmp_path):
        for owner in ("shard-0", "shard-1"):
            writer = JsonlTraceWriter(tmp_path, owner=owner, max_bytes=600)
            for index in range(6):
                writer.write(finished_trace(f"{owner}-{index}"))
        names = [trace["attributes"]["job"] for trace in read_traces(tmp_path)]
        assert len(names) == 12
        # Per-owner write order survives rotation (rotated files first).
        for owner in ("shard-0", "shard-1"):
            mine = [name for name in names if name.startswith(owner)]
            assert mine == [f"{owner}-{index}" for index in range(6)]

    def test_owner_must_not_smuggle_path_separators(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlTraceWriter(tmp_path, owner="../escape")
