"""JSONL trace persistence with size rotation."""

from __future__ import annotations

import json

import pytest

from repro.obs import JsonlTraceWriter, Span, Tracer
from repro.obs.export import read_traces


def finished_trace(name: str = "job") -> Span:
    tracer = Tracer()
    root = tracer.start_trace(name, job=name)
    tracer.start_span("route", root).finish()
    return root.finish()


class TestJsonlTraceWriter:
    def test_write_appends_one_line_per_trace(self, tmp_path):
        writer = JsonlTraceWriter(tmp_path)
        writer.write(finished_trace("a"))
        writer.write(finished_trace("b").to_dict())
        lines = writer.path.read_text().splitlines()
        assert len(lines) == 2
        assert writer.written == 2
        names = [json.loads(line)["name"] for line in lines]
        assert names == ["a", "b"]

    def test_rotation_keeps_every_trace(self, tmp_path):
        writer = JsonlTraceWriter(tmp_path, max_bytes=600)
        for index in range(8):
            writer.write(finished_trace(f"job-{index}"))
        assert writer.rotations >= 1
        files = writer.files()
        assert files[-1] == writer.path
        assert len(files) == writer.rotations + 1
        names = [trace["attributes"]["job"] for trace in read_traces(tmp_path)]
        assert names == [f"job-{index}" for index in range(8)]

    def test_max_bytes_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlTraceWriter(tmp_path, max_bytes=0)

    def test_read_traces_on_missing_directory_is_empty(self, tmp_path):
        assert read_traces(tmp_path / "nowhere") == []
