"""Tests for the newer CLI subcommands (devices, draw, generate, --router)."""

import pytest

from repro.cli import available_architectures, available_routers, main
from repro.circuits.qasm import load_qasm


@pytest.fixture
def ghz_qasm(tmp_path):
    path = tmp_path / "ghz.qasm"
    exit_code = main(["generate", "ghz", str(path), "--qubits", "4"])
    assert exit_code == 0
    return path


class TestGenerate:
    @pytest.mark.parametrize("kind,extra", [
        ("qft", ["--qubits", "4"]),
        ("ghz", ["--qubits", "5"]),
        ("qaoa", ["--qubits", "6", "--cycles", "1"]),
        ("random", ["--qubits", "4", "--gates", "10", "--seed", "3"]),
    ])
    def test_generate_writes_loadable_qasm(self, tmp_path, kind, extra, capsys):
        path = tmp_path / f"{kind}.qasm"
        assert main(["generate", kind, str(path), *extra]) == 0
        circuit = load_qasm(path)
        assert circuit.num_qubits >= 4
        output = capsys.readouterr().out
        assert "written to" in output

    def test_generated_random_circuit_is_deterministic(self, tmp_path):
        first = tmp_path / "a.qasm"
        second = tmp_path / "b.qasm"
        main(["generate", "random", str(first), "--seed", "7"])
        main(["generate", "random", str(second), "--seed", "7"])
        assert first.read_text() == second.read_text()


class TestDraw:
    def test_draw_prints_wires(self, ghz_qasm, capsys):
        assert main(["draw", str(ghz_qasm)]) == 0
        output = capsys.readouterr().out
        assert "q0:" in output
        assert "qubits" in output

    def test_draw_ascii_mode(self, ghz_qasm, capsys):
        assert main(["draw", str(ghz_qasm), "--ascii"]) == 0
        output = capsys.readouterr().out
        assert all(ord(char) < 128 for char in output)


class TestDevices:
    def test_devices_lists_catalogue(self, capsys):
        assert main(["devices"]) == 0
        output = capsys.readouterr().out
        assert "tokyo" in output
        assert "melbourne" in output
        assert "diameter" in output


class TestRouteWithRouterChoice:
    @pytest.mark.parametrize("router", ["sabre", "naive", "hybrid"])
    def test_route_with_alternative_router(self, ghz_qasm, router, capsys):
        exit_code = main(["route", str(ghz_qasm), "--arch", "line8",
                          "--router", router, "--time-budget", "20"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "routed circuit written to" in output
        routed = load_qasm(ghz_qasm.with_suffix(".routed.qasm"))
        assert routed.num_two_qubit_gates >= 3

    def test_catalogue_architecture_usable_for_routing(self, ghz_qasm):
        exit_code = main(["route", str(ghz_qasm), "--arch", "yorktown",
                          "--router", "sabre", "--time-budget", "20"])
        assert exit_code == 0


class TestRegistries:
    def test_available_architectures_include_catalogue(self):
        names = available_architectures()
        assert "yorktown" in names
        assert "guadalupe" in names
        assert "tokyo" in names

    def test_available_routers_construct(self):
        for name, constructor in available_routers(5.0).items():
            router = constructor()
            assert hasattr(router, "route"), name
