"""End-to-end integration tests across the whole stack.

These exercise the realistic user journeys: load a QASM circuit, route it
with SATMAP and the baselines onto a real device graph, verify the outputs,
export the routed circuit back to QASM, and compare tools through the
experiment harness.
"""

import pytest

from repro import (
    SatMapRouter,
    load_qasm,
    maxcut_qaoa_circuit,
    random_circuit,
    route_cyclic,
    verify_routing,
)
from repro.analysis.experiments import run_many_routers
from repro.analysis.suite import default_architecture, tiny_suite
from repro.baselines import SabreRouter, TketLikeRouter
from repro.circuits.library import get_benchmark
from repro.circuits.qaoa import qaoa_repeated_block
from repro.circuits.qasm import circuit_to_qasm, parse_qasm, save_qasm
from repro.core.result import RoutingStatus
from repro.hardware.topologies import reduced_tokyo_architecture, tokyo_architecture


class TestQasmWorkflow:
    QASM = """
    OPENQASM 2.0;
    include "qelib1.inc";
    qreg q[5];
    h q[0];
    cx q[0],q[1];
    cx q[0],q[2];
    cx q[3],q[2];
    cx q[0],q[3];
    cx q[4],q[0];
    cx q[2],q[4];
    """

    def test_route_qasm_file_onto_reduced_tokyo(self, tmp_path):
        path = tmp_path / "prog.qasm"
        path.write_text(self.QASM)
        circuit = load_qasm(path)
        architecture = reduced_tokyo_architecture(8)
        result = SatMapRouter(time_budget=60).route(circuit, architecture)
        assert result.solved
        verify_routing(circuit, result.routed_circuit, result.initial_mapping,
                       architecture)

    def test_routed_circuit_roundtrips_through_qasm(self, tmp_path):
        circuit = parse_qasm(self.QASM, name="prog")
        architecture = reduced_tokyo_architecture(8)
        result = SatMapRouter(time_budget=60).route(circuit, architecture)
        out_path = tmp_path / "routed.qasm"
        save_qasm(result.routed_circuit, out_path)
        reloaded = load_qasm(out_path)
        assert reloaded.num_qubits == architecture.num_qubits
        assert reloaded.num_swaps == result.swap_count

    def test_named_benchmark_runs_through_satmap(self):
        bench = get_benchmark("ex-1_166")
        architecture = reduced_tokyo_architecture(6)
        result = SatMapRouter(slice_size=10, time_budget=60).route(
            bench.circuit, architecture)
        assert result.solved


class TestComparisonWorkflow:
    def test_satmap_beats_or_matches_heuristics_on_tiny_suite(self):
        suite = tiny_suite()[:3]
        architecture = default_architecture(6)
        comparison = run_many_routers(
            {
                "SATMAP": lambda: SatMapRouter(slice_size=25, time_budget=60),
                "SABRE": lambda: SabreRouter(),
                "TKET-like": lambda: TketLikeRouter(),
            },
            suite, architecture)
        assert comparison.solved_count("SATMAP") == len(suite)
        mean_ratio = comparison.mean_cost_ratio("SABRE", "SATMAP")
        # SATMAP is optimal per slice, so the heuristics can be at best equal
        # on average (ratio >= ~1); undefined ratios (SATMAP zero cost) are
        # possible, in which case the mean is over the remaining circuits.
        import math

        assert math.isnan(mean_ratio) or mean_ratio >= 0.99


class TestQaoaWorkflow:
    def test_cyclic_routing_of_generated_qaoa(self):
        block = qaoa_repeated_block(6, seed=3)
        architecture = reduced_tokyo_architecture(8)
        result = route_cyclic(block, cycles=2, architecture=architecture,
                              router=SatMapRouter(slice_size=10, time_budget=90))
        assert result.solved
        assert result.initial_mapping == result.final_mapping

    def test_full_qaoa_circuit_through_plain_satmap(self):
        circuit = maxcut_qaoa_circuit(6, 1, seed=3)
        architecture = reduced_tokyo_architecture(8)
        result = SatMapRouter(slice_size=10, time_budget=90).route(circuit, architecture)
        assert result.solved


class TestFullTokyoSmoke:
    def test_small_circuit_on_full_tokyo_with_heuristics(self):
        circuit = random_circuit(10, 30, seed=12, interaction_bias=0.3)
        architecture = tokyo_architecture()
        for router in (SabreRouter(), TketLikeRouter()):
            result = router.route(circuit, architecture)
            assert result.solved

    def test_satmap_on_full_tokyo_tiny_circuit(self):
        circuit = random_circuit(4, 4, seed=2, single_qubit_ratio=0.0)
        result = SatMapRouter(time_budget=90).route(circuit, tokyo_architecture())
        assert result.status in (RoutingStatus.OPTIMAL, RoutingStatus.FEASIBLE,
                                 RoutingStatus.TIMEOUT)
        if result.solved:
            verify_routing(circuit, result.routed_circuit, result.initial_mapping,
                           tokyo_architecture())
