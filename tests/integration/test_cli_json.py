"""Scriptable CLI: ``--json`` output and spec strings for ``--router``."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main

QASM = """OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
cx q[0],q[1];
cx q[0],q[2];
cx q[3],q[2];
cx q[0],q[3];
"""


@pytest.fixture
def qasm_file(tmp_path):
    path = tmp_path / "prog.qasm"
    path.write_text(QASM)
    return path


class TestRouteJson:
    def test_route_json_is_machine_readable(self, qasm_file, capsys):
        code = main(["route", str(qasm_file), "--arch", "tokyo6",
                     "--router", "sabre:seed=1", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["solved"] is True
        assert payload["router"] == "SABRE"
        assert payload["architecture"] == "tokyo-6"
        assert payload["spec"]["router"] == "sabre"
        assert payload["spec"]["options"]["seed"] == 1
        assert payload["output"].endswith(".routed.qasm")
        assert isinstance(payload["initial_mapping"], dict)

    def test_route_json_failure_reports_status(self, tmp_path, capsys):
        big = tmp_path / "big.qasm"
        big.write_text("OPENQASM 2.0;\nqreg q[9];\ncx q[0],q[8];\n")
        code = main(["route", str(big), "--arch", "line8",
                     "--router", "naive", "--json"])
        assert code == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["solved"] is False
        assert payload["swap_count"] is None

    def test_spec_options_flow_into_the_router(self, qasm_file, capsys):
        code = main(["route", str(qasm_file), "--arch", "tokyo6",
                     "--router", "satmap:slice_size=none,time_budget=10",
                     "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["router"] == "NL-SATMAP"
        assert payload["spec"]["options"]["slice_size"] is None

    def test_unknown_router_spec_is_a_usage_error(self, qasm_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["route", str(qasm_file),
                                       "--router", "no-such"])

    def test_unknown_option_is_a_usage_error(self, qasm_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["route", str(qasm_file),
                                       "--router", "satmap:slize_size=9"])


class TestCompareJson:
    def test_compare_json_records(self, qasm_file, capsys):
        code = main(["compare", str(qasm_file), "--arch", "tokyo6",
                     "--time-budget", "5", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["architecture"] == "tokyo-6"
        routers = {record["router"] for record in payload["records"]}
        assert "SATMAP" in routers and "SABRE" in routers
        for record in payload["records"]:
            assert {"router", "circuit", "solved", "swap_count",
                    "solve_time"} <= set(record)


class TestRoutersListing:
    def test_routers_table_lists_registry(self, capsys):
        assert main(["routers"]) == 0
        out = capsys.readouterr().out
        for name in ("satmap", "sabre", "noise-satmap", "cyclic"):
            assert name in out
        assert "noise_aware" in out

    def test_routers_json_has_schemas(self, capsys):
        assert main(["routers", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        by_name = {entry["name"]: entry for entry in entries}
        assert "optimal" in by_name["satmap"]["capabilities"]
        option_names = {option["name"] for option in by_name["satmap"]["options"]}
        assert {"slice_size", "time_budget", "verify"} <= option_names

    def test_routers_capability_filter(self, capsys):
        assert main(["routers", "--capability", "noise_aware", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert [entry["name"] for entry in entries] == ["noise-satmap"]

    def test_routers_single_entry_schema(self, capsys):
        assert main(["routers", "sabre"]) == 0
        out = capsys.readouterr().out
        assert "lookahead_size" in out and "capabilities" in out

    def test_routers_unknown_name_errors(self, capsys):
        assert main(["routers", "no-such"]) == 2

    def test_devices_mentions_routers(self, capsys):
        assert main(["devices"]) == 0
        assert "repro routers" in capsys.readouterr().out


class TestBatchSpecStrings:
    def test_batch_accepts_spec_strings(self, qasm_file, capsys):
        code = main(["batch", str(qasm_file), "--arch", "tokyo6",
                     "--router", "naive:smart_initial_mapping=true",
                     "--mode", "serial", "--no-cache", "--quiet"])
        assert code == 0
        assert "solved 1/1" in capsys.readouterr().out
