"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import available_architectures, build_parser, main
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import cx, h
from repro.circuits.qasm import load_qasm, save_qasm

QASM = """OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
h q[0];
cx q[0],q[1];
cx q[0],q[2];
cx q[3],q[2];
cx q[0],q[3];
"""


@pytest.fixture
def qasm_file(tmp_path):
    path = tmp_path / "prog.qasm"
    path.write_text(QASM)
    return path


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_route_defaults(self, qasm_file):
        args = build_parser().parse_args(["route", str(qasm_file)])
        assert args.arch == "tokyo"
        assert args.slice_size == 25

    def test_unknown_architecture_rejected(self, qasm_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["route", str(qasm_file), "--arch", "mars"])

    def test_architecture_catalogue_is_consistent(self):
        catalogue = available_architectures()
        assert "tokyo" in catalogue and "tokyo+" in catalogue
        for name, architecture in catalogue.items():
            assert architecture.num_qubits > 0, name


class TestRouteCommand:
    def test_route_writes_verified_output(self, qasm_file):
        exit_code = main(["route", str(qasm_file), "--arch", "tokyo8",
                          "--time-budget", "20"])
        assert exit_code == 0
        output = qasm_file.with_suffix(".routed.qasm")
        assert output.exists()
        routed = load_qasm(output)
        assert routed.num_qubits == 8

    def test_route_to_explicit_output(self, qasm_file, tmp_path):
        target = tmp_path / "custom.qasm"
        exit_code = main(["route", str(qasm_file), "--arch", "line8",
                          "--time-budget", "20", "--output", str(target)])
        assert exit_code == 0
        assert target.exists()

    def test_route_disable_slicing(self, qasm_file):
        exit_code = main(["route", str(qasm_file), "--arch", "tokyo8",
                          "--slice-size", "0", "--time-budget", "20"])
        assert exit_code == 0


class TestInfoAndCompare:
    def test_info_prints_table(self, capsys):
        assert main(["info", "--arch", "tokyo"]) == 0
        output = capsys.readouterr().out
        assert "physical qubits" in output and "20" in output

    def test_compare_on_single_file(self, qasm_file, capsys):
        exit_code = main(["compare", str(qasm_file), "--arch", "tokyo8",
                          "--time-budget", "10"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "SATMAP" in output and "SABRE" in output


class TestRoundTripThroughCli:
    def test_routed_file_reparses_and_counts_match(self, tmp_path):
        circuit = QuantumCircuit(4, [h(0), cx(0, 1), cx(1, 2), cx(2, 3), cx(3, 0)],
                                 name="ring_interactions")
        source = tmp_path / "ring.qasm"
        save_qasm(circuit, source)
        assert main(["route", str(source), "--arch", "grid3x3",
                     "--time-budget", "20"]) == 0
        routed = load_qasm(source.with_suffix(".routed.qasm"))
        non_swap_two_qubit = sum(1 for gate in routed
                                 if gate.is_two_qubit and gate.name != "swap")
        assert non_swap_two_qubit == circuit.num_two_qubit_gates
