"""Cross-validation of every router on shared instances.

These tests treat the eight routing algorithms as independent implementations
of the same specification and check them against each other: every solution
must verify, optimal routers must agree with each other and never lose to a
heuristic, and zero-swap instances must be recognised as such by the exact
tools.  This is the strongest correctness signal the repository has short of
running on hardware, and it is exactly the role the paper's independent
verifier plays for SATMAP itself.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    AStarLayerRouter,
    BmtLikeRouter,
    ExhaustiveOptimalRouter,
    NaiveShortestPathRouter,
    OlsqStyleRouter,
    SabreRouter,
    TketLikeRouter,
)
from repro.circuits.random_circuits import random_circuit
from repro.core import SatMapRouter, verify_routing
from repro.core.hybrid import HybridSatMapRouter
from repro.hardware.topologies import line_architecture, ring_architecture

BUDGET = 15.0


def _heuristic_routers():
    return {
        "SABRE": SabreRouter(time_budget=BUDGET),
        "TKET-like": TketLikeRouter(time_budget=BUDGET),
        "MQT-A*": AStarLayerRouter(time_budget=BUDGET),
        "BMT-like": BmtLikeRouter(time_budget=BUDGET),
        "naive": NaiveShortestPathRouter(time_budget=BUDGET),
        "hybrid": HybridSatMapRouter(time_budget=BUDGET),
    }


class TestAllRoutersAgreeOnValidity:
    @pytest.mark.parametrize("seed", [3, 14])
    def test_every_router_produces_a_verifying_solution(self, seed):
        circuit = random_circuit(num_qubits=4, num_two_qubit_gates=10, seed=seed)
        architecture = ring_architecture(5)
        routers = dict(_heuristic_routers())
        routers["SATMAP"] = SatMapRouter(slice_size=10, time_budget=BUDGET)
        for name, router in routers.items():
            result = router.route(circuit, architecture)
            assert result.solved, f"{name} failed to route"
            verify_routing(circuit, result.routed_circuit, result.initial_mapping,
                           architecture)

    def test_optimal_router_never_loses_to_heuristics(self):
        circuit = random_circuit(num_qubits=4, num_two_qubit_gates=8, seed=9)
        architecture = line_architecture(4)
        optimal = SatMapRouter(time_budget=BUDGET).route(circuit, architecture)
        assert optimal.solved and optimal.optimal
        for name, router in _heuristic_routers().items():
            result = router.route(circuit, architecture)
            if result.solved:
                assert optimal.swap_count <= result.swap_count, name

    def test_constraint_baselines_agree_with_satmap_optimum(self):
        circuit = random_circuit(num_qubits=4, num_two_qubit_gates=6, seed=2)
        architecture = line_architecture(4)
        satmap = SatMapRouter(time_budget=BUDGET).route(circuit, architecture)
        olsq = OlsqStyleRouter(time_budget=BUDGET).route(circuit, architecture)
        exact = ExhaustiveOptimalRouter(time_budget=BUDGET).route(circuit, architecture)
        assert satmap.solved and satmap.optimal
        for other in (olsq, exact):
            if other.solved and other.optimal:
                assert other.swap_count == satmap.swap_count

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=300))
    def test_satmap_at_most_naive_cost(self, seed):
        circuit = random_circuit(num_qubits=4, num_two_qubit_gates=8, seed=seed)
        architecture = line_architecture(4)
        satmap = SatMapRouter(slice_size=10, time_budget=BUDGET).route(
            circuit, architecture)
        naive = NaiveShortestPathRouter().route(circuit, architecture)
        assert satmap.solved and naive.solved
        assert satmap.swap_count <= naive.swap_count
