"""Tests for the additional cardinality encodings (ladder, bitwise, sequential)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.maxsat.encodings import (
    SequentialCounter,
    at_most_k_sequential,
    at_most_one_bitwise,
    at_most_one_ladder,
    exactly_k,
)
from repro.maxsat.wcnf import WcnfBuilder
from repro.sat.solver import SatSolver, SolverStatus


def _solve_with(builder, extra_units):
    solver = SatSolver()
    solver.ensure_vars(builder.num_vars)
    for clause in builder.hard:
        solver.add_clause(clause)
    for literal in extra_units:
        solver.add_clause([literal])
    return solver.solve()


def _count_satisfiable_patterns(builder, literals, true_count):
    """How many ways of making exactly ``true_count`` literals true are SAT."""
    satisfiable = 0
    for chosen in itertools.combinations(literals, true_count):
        units = [lit if lit in chosen else -lit for lit in literals]
        if _solve_with(builder, units).status is SolverStatus.SAT:
            satisfiable += 1
    return satisfiable


def _fresh(num_literals):
    builder = WcnfBuilder()
    literals = builder.new_vars(num_literals)
    return builder, literals


class TestLadderAmo:
    @pytest.mark.parametrize("size", [2, 3, 4, 6, 9])
    def test_allows_every_single_choice(self, size):
        builder, literals = _fresh(size)
        at_most_one_ladder(builder, literals)
        assert _count_satisfiable_patterns(builder, literals, 1) == size

    @pytest.mark.parametrize("size", [3, 4, 6])
    def test_forbids_every_pair(self, size):
        builder, literals = _fresh(size)
        at_most_one_ladder(builder, literals)
        assert _count_satisfiable_patterns(builder, literals, 2) == 0

    def test_allows_all_false(self):
        builder, literals = _fresh(5)
        at_most_one_ladder(builder, literals)
        assert _solve_with(builder, [-l for l in literals]).status is SolverStatus.SAT

    def test_clause_count_is_linear(self):
        builder, literals = _fresh(30)
        at_most_one_ladder(builder, literals)
        assert len(builder.hard) < 4 * 30  # pairwise would need 435 clauses


class TestBitwiseAmo:
    @pytest.mark.parametrize("size", [2, 3, 5, 8])
    def test_allows_every_single_choice(self, size):
        builder, literals = _fresh(size)
        at_most_one_bitwise(builder, literals)
        assert _count_satisfiable_patterns(builder, literals, 1) == size

    @pytest.mark.parametrize("size", [3, 5])
    def test_forbids_every_pair(self, size):
        builder, literals = _fresh(size)
        at_most_one_bitwise(builder, literals)
        assert _count_satisfiable_patterns(builder, literals, 2) == 0

    def test_single_literal_needs_no_bits(self):
        builder, literals = _fresh(1)
        assert at_most_one_bitwise(builder, literals) == []

    def test_bit_count_is_logarithmic(self):
        builder, literals = _fresh(16)
        bits = at_most_one_bitwise(builder, literals)
        assert len(bits) == 4


class TestSequentialCounter:
    @pytest.mark.parametrize("size,bound", [(4, 1), (4, 2), (5, 3), (6, 2)])
    def test_at_most_k_boundary(self, size, bound):
        builder, literals = _fresh(size)
        at_most_k_sequential(builder, literals, bound)
        assert _count_satisfiable_patterns(builder, literals, bound) > 0
        assert _count_satisfiable_patterns(builder, literals, bound + 1) == 0

    def test_bound_at_size_adds_nothing(self):
        builder, literals = _fresh(4)
        at_most_k_sequential(builder, literals, 4)
        assert builder.hard == []

    def test_outputs_reflect_counts(self):
        builder, literals = _fresh(4)
        counter = SequentialCounter(builder, literals)
        # Force exactly two inputs true; output[1] must hold, output[2] must not.
        units = [literals[0], literals[1], -literals[2], -literals[3]]
        result = _solve_with(builder, units)
        assert result.status is SolverStatus.SAT
        assert result.model[abs(counter.outputs[1])] is True

    def test_assumption_form_is_reusable(self):
        builder, literals = _fresh(4)
        counter = SequentialCounter(builder, literals)
        assumptions = counter.assumption_for_at_most(1)
        solver = SatSolver()
        solver.ensure_vars(builder.num_vars)
        for clause in builder.hard:
            solver.add_clause(clause)
        for literal in (literals[0], literals[1]):
            solver.add_clause([literal])
        assert solver.solve(assumptions=assumptions).status is SolverStatus.UNSAT
        # Without the assumption the same formula is satisfiable.
        assert solver.solve().status is SolverStatus.SAT

    def test_rejects_negative_bound(self):
        builder, literals = _fresh(3)
        counter = SequentialCounter(builder, literals)
        with pytest.raises(ValueError):
            counter.enforce_at_most(-1)

    def test_empty_inputs(self):
        builder = WcnfBuilder()
        counter = SequentialCounter(builder, [])
        assert counter.outputs == []


class TestExactlyK:
    @pytest.mark.parametrize("size,bound", [(3, 0), (3, 1), (4, 2), (4, 4), (5, 3)])
    def test_exactly_k_counts(self, size, bound):
        builder, literals = _fresh(size)
        exactly_k(builder, literals, bound)
        below = _count_satisfiable_patterns(builder, literals, bound - 1) if bound > 0 else 0
        exact = _count_satisfiable_patterns(builder, literals, bound)
        above = (_count_satisfiable_patterns(builder, literals, bound + 1)
                 if bound < size else 0)
        assert below == 0
        assert exact == len(list(itertools.combinations(range(size), bound)))
        assert above == 0

    def test_rejects_impossible_bound(self):
        builder, literals = _fresh(3)
        with pytest.raises(ValueError):
            exactly_k(builder, literals, 5)

    @settings(max_examples=25, deadline=None)
    @given(size=st.integers(min_value=1, max_value=5),
           data=st.data())
    def test_exactly_k_property(self, size, data):
        bound = data.draw(st.integers(min_value=0, max_value=size))
        builder, literals = _fresh(size)
        exactly_k(builder, literals, bound)
        # Any full assignment with exactly `bound` trues must be satisfiable.
        chosen = literals[:bound]
        units = [l if l in chosen else -l for l in literals]
        assert _solve_with(builder, units).status is SolverStatus.SAT
