"""Incremental-equivalence tests for the MaxSAT layer.

Session-backed solving (one live CDCL solver, streamed clauses,
assumption-expressed bounds) must return the same costs and verdicts as the
historical from-scratch path on randomized WCNF instances -- including when
one session is reused for several solves, which is what the slicing
relaxation does on a backtrack.
"""

import random

from repro.maxsat.linear_search import LinearSearchSolver
from repro.maxsat.solver import MaxSatSolver, MaxSatStatus
from repro.maxsat.wcnf import WcnfBuilder
from repro.sat import SatSession


def random_wcnf(rng: random.Random, weighted: bool) -> WcnfBuilder:
    """A small random weighted-partial instance (hard clauses kept SAT-ish)."""
    builder = WcnfBuilder()
    num_vars = rng.randint(4, 9)
    builder.new_vars(num_vars)
    for _ in range(rng.randint(3, 18)):
        width = rng.randint(2, 3)
        variables = rng.sample(range(1, num_vars + 1), width)
        builder.add_hard([v if rng.random() < 0.5 else -v for v in variables])
    for _ in range(rng.randint(1, 8)):
        width = rng.randint(1, 2)
        variables = rng.sample(range(1, num_vars + 1), width)
        clause = [v if rng.random() < 0.5 else -v for v in variables]
        builder.add_soft(clause, weight=rng.randint(1, 5) if weighted else 1)
    return builder


def clone(builder: WcnfBuilder) -> WcnfBuilder:
    copy = WcnfBuilder()
    copy.new_vars(builder.num_vars)
    for clause in builder.hard:
        copy.add_hard(list(clause))
    for soft in builder.soft:
        copy.add_soft(list(soft.literals), soft.weight)
    return copy


class TestSessionMatchesFromScratch:
    def test_linear_search_costs_match(self):
        for seed in range(15):
            rng = random.Random(300 + seed)
            weighted = seed % 2 == 0
            reference = random_wcnf(rng, weighted)
            scratch = LinearSearchSolver(clone(reference)).solve()
            incremental = LinearSearchSolver(clone(reference),
                                             session=SatSession()).solve()
            assert scratch.found_model == incremental.found_model, f"seed {seed}"
            if scratch.found_model:
                assert scratch.cost == incremental.cost, f"seed {seed}"
                assert scratch.optimal == incremental.optimal, f"seed {seed}"

    def test_facade_statuses_match_across_strategies(self):
        for seed in range(8):
            rng = random.Random(900 + seed)
            reference = random_wcnf(rng, weighted=False)
            for strategy in MaxSatSolver.STRATEGIES:
                scratch = MaxSatSolver(strategy).solve(clone(reference))
                incremental = MaxSatSolver(strategy, session=SatSession()).solve(
                    clone(reference))
                assert scratch.status is incremental.status, (
                    f"seed {seed} strategy {strategy}")
                if scratch.has_model:
                    assert scratch.cost == incremental.cost, (
                        f"seed {seed} strategy {strategy}")

    def test_session_reuse_across_repeated_solves(self):
        """Re-solving on one warm session matches a fresh from-scratch solve."""
        for seed in range(10):
            rng = random.Random(4000 + seed)
            reference = random_wcnf(rng, weighted=seed % 2 == 0)
            session = SatSession()
            solver = MaxSatSolver("linear", session=session)
            builder = clone(reference)
            first = solver.solve(builder)
            second = solver.solve(builder)  # same instance, warm session
            scratch = MaxSatSolver("linear").solve(clone(reference))
            assert first.status is scratch.status, f"seed {seed}"
            assert second.status is scratch.status, f"seed {seed}"
            if scratch.has_model:
                assert first.cost == second.cost == scratch.cost, f"seed {seed}"

    def test_assumption_pinning_matches_hard_units(self):
        """Pinning context via assumptions == baking it in as hard units."""
        for seed in range(10):
            rng = random.Random(5000 + seed)
            reference = random_wcnf(rng, weighted=False)
            pin = [v if rng.random() < 0.5 else -v
                   for v in rng.sample(range(1, reference.num_vars + 1),
                                       min(2, reference.num_vars))]
            hard_pinned = clone(reference)
            for literal in pin:
                hard_pinned.add_hard([literal])
            scratch = MaxSatSolver("linear").solve(hard_pinned)
            incremental = MaxSatSolver("linear", session=SatSession()).solve(
                clone(reference), assumptions=pin)
            assert scratch.status is incremental.status, f"seed {seed} pin {pin}"
            if scratch.has_model:
                assert scratch.cost == incremental.cost, f"seed {seed} pin {pin}"

    def test_exclusion_resolve_on_warm_session(self):
        """The slicing backtrack pattern: add an exclusion clause, re-solve."""
        for seed in range(6):
            rng = random.Random(6000 + seed)
            reference = random_wcnf(rng, weighted=False)
            session = SatSession()
            solver = MaxSatSolver("linear", session=session)
            builder = clone(reference)
            first = solver.solve(builder)
            if not first.has_model:
                continue
            # Forbid the exact model found (over the original variables).
            exclusion = [-v if first.model.get(v, False) else v
                         for v in range(1, reference.num_vars + 1)]
            builder.add_hard(exclusion)
            warm = solver.solve(builder)
            cold_builder = clone(reference)
            cold_builder.add_hard(list(exclusion))
            cold = MaxSatSolver("linear").solve(cold_builder)
            assert warm.status is cold.status, f"seed {seed}"
            if cold.has_model:
                assert warm.cost == cold.cost, f"seed {seed}"


class TestSessionBinding:
    def test_session_backed_facade_rejects_a_second_builder(self):
        import pytest

        session = SatSession()
        solver = MaxSatSolver("linear", session=session)
        first = WcnfBuilder()
        a = first.new_var()
        first.add_hard([a])
        solver.solve(first)
        second = WcnfBuilder()
        b = second.new_var()
        second.add_hard([-b])
        with pytest.raises(ValueError):
            solver.solve(second)
        # The original binding keeps working.
        assert solver.solve(first).has_model


class TestBudgetInsideSelectorConstruction:
    def test_zero_budget_returns_cleanly_before_selectors(self):
        builder = WcnfBuilder()
        variables = builder.new_vars(40)
        builder.add_hard([variables[0], variables[1]])
        for v in variables:
            builder.add_soft([v, -variables[0]])
        outcome = LinearSearchSolver(builder).solve(time_budget=0.0)
        # The selector loop must notice the dead budget and give up cleanly
        # instead of relaxing every soft clause first.
        assert not outcome.found_model
        assert not outcome.optimal
        assert outcome.sat_calls == 0
        assert outcome.cost == -1

    def test_selector_loop_leaves_solver_reusable(self):
        builder = WcnfBuilder()
        variables = builder.new_vars(10)
        builder.add_hard([variables[0]])
        for v in variables[1:]:
            builder.add_soft([v], weight=1)
        session = SatSession()
        solver = LinearSearchSolver(builder, session=session)
        dead = solver.solve(time_budget=0.0)
        assert not dead.found_model
        # A later call with a real budget still works on the same session.
        alive = solver.solve()
        assert alive.found_model and alive.optimal
        assert alive.cost == 0
