"""Tests for the MaxSatSolver facade."""

import pytest

from repro.maxsat import MaxSatSolver, MaxSatStatus, WcnfBuilder


def build(hard, soft):
    builder = WcnfBuilder()
    max_var = max((abs(l) for clause in hard + [c for _, c in soft] for l in clause),
                  default=0)
    builder.new_vars(max_var)
    for clause in hard:
        builder.add_hard(clause)
    for weight, clause in soft:
        builder.add_soft(clause, weight)
    return builder


class TestFacade:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            MaxSatSolver("magic")

    @pytest.mark.parametrize("strategy", ["linear", "core-guided"])
    def test_optimum_on_small_instance(self, strategy):
        builder = build([[1, 2]], [(1, [-1]), (1, [-2])])
        result = MaxSatSolver(strategy).solve(builder)
        assert result.status is MaxSatStatus.OPTIMAL
        assert result.cost == 1

    @pytest.mark.parametrize("strategy", ["linear", "core-guided"])
    def test_unsatisfiable_hard_clauses(self, strategy):
        builder = build([[1], [-1]], [(1, [1])])
        result = MaxSatSolver(strategy).solve(builder)
        assert result.status is MaxSatStatus.UNSATISFIABLE
        assert not result.has_model

    def test_core_guided_falls_back_on_weighted(self):
        builder = build([[1, 2]], [(5, [-1]), (1, [-2])])
        result = MaxSatSolver("core-guided").solve(builder)
        assert result.status is MaxSatStatus.OPTIMAL
        assert result.cost == 1

    def test_model_reported_for_optimal(self):
        builder = build([[1]], [(1, [-2])])
        result = MaxSatSolver().solve(builder)
        assert result.has_model
        assert result.model[1] is True

    def test_zero_cost_optimum(self):
        builder = build([[1]], [(3, [1])])
        result = MaxSatSolver().solve(builder)
        assert result.is_optimal and result.cost == 0

    def test_statistics_populated(self):
        builder = build([[1, 2]], [(1, [-1]), (1, [-2])])
        result = MaxSatSolver().solve(builder)
        assert result.sat_calls >= 1
        assert result.solve_time >= 0.0
