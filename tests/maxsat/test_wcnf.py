"""Tests for the weighted CNF builder."""

import pytest

from repro.maxsat.wcnf import WcnfBuilder, clause_satisfied


class TestWcnfBuilder:
    def test_new_var_counts_up(self):
        builder = WcnfBuilder()
        assert builder.new_var() == 1
        assert builder.new_var() == 2
        assert builder.num_vars == 2

    def test_new_vars_bulk(self):
        builder = WcnfBuilder()
        assert builder.new_vars(3) == [1, 2, 3]

    def test_add_hard_records_clause(self):
        builder = WcnfBuilder()
        builder.add_hard([1, -2])
        assert builder.hard == [[1, -2]]
        assert builder.num_hard == 1

    def test_add_soft_default_weight(self):
        builder = WcnfBuilder()
        builder.add_soft([3])
        assert builder.soft[0].weight == 1
        assert builder.num_soft == 1

    def test_add_soft_with_weight(self):
        builder = WcnfBuilder()
        builder.add_soft([1], weight=5)
        assert builder.total_soft_weight == 5

    def test_rejects_zero_weight(self):
        with pytest.raises(ValueError):
            WcnfBuilder().add_soft([1], weight=0)

    def test_rejects_empty_clause(self):
        with pytest.raises(ValueError):
            WcnfBuilder().add_hard([])

    def test_rejects_zero_literal(self):
        with pytest.raises(ValueError):
            WcnfBuilder().add_hard([1, 0])

    def test_num_vars_tracks_largest_literal(self):
        builder = WcnfBuilder()
        builder.add_hard([7, -9])
        assert builder.num_vars == 9

    def test_is_weighted_detection(self):
        builder = WcnfBuilder()
        builder.add_soft([1])
        assert not builder.is_weighted()
        builder.add_soft([2], weight=4)
        assert builder.is_weighted()

    def test_to_dimacs(self):
        builder = WcnfBuilder()
        builder.add_hard([1, 2])
        builder.add_soft([-1], weight=3)
        formula = builder.to_dimacs()
        assert formula.hard == [[1, 2]]
        assert formula.soft == [(3, [-1])]


class TestCostOfModel:
    def test_all_satisfied_costs_zero(self):
        builder = WcnfBuilder()
        builder.add_soft([1])
        builder.add_soft([2], weight=5)
        assert builder.cost_of_model({1: True, 2: True}) == 0

    def test_violated_weights_summed(self):
        builder = WcnfBuilder()
        builder.add_soft([1])
        builder.add_soft([2], weight=5)
        assert builder.cost_of_model({1: False, 2: False}) == 6

    def test_missing_variables_treated_as_false(self):
        builder = WcnfBuilder()
        builder.add_soft([4])
        assert builder.cost_of_model({}) == 1

    def test_clause_satisfied_positive(self):
        assert clause_satisfied([1, 2], {1: False, 2: True})

    def test_clause_satisfied_negative(self):
        assert clause_satisfied([-3], {3: False})

    def test_clause_unsatisfied(self):
        assert not clause_satisfied([1, -2], {1: False, 2: True})
