"""Property-based tests: MaxSAT strategies agree with brute force and each other."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.maxsat import MaxSatSolver, MaxSatStatus, WcnfBuilder


def brute_force_optimum(num_vars, hard, soft):
    """Minimum total weight of violated soft clauses over models of the hard part."""
    best = None
    for bits in itertools.product([False, True], repeat=num_vars):
        def value(literal):
            bit = bits[abs(literal) - 1]
            return bit if literal > 0 else not bit

        if not all(any(value(l) for l in clause) for clause in hard):
            continue
        cost = sum(weight for weight, clause in soft
                   if not any(value(l) for l in clause))
        if best is None or cost < best:
            best = cost
    return best


@st.composite
def maxsat_instance(draw, weighted: bool):
    num_vars = draw(st.integers(min_value=2, max_value=6))
    literal = st.builds(lambda sign, var: sign * var,
                        st.sampled_from([1, -1]), st.integers(1, num_vars))
    clause = st.lists(literal, min_size=1, max_size=3)
    hard = draw(st.lists(clause, min_size=0, max_size=8))
    weight = st.integers(1, 4) if weighted else st.just(1)
    soft = draw(st.lists(st.tuples(weight, clause), min_size=1, max_size=6))
    return num_vars, hard, soft


def make_builder(num_vars, hard, soft) -> WcnfBuilder:
    builder = WcnfBuilder()
    builder.new_vars(num_vars)
    for clause in hard:
        builder.add_hard(list(clause))
    for weight, clause in soft:
        builder.add_soft(list(clause), weight)
    return builder


class TestAgainstBruteForce:
    @given(maxsat_instance(weighted=False))
    @settings(max_examples=40, deadline=None)
    def test_linear_search_unweighted(self, instance):
        num_vars, hard, soft = instance
        expected = brute_force_optimum(num_vars, hard, soft)
        result = MaxSatSolver("linear").solve(make_builder(num_vars, hard, soft))
        if expected is None:
            assert result.status is MaxSatStatus.UNSATISFIABLE
        else:
            assert result.is_optimal and result.cost == expected

    @given(maxsat_instance(weighted=True))
    @settings(max_examples=40, deadline=None)
    def test_linear_search_weighted(self, instance):
        num_vars, hard, soft = instance
        expected = brute_force_optimum(num_vars, hard, soft)
        result = MaxSatSolver("linear").solve(make_builder(num_vars, hard, soft))
        if expected is None:
            assert result.status is MaxSatStatus.UNSATISFIABLE
        else:
            assert result.is_optimal and result.cost == expected

    @given(maxsat_instance(weighted=False))
    @settings(max_examples=30, deadline=None)
    def test_core_guided_matches_linear(self, instance):
        num_vars, hard, soft = instance
        linear = MaxSatSolver("linear").solve(make_builder(num_vars, hard, soft))
        core = MaxSatSolver("core-guided").solve(make_builder(num_vars, hard, soft))
        assert linear.status == core.status
        if linear.is_optimal:
            assert linear.cost == core.cost

    @given(maxsat_instance(weighted=True))
    @settings(max_examples=25, deadline=None)
    def test_optimal_model_cost_matches_reported_cost(self, instance):
        num_vars, hard, soft = instance
        builder = make_builder(num_vars, hard, soft)
        result = MaxSatSolver("linear").solve(builder)
        if result.has_model:
            assert builder.cost_of_model(result.model) == result.cost
