"""Tests for the OLL (RC2-style) core-guided MaxSAT strategy."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.maxsat.rc2 import OllSolver
from repro.maxsat.solver import MaxSatSolver, MaxSatStatus
from repro.maxsat.wcnf import WcnfBuilder, clause_satisfied


def _brute_force_optimum(builder):
    """Minimum falsified soft weight over all models of the hard clauses."""
    variables = list(range(1, builder.num_vars + 1))
    best = None
    for bits in itertools.product([False, True], repeat=len(variables)):
        model = dict(zip(variables, bits))
        if not all(clause_satisfied(clause, model) for clause in builder.hard):
            continue
        cost = builder.cost_of_model(model)
        best = cost if best is None else min(best, cost)
    return best


class TestOllBasics:
    def test_all_soft_satisfiable(self):
        builder = WcnfBuilder()
        a, b = builder.new_vars(2)
        builder.add_hard([a, b])
        builder.add_soft([a])
        builder.add_soft([b])
        outcome = OllSolver(builder).solve()
        assert outcome.found_model and outcome.optimal
        assert outcome.cost == 0

    def test_one_soft_must_fail(self):
        builder = WcnfBuilder()
        a = builder.new_var()
        builder.add_soft([a])
        builder.add_soft([-a])
        outcome = OllSolver(builder).solve()
        assert outcome.optimal and outcome.cost == 1

    def test_hard_unsat_reported(self):
        builder = WcnfBuilder()
        a = builder.new_var()
        builder.add_hard([a])
        builder.add_hard([-a])
        builder.add_soft([a])
        outcome = OllSolver(builder).solve()
        assert not outcome.found_model
        assert outcome.optimal and outcome.cost == -1

    def test_weighted_preference(self):
        builder = WcnfBuilder()
        a = builder.new_var()
        builder.add_soft([a], weight=5)
        builder.add_soft([-a], weight=1)
        outcome = OllSolver(builder).solve()
        assert outcome.cost == 1
        assert outcome.model[a] is True

    def test_paper_example_4(self):
        # Hard = {-a or b}, Soft = {b, a and -b (as two clauses a, -b)}.
        builder = WcnfBuilder()
        a, b = builder.new_vars(2)
        builder.add_hard([-a, b])
        builder.add_soft([b])
        builder.add_soft([a])
        builder.add_soft([-b])
        outcome = OllSolver(builder).solve()
        assert outcome.optimal
        assert outcome.cost == 1

    def test_core_counter_increases(self):
        builder = WcnfBuilder()
        a, b, c = builder.new_vars(3)
        builder.add_hard([-a, -b])
        builder.add_hard([-b, -c])
        builder.add_hard([-a, -c])
        for variable in (a, b, c):
            builder.add_soft([variable])
        outcome = OllSolver(builder).solve()
        assert outcome.cost == 2
        assert outcome.cores >= 1

    def test_zero_budget_returns_unknown(self):
        builder = WcnfBuilder()
        a = builder.new_var()
        builder.add_soft([a])
        builder.add_soft([-a])
        outcome = OllSolver(builder).solve(time_budget=0.0)
        assert not outcome.found_model
        assert not outcome.optimal


class TestFacadeIntegration:
    def test_rc2_strategy_accepted(self):
        solver = MaxSatSolver(strategy="rc2")
        builder = WcnfBuilder()
        a, b = builder.new_vars(2)
        builder.add_hard([a, b])
        builder.add_soft([-a], weight=2)
        builder.add_soft([-b], weight=3)
        result = solver.solve(builder)
        assert result.status is MaxSatStatus.OPTIMAL
        assert result.cost == 2

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            MaxSatSolver(strategy="branch-and-bound")

    def test_rc2_unsat_hard(self):
        builder = WcnfBuilder()
        a = builder.new_var()
        builder.add_hard([a])
        builder.add_hard([-a])
        result = MaxSatSolver(strategy="rc2").solve(builder)
        assert result.status is MaxSatStatus.UNSATISFIABLE


class TestOllAgainstBruteForce:
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_optimum_matches_brute_force(self, data):
        num_vars = data.draw(st.integers(min_value=2, max_value=4))
        builder = WcnfBuilder()
        variables = builder.new_vars(num_vars)
        literal = st.sampled_from([v for v in variables] + [-v for v in variables])
        num_hard = data.draw(st.integers(min_value=0, max_value=3))
        for _ in range(num_hard):
            clause = data.draw(st.lists(literal, min_size=1, max_size=3))
            builder.add_hard(clause)
        num_soft = data.draw(st.integers(min_value=1, max_value=4))
        for _ in range(num_soft):
            clause = data.draw(st.lists(literal, min_size=1, max_size=2))
            weight = data.draw(st.integers(min_value=1, max_value=4))
            builder.add_soft(clause, weight=weight)

        expected = _brute_force_optimum(builder)
        outcome = OllSolver(builder).solve(time_budget=20.0)
        if expected is None:
            assert not outcome.found_model
        else:
            assert outcome.found_model
            assert outcome.cost == expected

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_agrees_with_linear_search(self, data):
        num_vars = data.draw(st.integers(min_value=2, max_value=4))

        def build():
            builder = WcnfBuilder()
            variables = builder.new_vars(num_vars)
            builder.add_hard([variables[0], variables[1]])
            for index, variable in enumerate(variables):
                builder.add_soft([-variable], weight=index + 1)
            return builder

        linear = MaxSatSolver(strategy="linear").solve(build())
        rc2 = MaxSatSolver(strategy="rc2").solve(build())
        assert linear.status is MaxSatStatus.OPTIMAL
        assert rc2.status is MaxSatStatus.OPTIMAL
        assert linear.cost == rc2.cost
