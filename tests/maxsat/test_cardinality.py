"""Tests for cardinality and pseudo-Boolean encodings."""

import itertools

import pytest

from repro.maxsat.cardinality import (
    GeneralizedTotalizer,
    Totalizer,
    at_least_one,
    at_most_one_commander,
    at_most_one_pairwise,
    exactly_one,
)
from repro.maxsat.wcnf import WcnfBuilder
from repro.sat import SatSolver


def count_models_with(builder: WcnfBuilder, num_inputs: int,
                      predicate) -> tuple[int, int]:
    """Count (models matching predicate, total models) over the input variables."""
    matching = 0
    total = 0
    for bits in itertools.product([False, True], repeat=num_inputs):
        solver = SatSolver()
        solver.ensure_vars(builder.num_vars)
        for clause in builder.hard:
            solver.add_clause(clause)
        assumptions = [var if value else -var
                       for var, value in zip(range(1, num_inputs + 1), bits)]
        result = solver.solve(assumptions=assumptions)
        if result.is_sat:
            matching += 1
        if predicate(bits):
            total += 1
    return matching, total


class TestAtMostOne:
    @pytest.mark.parametrize("encoder", [at_most_one_pairwise, at_most_one_commander])
    def test_amo_allows_at_most_one_true(self, encoder):
        builder = WcnfBuilder()
        inputs = builder.new_vars(5)
        encoder(builder, inputs)
        satisfiable, expected = count_models_with(
            builder, 5, lambda bits: sum(bits) <= 1)
        assert satisfiable == expected == 6  # empty assignment + 5 singletons

    def test_exactly_one_requires_one(self):
        builder = WcnfBuilder()
        inputs = builder.new_vars(4)
        exactly_one(builder, inputs)
        satisfiable, expected = count_models_with(
            builder, 4, lambda bits: sum(bits) == 1)
        assert satisfiable == expected == 4

    def test_at_least_one(self):
        builder = WcnfBuilder()
        inputs = builder.new_vars(3)
        at_least_one(builder, inputs)
        satisfiable, _ = count_models_with(builder, 3, lambda bits: True)
        assert satisfiable == 7  # everything except all-false

    def test_commander_uses_fewer_clauses_for_large_sets(self):
        pairwise_builder = WcnfBuilder()
        pairwise_inputs = pairwise_builder.new_vars(30)
        at_most_one_pairwise(pairwise_builder, pairwise_inputs)

        commander_builder = WcnfBuilder()
        commander_inputs = commander_builder.new_vars(30)
        at_most_one_commander(commander_builder, commander_inputs)
        assert commander_builder.num_hard < pairwise_builder.num_hard


class TestTotalizer:
    @pytest.mark.parametrize("num_inputs,bound", [(4, 1), (4, 2), (5, 0), (5, 3), (6, 2)])
    def test_at_most_bound_enforced_exactly(self, num_inputs, bound):
        builder = WcnfBuilder()
        inputs = builder.new_vars(num_inputs)
        totalizer = Totalizer(builder, inputs)
        totalizer.enforce_at_most(bound)
        satisfiable, expected = count_models_with(
            builder, num_inputs, lambda bits: sum(bits) <= bound)
        assert satisfiable == expected

    def test_bound_beyond_size_is_noop(self):
        builder = WcnfBuilder()
        inputs = builder.new_vars(3)
        totalizer = Totalizer(builder, inputs)
        clauses_before = builder.num_hard
        totalizer.enforce_at_most(5)
        assert builder.num_hard == clauses_before

    def test_negative_bound_rejected(self):
        builder = WcnfBuilder()
        totalizer = Totalizer(builder, builder.new_vars(2))
        with pytest.raises(ValueError):
            totalizer.enforce_at_most(-1)

    def test_empty_inputs(self):
        builder = WcnfBuilder()
        totalizer = Totalizer(builder, [])
        assert totalizer.outputs == []

    def test_assumption_based_bound(self):
        builder = WcnfBuilder()
        inputs = builder.new_vars(4)
        totalizer = Totalizer(builder, inputs)
        solver = SatSolver()
        solver.ensure_vars(builder.num_vars)
        for clause in builder.hard:
            solver.add_clause(clause)
        # Force three inputs true, then ask for "at most 2" via assumptions.
        result = solver.solve(assumptions=[inputs[0], inputs[1], inputs[2]]
                              + totalizer.assumption_for_at_most(2))
        assert result.is_unsat
        result = solver.solve(assumptions=[inputs[0], inputs[1]]
                              + totalizer.assumption_for_at_most(2))
        assert result.is_sat


class TestGeneralizedTotalizer:
    def brute_min_weight_violation(self, weights, bound):
        """Count assignments whose weighted sum is < bound."""
        count = 0
        for bits in itertools.product([False, True], repeat=len(weights)):
            if sum(w for w, b in zip(weights, bits) if b) < bound:
                count += 1
        return count

    @pytest.mark.parametrize("weights,bound", [
        ([1, 1, 1], 2), ([2, 3, 5], 5), ([1, 2, 4, 8], 7), ([3, 3, 3], 4),
    ])
    def test_weight_bound_enforced_exactly(self, weights, bound):
        builder = WcnfBuilder()
        inputs = builder.new_vars(len(weights))
        gte = GeneralizedTotalizer(builder, list(zip(inputs, weights)))
        gte.enforce_weight_less_than(bound)
        satisfiable, expected = count_models_with(
            builder, len(weights),
            lambda bits: sum(w for w, b in zip(weights, bits) if b) < bound)
        assert satisfiable == expected

    def test_rejects_nonpositive_weight(self):
        builder = WcnfBuilder()
        inputs = builder.new_vars(2)
        with pytest.raises(ValueError):
            GeneralizedTotalizer(builder, [(inputs[0], 0), (inputs[1], 1)])

    def test_rejects_nonpositive_bound(self):
        builder = WcnfBuilder()
        inputs = builder.new_vars(2)
        gte = GeneralizedTotalizer(builder, [(inputs[0], 1), (inputs[1], 2)])
        with pytest.raises(ValueError):
            gte.enforce_weight_less_than(0)

    def test_outputs_cover_achievable_sums(self):
        builder = WcnfBuilder()
        inputs = builder.new_vars(3)
        gte = GeneralizedTotalizer(builder, list(zip(inputs, [1, 2, 4])))
        assert set(gte.outputs) == {1, 2, 3, 4, 5, 6, 7}

    def test_empty_inputs(self):
        builder = WcnfBuilder()
        gte = GeneralizedTotalizer(builder, [])
        assert gte.outputs == {}
