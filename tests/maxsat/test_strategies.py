"""Tests for the linear-search and core-guided MaxSAT strategies."""

import pytest

from repro.maxsat.core_guided import FuMalikSolver
from repro.maxsat.linear_search import LinearSearchSolver
from repro.maxsat.wcnf import WcnfBuilder


def simple_instance() -> WcnfBuilder:
    """Hard: (a | b); Soft: -a, -b.  Optimum cost 1."""
    builder = WcnfBuilder()
    a, b = builder.new_vars(2)
    builder.add_hard([a, b])
    builder.add_soft([-a])
    builder.add_soft([-b])
    return builder


class TestLinearSearch:
    def test_finds_optimum_of_simple_instance(self):
        outcome = LinearSearchSolver(simple_instance()).solve()
        assert outcome.found_model and outcome.optimal
        assert outcome.cost == 1

    def test_all_soft_satisfiable_gives_zero_cost(self):
        builder = WcnfBuilder()
        a, b = builder.new_vars(2)
        builder.add_hard([a])
        builder.add_soft([a])
        builder.add_soft([b])
        outcome = LinearSearchSolver(builder).solve()
        assert outcome.optimal and outcome.cost == 0

    def test_hard_unsat_reported(self):
        builder = WcnfBuilder()
        a = builder.new_var()
        builder.add_hard([a])
        builder.add_hard([-a])
        builder.add_soft([a])
        outcome = LinearSearchSolver(builder).solve()
        assert not outcome.found_model
        assert outcome.optimal  # definitive: the hard clauses are unsatisfiable

    def test_weighted_prefers_heavier_clause(self):
        builder = WcnfBuilder()
        a, b = builder.new_vars(2)
        builder.add_hard([a, b])
        builder.add_hard([-a, -b])
        builder.add_soft([a], weight=10)
        builder.add_soft([b], weight=1)
        outcome = LinearSearchSolver(builder).solve()
        assert outcome.optimal
        assert outcome.cost == 1
        assert outcome.model[a] is True and outcome.model[b] is False

    def test_non_unit_soft_clauses(self):
        builder = WcnfBuilder()
        a, b, c = builder.new_vars(3)
        builder.add_hard([-a, -b])
        builder.add_soft([a, c])
        builder.add_soft([b, c])
        builder.add_soft([-c])
        outcome = LinearSearchSolver(builder).solve()
        assert outcome.optimal and outcome.cost == 1

    def test_no_soft_clauses(self):
        builder = WcnfBuilder()
        a = builder.new_var()
        builder.add_hard([a])
        outcome = LinearSearchSolver(builder).solve()
        assert outcome.optimal and outcome.cost == 0

    def test_anytime_respects_zero_budget(self):
        builder = simple_instance()
        outcome = LinearSearchSolver(builder).solve(time_budget=0.0)
        # With no time at all, either nothing or a (possibly non-optimal) model.
        assert outcome.cost in (-1, 0, 1, 2)

    def test_sat_call_count_recorded(self):
        outcome = LinearSearchSolver(simple_instance()).solve()
        assert outcome.sat_calls >= 2  # at least one improvement + one proof


class TestFuMalik:
    def test_finds_optimum_of_simple_instance(self):
        outcome = FuMalikSolver(simple_instance()).solve()
        assert outcome.found_model and outcome.optimal
        assert outcome.cost == 1

    def test_rejects_weighted_instances(self):
        builder = WcnfBuilder()
        a = builder.new_var()
        builder.add_soft([a], weight=2)
        with pytest.raises(ValueError):
            FuMalikSolver(builder)

    def test_zero_cost_instance(self):
        builder = WcnfBuilder()
        a, b = builder.new_vars(2)
        builder.add_hard([a, b])
        builder.add_soft([a, b])
        outcome = FuMalikSolver(builder).solve()
        assert outcome.optimal and outcome.cost == 0

    def test_hard_unsat_reported(self):
        builder = WcnfBuilder()
        a = builder.new_var()
        builder.add_hard([a])
        builder.add_hard([-a])
        builder.add_soft([a])
        outcome = FuMalikSolver(builder).solve()
        assert not outcome.found_model
        assert outcome.cost == -1

    def test_multiple_cores_needed(self):
        # Three mutually exclusive soft requirements on one variable pair.
        builder = WcnfBuilder()
        a, b = builder.new_vars(2)
        builder.add_hard([a, b])
        builder.add_soft([-a])
        builder.add_soft([-b])
        builder.add_soft([-a, -b])
        outcome = FuMalikSolver(builder).solve()
        assert outcome.optimal
        assert outcome.cost == 1

    def test_agreement_with_linear_search(self):
        builder_a = WcnfBuilder()
        variables = builder_a.new_vars(4)
        builder_a.add_hard([variables[0], variables[1]])
        builder_a.add_hard([-variables[1], variables[2]])
        for variable in variables:
            builder_a.add_soft([-variable])

        builder_b = WcnfBuilder()
        variables_b = builder_b.new_vars(4)
        builder_b.add_hard([variables_b[0], variables_b[1]])
        builder_b.add_hard([-variables_b[1], variables_b[2]])
        for variable in variables_b:
            builder_b.add_soft([-variable])

        linear = LinearSearchSolver(builder_a).solve()
        core_guided = FuMalikSolver(builder_b).solve()
        assert linear.cost == core_guided.cost
