"""Tests for the weight-clustering approximation in the linear-search bound.

Large soft-clause weights (the noise-aware objective produces values in the
hundreds) make the generalized-totalizer bound pseudo-polynomially expensive.
The linear search clusters such weights for its bound structure, exactly like
Open-WBO-Inc; these tests pin down when clustering kicks in and that it never
breaks correctness, only proof-of-optimality.
"""

import pytest

from repro.maxsat.linear_search import LinearSearchSolver
from repro.maxsat.solver import MaxSatSolver, MaxSatStatus
from repro.maxsat.wcnf import WcnfBuilder


def _conflicting_pair(weight_a, weight_b):
    """Two unit soft clauses on one variable: exactly one must be violated."""
    builder = WcnfBuilder()
    variable = builder.new_var()
    builder.add_soft([variable], weight=weight_a)
    builder.add_soft([-variable], weight=weight_b)
    return builder, variable


class TestClusterWeights:
    def test_small_weights_are_not_clustered(self):
        builder = WcnfBuilder()
        solver = LinearSearchSolver(builder, max_bound_weight=32)
        assert solver._cluster_weights([1, 5, 32]) is None

    def test_large_weights_are_clustered_into_range(self):
        builder = WcnfBuilder()
        solver = LinearSearchSolver(builder, max_bound_weight=16)
        clustered = solver._cluster_weights([40, 400, 4000])
        assert clustered is not None
        assert max(clustered) == 16
        assert min(clustered) >= 1
        # Order must be preserved (monotone rescaling).
        assert clustered == sorted(clustered)

    def test_empty_weights(self):
        assert LinearSearchSolver(WcnfBuilder())._cluster_weights([]) is None

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            LinearSearchSolver(WcnfBuilder(), max_bound_weight=0)


class TestSmallWeightsStayExact:
    def test_exact_optimum_with_small_weights(self):
        builder, variable = _conflicting_pair(5, 1)
        result = MaxSatSolver("linear").solve(builder)
        assert result.status is MaxSatStatus.OPTIMAL
        assert result.cost == 1
        assert result.model[variable] is True


class TestLargeWeightsStayCorrect:
    def test_clustered_instance_prefers_heavy_clause(self):
        builder, variable = _conflicting_pair(5000, 700)
        result = MaxSatSolver("linear").solve(builder)
        assert result.has_model
        assert result.cost == 700
        assert result.model[variable] is True

    def test_clustered_instance_with_hard_constraints(self):
        builder = WcnfBuilder()
        a, b = builder.new_vars(2)
        builder.add_hard([a, b])
        builder.add_soft([-a], weight=900)
        builder.add_soft([-b], weight=450)
        builder.add_soft([a, b], weight=1200)  # already implied by the hard clause
        result = MaxSatSolver("linear").solve(builder)
        assert result.has_model
        # Best solution sets b (cost 450); clustering must still find it.
        assert result.cost == 450

    def test_cost_matches_rc2_on_clustered_instance(self):
        def build():
            builder = WcnfBuilder()
            a, b, c = builder.new_vars(3)
            builder.add_hard([a, b, c])
            builder.add_soft([-a], weight=1000)
            builder.add_soft([-b], weight=999)
            builder.add_soft([-c], weight=100)
            builder.add_soft([a], weight=300)
            return builder

        linear = MaxSatSolver("linear").solve(build())
        exact = MaxSatSolver("rc2").solve(build())
        assert exact.status is MaxSatStatus.OPTIMAL
        assert linear.has_model
        # Clustering may cost a little precision but not much on 4 clauses.
        assert linear.cost <= exact.cost * 1.2 + 1


class TestNoiseAwareBudgetRespected:
    def test_noise_aware_routing_finishes_quickly(self):
        import time

        from repro.analysis.suite import tiny_suite
        from repro.core import NoiseAwareSatMapRouter
        from repro.hardware.noise import NoiseModel
        from repro.hardware.topologies import reduced_tokyo_architecture

        architecture = reduced_tokyo_architecture(6)
        noise = NoiseModel.synthetic(architecture, seed=2019, low=0.005, high=0.12)
        bench = tiny_suite()[1]
        start = time.monotonic()
        result = NoiseAwareSatMapRouter(noise, slice_size=10, time_budget=6.0).route(
            bench.circuit, architecture)
        elapsed = time.monotonic() - start
        assert result.solved
        assert result.objective_value is not None
        assert 0.0 < result.objective_value <= 1.0
        # The budget must be respected within a generous grace factor.
        assert elapsed < 30.0

    def test_sliced_noise_aware_reports_objective(self):
        from repro.analysis.suite import tiny_suite
        from repro.core import NoiseAwareSatMapRouter
        from repro.hardware.noise import NoiseModel
        from repro.hardware.topologies import reduced_tokyo_architecture

        architecture = reduced_tokyo_architecture(6)
        noise = NoiseModel.synthetic(architecture, seed=7)
        bench = next(b for b in tiny_suite() if b.num_two_qubit_gates > 10)
        result = NoiseAwareSatMapRouter(noise, slice_size=5, time_budget=10.0).route(
            bench.circuit, architecture)
        assert result.solved
        assert result.num_slices > 1
        assert result.objective_value is not None
