"""The advertised API cannot drift: run the quickstart docs.

Two guards, both part of tier-1 (and called out explicitly in CI):

* the doctests embedded in ``repro``'s package docstring run verbatim;
* every ``python`` code block in the README executes without error.

If a README example references a name that no longer exists, or the
``__init__`` quickstart stops working, this file fails the build.
"""

from __future__ import annotations

import doctest
import re
from pathlib import Path

import repro

README = Path(__file__).resolve().parents[2] / "README.md"


class TestInitQuickstart:
    def test_package_docstring_doctests_pass(self):
        results = doctest.testmod(repro, verbose=False)
        assert results.attempted > 0, "quickstart lost its doctests"
        assert results.failed == 0

    def test_all_exports_exist(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name


def python_blocks(text: str) -> list[str]:
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadmeExamples:
    def test_readme_has_python_examples(self):
        assert len(python_blocks(README.read_text())) >= 1

    def test_readme_python_blocks_execute(self, tmp_path, monkeypatch):
        # Run inside a scratch directory so examples that write (cache
        # directories, QASM output) never touch the repository.
        monkeypatch.chdir(tmp_path)
        for index, block in enumerate(python_blocks(README.read_text())):
            namespace: dict = {}
            try:
                exec(compile(block, f"README.md[python #{index}]", "exec"),
                     namespace)
            except Exception as error:  # pragma: no cover - failure reporting
                raise AssertionError(
                    f"README python block #{index} failed: {error}\n{block}"
                ) from error
