"""The single capability-aware router registry."""

import pytest

from repro.api import (
    OptionField,
    Router,
    RouterSpec,
    SpecError,
    UnknownRouterError,
    describe_routers,
    display_name,
    get_router,
    list_routers,
    register_router,
    router_capabilities,
    router_entry,
    unregister_router,
)

EXPECTED_BUILTINS = {"satmap", "nl-satmap", "noise-satmap", "cyclic", "hybrid",
                     "sabre", "tket", "astar", "bmt", "naive", "olsq", "exact"}


class TestListing:
    def test_builtins_are_registered(self):
        assert EXPECTED_BUILTINS <= set(list_routers())

    def test_list_is_sorted(self):
        names = list_routers()
        assert names == sorted(names)

    def test_capability_filtering(self):
        noise_aware = list_routers(capability="noise_aware")
        assert noise_aware == ["noise-satmap"]
        optimal = set(list_routers(capability="optimal"))
        assert {"satmap", "nl-satmap", "olsq", "exact"} <= optimal
        assert "sabre" not in optimal

    def test_multi_capability_filtering(self):
        both = list_routers(capability=("optimal", "anytime"))
        assert "satmap" in both
        assert "olsq" not in both  # exact, but not anytime

    def test_capabilities_lookup(self):
        assert "anytime" in router_capabilities("satmap")
        assert "fallback" in router_capabilities("naive")

    def test_describe_routers_is_json_ready(self):
        import json

        entries = describe_routers()
        json.dumps(entries)  # must not raise
        by_name = {entry["name"]: entry for entry in entries}
        slice_field = [option for option in by_name["satmap"]["options"]
                       if option["name"] == "slice_size"]
        assert slice_field and slice_field[0]["default"] == 25


class TestGetRouter:
    def test_builds_every_builtin(self):
        for name in EXPECTED_BUILTINS:
            router = get_router(name, time_budget=5.0)
            assert isinstance(router, Router), name
            assert router.time_budget == 5.0

    def test_spec_options_beat_defaults(self):
        router = get_router("satmap:time_budget=7", time_budget=99.0)
        assert router.time_budget == 7.0

    def test_entry_defaults_apply(self):
        assert get_router("satmap").slice_size == 25
        assert get_router("nl-satmap").slice_size is None

    def test_unknown_router_raises_key_error(self):
        with pytest.raises(UnknownRouterError):
            get_router("no-such")
        with pytest.raises(KeyError):
            get_router("no-such")

    def test_unknown_option_raises_before_construction(self):
        with pytest.raises(SpecError):
            get_router("sabre:warp_factor=9")

    def test_accepts_dict_specs(self):
        router = get_router({"router": "sabre", "options": {"seed": 4}})
        assert router.seed == 4


class TestRegistration:
    def test_register_and_unregister(self):
        class FixedRouter:
            name = "fixed"

            def __init__(self, time_budget=60.0, verify=True, answer=42):
                self.time_budget = time_budget
                self.verify = verify
                self.answer = answer

            def route(self, circuit, architecture):
                raise NotImplementedError

        try:
            register_router(
                "fixed", FixedRouter, summary="test router",
                capabilities=("heuristic",),
                options=(OptionField("time_budget", "float", 60.0),
                         OptionField("verify", "bool", True),
                         OptionField("answer", "int", 42)))
            assert "fixed" in list_routers()
            router = get_router("fixed:answer=7")
            assert router.answer == 7
            assert isinstance(router, Router)
        finally:
            unregister_router("fixed")
        assert "fixed" not in list_routers()

    def test_duplicate_registration_requires_replace(self):
        with pytest.raises(ValueError):
            register_router("satmap", lambda **kw: None)

    def test_entry_lookup(self):
        entry = router_entry("tket")
        assert entry.option("window_size") is not None
        assert entry.option("nonexistent") is None


class TestDisplayName:
    def test_display_names_match_router_self_reports(self):
        assert display_name("satmap") == "SATMAP"
        assert display_name("nl-satmap") == "NL-SATMAP"
        assert display_name("sabre") == "SABRE"
        assert display_name("noise-satmap") == "SATMAP-noise"
        assert display_name("cyclic") == "CYC-SATMAP"

    def test_unknown_name_falls_back_to_itself(self):
        assert display_name("not-a-router") == "not-a-router"

    def test_spec_string_display_reflects_options(self):
        # Disabling slicing turns SATMAP into its NL configuration, and the
        # display name self-reports accordingly.
        assert display_name("satmap:slice_size=none") == "NL-SATMAP"
        assert display_name(RouterSpec("satmap", {"slice_size": 10})) == "SATMAP"


class TestOptionField:
    def test_int_rejects_bool(self):
        with pytest.raises(SpecError):
            OptionField("n", "int", 0).coerce(True)

    def test_float_accepts_int(self):
        assert OptionField("x", "float", 0.0).coerce(3) == 3.0

    def test_string_coercion_from_cli_values(self):
        assert OptionField("n", "int", 0).coerce("12") == 12
        assert OptionField("b", "bool", False).coerce("yes") is True
        assert OptionField("s", "str", "").coerce("true") == "true"

    def test_unknown_type_tag_rejected(self):
        with pytest.raises(ValueError):
            OptionField("n", "complex", 0)
