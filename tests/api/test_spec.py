"""RouterSpec parsing, round-trips, and validation."""

import pytest

from repro.api import RouterSpec, SpecError, UnknownRouterError
from repro.api.spec import parse_scalar, render_scalar


class TestFromString:
    def test_bare_name(self):
        spec = RouterSpec.from_string("satmap")
        assert spec.name == "satmap"
        assert spec.options == {}

    def test_options_parse_typed_scalars(self):
        spec = RouterSpec.from_string(
            "satmap:slice_size=25,time_budget=60.5,incremental=false,"
            "strategy=linear")
        assert spec.options == {"slice_size": 25, "time_budget": 60.5,
                                "incremental": False, "strategy": "linear"}

    def test_none_literal(self):
        spec = RouterSpec.from_string("nl-satmap:slice_size=none")
        assert spec.options == {"slice_size": None}

    def test_whitespace_is_tolerated(self):
        spec = RouterSpec.from_string("  sabre : seed = 3 ")
        assert spec.name == "sabre"
        assert spec.options == {"seed": 3}

    @pytest.mark.parametrize("bad", ["", "   ", ":slice_size=1",
                                     "satmap:slice_size", "satmap:=1",
                                     "satmap:sli ce=1"])
    def test_malformed_specs_are_rejected(self, bad):
        with pytest.raises(SpecError):
            RouterSpec.from_string(bad)


class TestRoundTrips:
    def test_string_spec_dict_spec(self):
        original = RouterSpec.from_string("satmap:slice_size=25,verify=true")
        rebuilt = RouterSpec.from_dict(original.to_dict())
        assert rebuilt == original

    def test_string_round_trip_is_canonical(self):
        spec = RouterSpec.from_string("sabre:seed=3,lookahead_size=10")
        text = spec.to_string()
        assert text == "sabre:lookahead_size=10,seed=3"  # sorted keys
        assert RouterSpec.from_string(text) == spec

    def test_json_round_trip(self):
        spec = RouterSpec("satmap", {"slice_size": None, "verify": False})
        assert RouterSpec.from_json(spec.to_json()) == spec

    def test_none_and_bools_survive_the_string_form(self):
        spec = RouterSpec("satmap", {"slice_size": None, "incremental": True})
        assert RouterSpec.from_string(spec.to_string()) == spec

    def test_to_dict_sorts_options(self):
        spec = RouterSpec("satmap", {"b": 1, "a": 2})
        assert list(spec.to_dict()["options"]) == ["a", "b"]


class TestParse:
    def test_parse_passes_specs_through(self):
        spec = RouterSpec("sabre", {"seed": 1})
        assert RouterSpec.parse(spec) is spec

    def test_parse_accepts_dicts_and_strings(self):
        assert RouterSpec.parse("sabre:seed=1") == RouterSpec.parse(
            {"router": "sabre", "options": {"seed": 1}})

    def test_parse_accepts_name_alias(self):
        assert RouterSpec.parse({"name": "sabre"}).name == "sabre"

    def test_conflicting_names_are_rejected(self):
        with pytest.raises(SpecError):
            RouterSpec.parse({"router": "sabre", "name": "tket"})

    def test_unknown_dict_keys_are_rejected(self):
        with pytest.raises(SpecError):
            RouterSpec.parse({"router": "sabre", "optionz": {}})

    def test_unsupported_types_are_rejected(self):
        with pytest.raises(SpecError):
            RouterSpec.parse(42)


class TestValidation:
    def test_validated_coerces_types(self):
        spec = RouterSpec("satmap", {"slice_size": "25", "time_budget": 5})
        validated = spec.validated()
        assert validated.options["slice_size"] == 25
        assert validated.options["time_budget"] == 5.0
        assert isinstance(validated.options["time_budget"], float)

    def test_unknown_option_is_rejected(self):
        with pytest.raises(SpecError):
            RouterSpec.from_string("satmap:slize_size=25").validated()

    def test_ill_typed_option_is_rejected(self):
        with pytest.raises(SpecError):
            RouterSpec("sabre", {"seed": "not-a-number"}).validated()

    def test_none_only_where_allowed(self):
        assert RouterSpec("satmap", {"slice_size": None}).validated() is not None
        with pytest.raises(SpecError):
            RouterSpec("sabre", {"seed": None}).validated()

    def test_unknown_router_is_a_key_error(self):
        with pytest.raises(UnknownRouterError):
            RouterSpec("definitely-not-registered").validated()
        with pytest.raises(KeyError):
            RouterSpec("definitely-not-registered").validated()


class TestDerivation:
    def test_with_options_overrides(self):
        spec = RouterSpec("satmap", {"slice_size": 10})
        derived = spec.with_options(slice_size=20, verify=False)
        assert derived.options == {"slice_size": 20, "verify": False}
        assert spec.options == {"slice_size": 10}  # original untouched

    def test_with_defaults_fills_only_missing(self):
        spec = RouterSpec("satmap", {"time_budget": 5.0})
        derived = spec.with_defaults(time_budget=60.0, verify=True)
        assert derived.options == {"time_budget": 5.0, "verify": True}


class TestScalars:
    @pytest.mark.parametrize("text,value", [
        ("25", 25), ("2.5", 2.5), ("true", True), ("False", False),
        ("none", None), ("null", None), ("linear", "linear"), ("On", True),
    ])
    def test_parse_scalar(self, text, value):
        assert parse_scalar(text) == value

    @pytest.mark.parametrize("value", [25, 2.5, True, False, None, "linear"])
    def test_render_parse_inverse(self, value):
        assert parse_scalar(render_scalar(value)) == value
