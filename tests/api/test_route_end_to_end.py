"""repro.route / RouteRequest end-to-end, plus the deprecation shims."""

import pytest

import repro
from repro.api import RouterSpec, get_router
from repro.circuits.random_circuits import random_circuit
from repro.core.verifier import verify_routing
from repro.hardware.topologies import reduced_tokyo_architecture

ARCH = reduced_tokyo_architecture(6)

#: Acceptance grid: every family reachable by spec, end to end.
SPECS = [
    "satmap:slice_size=25,time_budget=10",
    "nl-satmap:time_budget=10",
    "noise-satmap:time_budget=10",
    "hybrid:time_budget=10",
    "cyclic:time_budget=10",
    "sabre",
    "tket",
    "astar",
    "bmt",
    "naive",
]


def small_circuit(seed: int = 3):
    return random_circuit(num_qubits=4, num_two_qubit_gates=6, seed=seed)


class TestRouteConvenience:
    @pytest.mark.parametrize("spec", SPECS)
    def test_route_solves_and_verifies(self, spec):
        circuit = small_circuit()
        result = repro.route(circuit, ARCH, spec)
        assert result.solved, (spec, result.status, result.notes)
        verify_routing(circuit, result.routed_circuit, result.initial_mapping,
                       ARCH)

    def test_route_kwargs_merge_into_the_spec(self):
        circuit = small_circuit()
        direct = repro.route(circuit, ARCH, "sabre:seed=2,time_budget=5")
        merged = repro.route(circuit, ARCH, "sabre", seed=2, time_budget=5)
        assert direct.swap_count == merged.swap_count

    def test_route_accepts_spec_objects_and_dicts(self):
        circuit = small_circuit()
        spec = RouterSpec("naive", {"smart_initial_mapping": True})
        by_object = repro.route(circuit, ARCH, spec)
        by_dict = repro.route(circuit, ARCH, spec.to_dict())
        assert by_object.swap_count == by_dict.swap_count

    def test_cyclic_spec_routes_repeated_blocks(self):
        block = small_circuit()
        result = repro.route(block, ARCH, "cyclic:cycles=3,time_budget=10")
        assert result.solved
        assert result.final_mapping == result.initial_mapping
        assert result.circuit_name.endswith("_x3")


class TestRouteRequest:
    def test_request_validates_its_spec(self):
        with pytest.raises(Exception):
            repro.RouteRequest(small_circuit(), ARCH, spec="satmap:bogus=1")

    def test_request_run_equals_direct_route(self):
        request = repro.RouteRequest(small_circuit(), ARCH, spec="sabre:seed=5")
        result = request.run()
        assert result.solved
        assert result.router_name == "SABRE"

    def test_request_to_job_round_trips_the_spec(self):
        request = repro.RouteRequest(small_circuit(), ARCH,
                                     spec="sabre:seed=5", name="probe")
        job = request.to_job()
        assert job.router == "sabre"
        assert job.options == {"seed": 5}
        assert job.name == "probe"
        # The job's cache identity is derived from the canonical spec dict.
        assert '"spec"' in job.content_payload()
        assert job.spec().to_dict() in [request.spec.to_dict()]

    def test_request_describe_is_json_ready(self):
        import json

        request = repro.RouteRequest(small_circuit(), ARCH, spec="naive")
        json.dumps(request.describe())


class TestOldConstructorsStillWork:
    def test_satmap_constructor_unchanged(self):
        circuit = small_circuit()
        result = repro.SatMapRouter(slice_size=25, time_budget=10).route(
            circuit, ARCH)
        assert result.solved

    def test_noise_aware_explicit_model_unchanged(self):
        from repro.hardware.noise import NoiseModel

        circuit = small_circuit()
        router = repro.NoiseAwareSatMapRouter(NoiseModel.uniform(ARCH),
                                              time_budget=10)
        result = router.route(circuit, ARCH)
        assert result.solved
        assert result.objective_value is not None

    def test_route_cyclic_function_unchanged(self):
        block = small_circuit()
        result = repro.route_cyclic(
            block, 2, ARCH, router=repro.SatMapRouter(time_budget=10,
                                                      verify=False))
        assert result.solved


class TestDeprecationShims:
    def test_baselines_base_router_is_base_router(self):
        from repro.api import BaseRouter
        from repro.baselines.base import Router as LegacyRouter
        from repro.baselines.base import RoutingTimeout as LegacyTimeout

        assert LegacyRouter is BaseRouter
        from repro.api import RoutingTimeout

        assert LegacyTimeout is RoutingTimeout

    def test_service_registry_shims_over_api(self):
        from repro.service.registry import build_router, display_name, router_names

        assert router_names() == repro.list_routers()
        router = build_router("satmap", 5.0, {"slice_size": 10})
        assert router.slice_size == 10 and router.time_budget == 5.0
        # Spec strings work through the legacy entry point too.
        assert build_router("sabre:seed=9", 5.0).seed == 9
        assert display_name("satmap") == "SATMAP"
        with pytest.raises(KeyError):
            build_router("no-such", 5.0)

    def test_cli_available_routers_shim_builds_everything(self):
        from repro.cli import available_routers

        for name, constructor in available_routers(5.0).items():
            router = constructor()
            assert router.time_budget == 5.0, name

    def test_get_router_equals_legacy_build_router(self):
        from repro.service.registry import build_router

        legacy = build_router("sabre", 5.0, {"seed": 2})
        modern = get_router("sabre:seed=2", time_budget=5.0)
        circuit = small_circuit()
        assert (legacy.route(circuit, ARCH).swap_count
                == modern.route(circuit, ARCH).swap_count)
