"""BaseRouter scaffolding: protocol conformance, error capture, deadlines."""

import pytest

from repro.api import BaseRouter, Router, RoutingTimeout, format_error_notes
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import cx
from repro.core import (
    CyclicRouter,
    HybridSatMapRouter,
    NoiseAwareSatMapRouter,
    RoutingStatus,
    SatMapRouter,
)
from repro.hardware.topologies import line_architecture


def tiny_circuit() -> QuantumCircuit:
    return QuantumCircuit(3, [cx(0, 1), cx(0, 2)], name="tiny")


class ExplodingRouter(BaseRouter):
    name = "exploding"

    def _route(self, circuit, architecture, deadline):
        return self._inner()

    def _inner(self):
        raise RuntimeError("kaboom")


class SleepyRouter(BaseRouter):
    name = "sleepy"

    def _route(self, circuit, architecture, deadline):
        raise RoutingTimeout


class TestErrorCapture:
    def test_error_notes_record_type_message_and_site(self):
        result = ExplodingRouter(time_budget=1.0).route(
            tiny_circuit(), line_architecture(3))
        assert result.status is RoutingStatus.ERROR
        assert "RuntimeError: kaboom" in result.notes
        # The traceback tail names the failure site, innermost frame first.
        assert "in _inner" in result.notes
        assert "test_base_router.py" in result.notes

    def test_format_error_notes_without_traceback(self):
        notes = format_error_notes(ValueError("plain"))
        assert notes == "ValueError: plain"

    def test_timeout_translates_to_timeout_status(self):
        result = SleepyRouter(time_budget=0.5).route(
            tiny_circuit(), line_architecture(3))
        assert result.status is RoutingStatus.TIMEOUT
        assert result.router_name == "sleepy"

    def test_check_deadline_raises_past_deadline(self):
        with pytest.raises(RoutingTimeout):
            BaseRouter.check_deadline(0.0)

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            ExplodingRouter(time_budget=0.0)


class TestProtocolAdoption:
    def test_satmap_family_subclasses_base_router(self):
        assert issubclass(SatMapRouter, BaseRouter)
        assert issubclass(NoiseAwareSatMapRouter, BaseRouter)
        assert issubclass(HybridSatMapRouter, BaseRouter)
        assert issubclass(CyclicRouter, BaseRouter)

    def test_baselines_subclass_base_router(self):
        from repro.baselines import (
            AStarLayerRouter,
            BmtLikeRouter,
            NaiveShortestPathRouter,
            SabreRouter,
            TketLikeRouter,
        )

        for cls in (AStarLayerRouter, BmtLikeRouter, NaiveShortestPathRouter,
                    SabreRouter, TketLikeRouter):
            assert issubclass(cls, BaseRouter), cls

    def test_protocol_isinstance_is_structural(self):
        class DuckRouter:
            name = "duck"

            def route(self, circuit, architecture):
                return None

        assert isinstance(DuckRouter(), Router)
        assert not isinstance(object(), Router)

    def test_satmap_error_capture_names_the_site(self):
        # SATMAP's scaffolding is now BaseRouter's: a crash inside the solve
        # path surfaces as an ERROR result with the failure site in notes.
        router = SatMapRouter(time_budget=5.0)
        too_big = QuantumCircuit(5, [cx(0, 4)], name="too-big")
        result = router.route(too_big, line_architecture(3))
        assert result.status is RoutingStatus.ERROR
        assert ".py:" in result.notes
