"""Tests for approximate token swapping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.token_swapping import (
    apply_swaps,
    approximate_token_swapping,
    swap_distance_lower_bound,
)
from repro.hardware.topologies import (
    grid_architecture,
    line_architecture,
    ring_architecture,
    tokyo_architecture,
)


def _route_and_check(architecture, current, target):
    swaps = approximate_token_swapping(architecture, current, target)
    for first, second in swaps:
        assert architecture.are_adjacent(first, second)
    assert apply_swaps(current, swaps) == target
    return swaps


class TestBasicInstances:
    def test_identity_needs_no_swaps(self):
        architecture = line_architecture(4)
        mapping = {0: 0, 1: 1, 2: 2}
        assert approximate_token_swapping(architecture, mapping, dict(mapping)) == []

    def test_adjacent_transposition_is_one_swap(self):
        architecture = line_architecture(3)
        swaps = _route_and_check(architecture, {0: 0, 1: 1}, {0: 1, 1: 0})
        assert len(swaps) == 1

    def test_distant_transposition_on_line(self):
        architecture = line_architecture(4)
        swaps = _route_and_check(architecture, {0: 0, 1: 3}, {0: 3, 1: 0})
        # The optimum for swapping tokens at distance 3 is 5 swaps; the
        # 4-approximation may use more but must stay within factor 4.
        assert 5 <= len(swaps) <= 20

    def test_three_cycle_on_ring(self):
        architecture = ring_architecture(3)
        current = {0: 0, 1: 1, 2: 2}
        target = {0: 1, 1: 2, 2: 0}
        swaps = _route_and_check(architecture, current, target)
        assert len(swaps) == 2

    def test_partial_mapping_uses_empty_qubits(self):
        # Only one token placed: it just walks to its destination.
        architecture = line_architecture(5)
        swaps = _route_and_check(architecture, {0: 0}, {0: 4})
        assert len(swaps) == 4

    def test_rejects_mismatched_token_sets(self):
        architecture = line_architecture(3)
        with pytest.raises(ValueError):
            approximate_token_swapping(architecture, {0: 0}, {1: 1})

    def test_rejects_non_injective_mapping(self):
        architecture = line_architecture(3)
        with pytest.raises(ValueError):
            approximate_token_swapping(architecture, {0: 0, 1: 0}, {0: 1, 1: 2})

    def test_rejects_out_of_range_physical(self):
        architecture = line_architecture(3)
        with pytest.raises(ValueError):
            approximate_token_swapping(architecture, {0: 5}, {0: 0})


class TestLowerBound:
    def test_lower_bound_identity(self):
        architecture = line_architecture(4)
        assert swap_distance_lower_bound(architecture, {0: 0}, {0: 0}) == 0

    def test_lower_bound_never_exceeds_achieved(self):
        architecture = grid_architecture(3, 3)
        current = {0: 0, 1: 4, 2: 8}
        target = {0: 8, 1: 0, 2: 4}
        bound = swap_distance_lower_bound(architecture, current, target)
        swaps = _route_and_check(architecture, current, target)
        assert bound <= len(swaps)

    def test_lower_bound_mismatch_rejected(self):
        with pytest.raises(ValueError):
            swap_distance_lower_bound(line_architecture(3), {0: 0}, {1: 0})


class TestApplySwaps:
    def test_apply_single_swap(self):
        assert apply_swaps({0: 0, 1: 1}, [(0, 1)]) == {0: 1, 1: 0}

    def test_apply_swap_with_empty_slot(self):
        assert apply_swaps({0: 0}, [(0, 1), (1, 2)]) == {0: 2}


class TestRandomInstances:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           num_tokens=st.integers(min_value=1, max_value=6))
    def test_random_permutations_on_grid(self, seed, num_tokens):
        import random

        rng = random.Random(seed)
        architecture = grid_architecture(3, 3)
        physical = list(range(architecture.num_qubits))
        sources = rng.sample(physical, num_tokens)
        targets = rng.sample(physical, num_tokens)
        current = {logical: sources[logical] for logical in range(num_tokens)}
        target = {logical: targets[logical] for logical in range(num_tokens)}
        swaps = _route_and_check(architecture, current, target)
        bound = swap_distance_lower_bound(architecture, current, target)
        assert len(swaps) <= max(4 * 2 * bound, 1) + architecture.num_qubits

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_full_permutation_on_tokyo(self, seed):
        import random

        rng = random.Random(seed)
        architecture = tokyo_architecture()
        permutation = list(range(20))
        rng.shuffle(permutation)
        current = {logical: logical for logical in range(20)}
        target = {logical: permutation[logical] for logical in range(20)}
        _route_and_check(architecture, current, target)
