"""Tests for the heuristic baselines: SABRE, TKET-like, and MQT-A*."""

import pytest

from repro.baselines import AStarLayerRouter, SabreRouter, TketLikeRouter
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import cx, h
from repro.circuits.random_circuits import random_circuit
from repro.core import verify_routing
from repro.core.result import RoutingStatus
from repro.hardware.topologies import (
    grid_architecture,
    line_architecture,
    tokyo_architecture,
)

ROUTERS = [SabreRouter, TketLikeRouter, AStarLayerRouter]


@pytest.mark.parametrize("router_class", ROUTERS)
class TestAllHeuristics:
    def test_adjacent_circuit_needs_no_swaps(self, router_class):
        circuit = QuantumCircuit(3, [cx(0, 1), cx(1, 2)])
        result = router_class().route(circuit, line_architecture(3))
        assert result.solved
        assert result.swap_count == 0

    def test_running_example_is_solved(self, router_class, running_example_circuit, line4):
        result = router_class().route(running_example_circuit, line4)
        assert result.solved
        assert result.swap_count >= 1  # one swap is provably required

    def test_random_circuit_verifies(self, router_class):
        circuit = random_circuit(5, 25, seed=21)
        arch = grid_architecture(2, 3)
        result = router_class(verify=False).route(circuit, arch)
        assert result.solved
        verify_routing(circuit, result.routed_circuit, result.initial_mapping, arch)

    def test_single_qubit_gates_preserved(self, router_class):
        circuit = QuantumCircuit(3, [h(0), cx(0, 2), h(1), cx(1, 2)])
        arch = line_architecture(3)
        result = router_class().route(circuit, arch)
        assert result.solved
        assert sum(1 for g in result.routed_circuit if g.name == "h") == 2

    def test_tokyo_sized_circuit(self, router_class):
        circuit = random_circuit(8, 40, seed=3, interaction_bias=0.4)
        result = router_class(time_budget=60).route(circuit, tokyo_architecture())
        assert result.solved

    def test_status_is_feasible_not_optimal(self, router_class, running_example_circuit, line4):
        result = router_class().route(running_example_circuit, line4)
        assert result.status is RoutingStatus.FEASIBLE
        assert not result.optimal

    def test_empty_circuit(self, router_class, line4):
        result = router_class().route(QuantumCircuit(3), line4)
        assert result.solved and result.swap_count == 0


class TestSabreSpecifics:
    def test_deterministic_for_fixed_seed(self):
        circuit = random_circuit(5, 20, seed=2)
        arch = grid_architecture(2, 3)
        first = SabreRouter(seed=5).route(circuit, arch)
        second = SabreRouter(seed=5).route(circuit, arch)
        assert first.swap_count == second.swap_count

    def test_bidirectional_passes_help_or_match(self):
        circuit = random_circuit(6, 40, seed=8, interaction_bias=0.5)
        arch = grid_architecture(2, 3)
        no_passes = SabreRouter(bidirectional_passes=0).route(circuit, arch)
        with_passes = SabreRouter(bidirectional_passes=3).route(circuit, arch)
        assert with_passes.swap_count <= no_passes.swap_count + 4

    def test_invalid_lookahead_rejected(self):
        with pytest.raises(ValueError):
            SabreRouter(lookahead_size=-1)


class TestTketLikeSpecifics:
    def test_invalid_discount_rejected(self):
        with pytest.raises(ValueError):
            TketLikeRouter(window_discount=0.0)

    def test_window_size_zero_still_works(self):
        circuit = random_circuit(4, 15, seed=4)
        result = TketLikeRouter(window_size=0).route(circuit, line_architecture(4))
        assert result.solved


class TestAStarSpecifics:
    def test_invalid_expansion_limit_rejected(self):
        with pytest.raises(ValueError):
            AStarLayerRouter(expansion_limit=0)

    def test_small_expansion_limit_falls_back_but_still_verifies(self):
        circuit = random_circuit(5, 20, seed=9)
        arch = grid_architecture(2, 3)
        result = AStarLayerRouter(expansion_limit=5, verify=False).route(circuit, arch)
        assert result.solved
        verify_routing(circuit, result.routed_circuit, result.initial_mapping, arch)

    def test_layer_search_finds_single_swap(self):
        # A triangle of interactions on a path: the centre qubit can neighbour
        # both others, but the final gate between the two end qubits always
        # needs exactly one swap, which the per-layer A* search should find.
        circuit = QuantumCircuit(3, [cx(0, 1), cx(0, 2), cx(1, 2)])
        result = AStarLayerRouter().route(circuit, line_architecture(3))
        assert result.swap_count == 1
