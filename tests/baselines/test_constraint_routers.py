"""Tests for the constraint-based baselines: TB-OLSQ-like and EX-MQT-like."""

import pytest

from repro.baselines import ExhaustiveOptimalRouter, OlsqStyleRouter
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import cx, h
from repro.circuits.random_circuits import random_circuit
from repro.core import SatMapRouter, verify_routing
from repro.core.result import RoutingStatus
from repro.hardware.topologies import grid_architecture, line_architecture

CONSTRAINT_ROUTERS = [OlsqStyleRouter, ExhaustiveOptimalRouter]


@pytest.mark.parametrize("router_class", CONSTRAINT_ROUTERS)
class TestBothConstraintRouters:
    def test_running_example_optimum(self, router_class, running_example_circuit, line4):
        result = router_class(time_budget=60).route(running_example_circuit, line4)
        assert result.status is RoutingStatus.OPTIMAL
        assert result.swap_count == 1

    def test_zero_swap_circuit(self, router_class):
        circuit = QuantumCircuit(3, [cx(0, 1), cx(1, 2)])
        result = router_class(time_budget=30).route(circuit, line_architecture(3))
        assert result.optimal and result.swap_count == 0

    def test_matches_satmap_optimum(self, router_class):
        circuit = random_circuit(4, 8, seed=31, single_qubit_ratio=0.0)
        arch = grid_architecture(2, 3)
        baseline = router_class(time_budget=60).route(circuit, arch)
        satmap = SatMapRouter(time_budget=60).route(circuit, arch)
        assert baseline.optimal and satmap.optimal
        assert baseline.swap_count == satmap.swap_count

    def test_result_verifies(self, router_class):
        circuit = random_circuit(4, 10, seed=32)
        arch = line_architecture(4)
        result = router_class(time_budget=60, verify=False).route(circuit, arch)
        assert result.solved
        verify_routing(circuit, result.routed_circuit, result.initial_mapping, arch)

    def test_single_qubit_gates_preserved(self, router_class):
        circuit = QuantumCircuit(3, [h(0), cx(0, 2), h(2)])
        result = router_class(time_budget=30).route(circuit, line_architecture(3))
        assert result.solved
        assert sum(1 for g in result.routed_circuit if g.name == "h") == 2

    def test_tiny_budget_reports_timeout_not_wrong_answer(self, router_class):
        circuit = random_circuit(6, 60, seed=33, interaction_bias=0.6)
        arch = grid_architecture(2, 4)
        result = router_class(time_budget=0.05).route(circuit, arch)
        assert result.status in (RoutingStatus.TIMEOUT, RoutingStatus.OPTIMAL)


class TestOlsqSpecifics:
    def test_non_anytime_behaviour(self):
        """Unlike SATMAP, a timeout yields no partial solution at all."""
        circuit = random_circuit(6, 80, seed=40, interaction_bias=0.7)
        arch = grid_architecture(2, 4)
        result = OlsqStyleRouter(time_budget=0.2).route(circuit, arch)
        if result.status is RoutingStatus.TIMEOUT:
            assert result.routed_circuit is None

    def test_bound_cap_respected(self):
        circuit = QuantumCircuit(4, [cx(0, 1), cx(0, 2), cx(3, 2), cx(0, 3)])
        result = OlsqStyleRouter(time_budget=30, max_bound=0).route(
            circuit, line_architecture(4))
        # The optimum needs one swap, so capping the bound at 0 must fail.
        assert result.status is RoutingStatus.TIMEOUT


class TestExhaustiveSpecifics:
    def test_expansion_limit_triggers_timeout(self):
        circuit = random_circuit(6, 40, seed=41, interaction_bias=0.6)
        arch = grid_architecture(2, 4)
        result = ExhaustiveOptimalRouter(time_budget=30, expansion_limit=50).route(
            circuit, arch)
        assert result.status is RoutingStatus.TIMEOUT

    def test_circuit_without_two_qubit_gates(self):
        circuit = QuantumCircuit(3, [h(0), h(1)])
        result = ExhaustiveOptimalRouter(time_budget=10).route(
            circuit, line_architecture(3))
        assert result.solved and result.swap_count == 0

    def test_lazy_placement_reconstruction_is_consistent(self):
        # A circuit whose second gate introduces a new logical qubit after a
        # swap has already happened exercises the preimage reconstruction.
        circuit = QuantumCircuit(4, [cx(0, 1), cx(0, 2), cx(0, 3)], name="lazy")
        arch = line_architecture(4)
        result = ExhaustiveOptimalRouter(time_budget=30, verify=False).route(circuit, arch)
        assert result.optimal
        verify_routing(circuit, result.routed_circuit, result.initial_mapping, arch)
