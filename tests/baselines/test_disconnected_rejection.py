"""Heuristic baselines must reject unreachable pairs, not score the sentinel.

On a disconnected coupling graph the distance matrix stores a finite
sentinel (``num_qubits``) for unreachable pairs.  Before the flat-IR
refactor the heuristics silently folded that sentinel into their scores and
either livelocked or produced garbage; now :class:`RoutedBuilder` raises
:class:`UnroutableGateError` the moment a front-layer gate's operands sit in
different components, and :class:`~repro.api.BaseRouter` surfaces that as an
ERROR result whose notes name the qubits.
"""

import pytest

from repro.baselines.astar import AStarLayerRouter
from repro.baselines.base import RoutedBuilder, UnroutableGateError
from repro.baselines.sabre import SabreRouter
from repro.baselines.tket_like import TketLikeRouter
from repro.baselines.trivial import NaiveShortestPathRouter
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import cx
from repro.core.result import RoutingStatus
from repro.hardware.architecture import Architecture


def split_architecture() -> Architecture:
    """Two disjoint edges: components {0,1} and {2,3}."""
    return Architecture(4, [(0, 1), (2, 3)], name="split")


def triangle_circuit() -> QuantumCircuit:
    """Three pairwise-interacting logicals cannot fit in components of size 2."""
    return QuantumCircuit(3, [cx(0, 1), cx(1, 2), cx(0, 2)], name="triangle")


@pytest.mark.parametrize("router", [
    SabreRouter(time_budget=5.0),
    TketLikeRouter(time_budget=5.0),
    AStarLayerRouter(time_budget=5.0),
    NaiveShortestPathRouter(time_budget=5.0),
], ids=lambda router: router.name)
def test_routers_error_instead_of_scoring_unreachable_pairs(router):
    result = router.route(triangle_circuit(), split_architecture())
    assert result.status is RoutingStatus.ERROR
    assert not result.solved
    assert "unreachable" in result.notes


def test_builder_raises_a_named_error():
    architecture = split_architecture()
    builder = RoutedBuilder(triangle_circuit(), architecture, {0: 0, 1: 1, 2: 2})
    builder.require_reachable(0, 1)  # same component: fine
    with pytest.raises(UnroutableGateError) as excinfo:
        builder.require_reachable(0, 2)
    message = str(excinfo.value)
    assert "unreachable" in message and "disconnected" in message


def test_partial_initial_mapping_is_rejected_loudly():
    """An unmapped logical must raise, not wrap a -1 into the distance tuple."""
    circuit = QuantumCircuit(2, [cx(0, 1)], name="partial")
    architecture = Architecture(4, [(0, 1), (1, 2), (2, 3)], name="line4")
    builder = RoutedBuilder(circuit, architecture, {0: 0})  # qubit 1 unmapped
    with pytest.raises(ValueError, match="not in the initial mapping"):
        builder.require_reachable(0, 1)
    with pytest.raises(ValueError, match="not in the initial mapping"):
        builder.can_execute_pair(0, 1)
    result = SabreRouter(time_budget=5.0,
                         initial_mapping={0: 0}).route(circuit, architecture)
    assert result.status is RoutingStatus.ERROR
    assert "initial mapping" in result.notes


def test_connected_component_still_routes():
    """A circuit confined to one component routes normally on a split graph."""
    architecture = split_architecture()
    circuit = QuantumCircuit(2, [cx(0, 1), cx(0, 1)], name="confined")
    result = SabreRouter(time_budget=5.0).route(circuit, architecture)
    assert result.solved


def test_reachability_api():
    architecture = split_architecture()
    assert architecture.reachable(0, 1)
    assert not architecture.reachable(0, 2)
    assert not architecture.is_connected()
    assert architecture.distance(0, 2) == architecture.unreachable_distance
