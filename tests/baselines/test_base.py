"""Tests for the shared baseline-router infrastructure."""

import pytest

from repro.baselines.base import (
    RoutedBuilder,
    greedy_interaction_mapping,
    identity_mapping,
    interaction_counts,
)
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import cx, h
from repro.hardware.topologies import line_architecture, tokyo_architecture


def circuit() -> QuantumCircuit:
    return QuantumCircuit(3, [h(0), cx(0, 1), cx(0, 2), cx(0, 1)])


class TestMappings:
    def test_identity_mapping(self):
        mapping = identity_mapping(circuit(), line_architecture(4))
        assert mapping == {0: 0, 1: 1, 2: 2}

    def test_identity_mapping_rejects_too_small_architecture(self):
        with pytest.raises(ValueError):
            identity_mapping(circuit(), line_architecture(2))

    def test_interaction_counts(self):
        counts = interaction_counts(circuit())
        assert counts == {(0, 1): 2, (0, 2): 1}

    def test_greedy_mapping_is_injective_and_total(self):
        mapping = greedy_interaction_mapping(circuit(), tokyo_architecture())
        assert sorted(mapping) == [0, 1, 2]
        assert len(set(mapping.values())) == 3

    def test_greedy_mapping_places_partners_adjacent_when_possible(self):
        arch = line_architecture(5)
        mapping = greedy_interaction_mapping(circuit(), arch)
        assert arch.distance(mapping[0], mapping[1]) == 1

    def test_greedy_mapping_prefers_high_degree_for_hub(self):
        # Qubit 0 interacts with everyone; it should not land on a leaf of the line.
        arch = line_architecture(5)
        mapping = greedy_interaction_mapping(circuit(), arch)
        assert arch.degree(mapping[0]) == 2


class TestRoutedBuilder:
    def setup_method(self):
        self.arch = line_architecture(4)
        self.builder = RoutedBuilder(circuit(), self.arch, {0: 0, 1: 1, 2: 2})

    def test_emit_gate_translates_to_physical(self):
        self.builder.emit_gate(cx(0, 1))
        assert self.builder.routed.gates[-1].qubits == (0, 1)

    def test_emit_gate_rejects_non_adjacent(self):
        with pytest.raises(ValueError):
            self.builder.emit_gate(cx(0, 2))

    def test_emit_swap_updates_mapping(self):
        self.builder.emit_swap(1, 2)
        assert self.builder.mapping[1] == 2
        assert self.builder.mapping[2] == 1
        assert self.builder.swap_count == 1

    def test_emit_swap_rejects_non_edge(self):
        with pytest.raises(ValueError):
            self.builder.emit_swap(0, 2)

    def test_swap_with_empty_position(self):
        self.builder.emit_swap(2, 3)  # physical 3 holds no logical qubit
        assert self.builder.mapping[2] == 3
        assert self.builder.logical_at(2) is None

    def test_can_execute(self):
        assert self.builder.can_execute(cx(0, 1))
        assert not self.builder.can_execute(cx(0, 2))
        assert self.builder.can_execute(h(2))

    def test_result_snapshot(self):
        self.builder.emit_gate(cx(0, 1))
        self.builder.emit_swap(1, 2)
        result = self.builder.result("test-router")
        assert result.swap_count == 1
        assert result.initial_mapping == {0: 0, 1: 1, 2: 2}
        assert result.final_mapping[1] == 2
        assert result.router_name == "test-router"
