"""Tests for the naive shortest-path router and the BMT/Enfield-style router."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bmt_like import BmtLikeRouter, embeds_without_swaps, interaction_pairs
from repro.baselines.sabre import SabreRouter
from repro.baselines.trivial import NaiveShortestPathRouter
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import cx, h
from repro.circuits.named_circuits import ghz_circuit, qft_circuit
from repro.circuits.qaoa import maxcut_qaoa_circuit
from repro.circuits.random_circuits import random_circuit
from repro.core.result import RoutingStatus
from repro.core.verifier import verify_routing
from repro.hardware.topologies import (
    full_architecture,
    grid_architecture,
    line_architecture,
    ring_architecture,
    tokyo_architecture,
)


def _circuit(num_qubits, gates):
    circuit = QuantumCircuit(num_qubits)
    circuit.extend(gates)
    return circuit


class TestNaiveRouter:
    def test_already_adjacent_gates_add_nothing(self):
        circuit = _circuit(3, [cx(0, 1), cx(1, 2)])
        result = NaiveShortestPathRouter().route(circuit, line_architecture(3))
        assert result.solved
        assert result.swap_count == 0

    def test_distant_gate_gets_swaps(self):
        circuit = _circuit(3, [cx(0, 2)])
        result = NaiveShortestPathRouter().route(circuit, line_architecture(3))
        assert result.solved
        assert result.swap_count == 1

    def test_routed_circuit_verifies(self):
        circuit = random_circuit(num_qubits=6, num_two_qubit_gates=25, seed=4)
        architecture = grid_architecture(2, 3)
        result = NaiveShortestPathRouter().route(circuit, architecture)
        assert result.solved
        verify_routing(circuit, result.routed_circuit, result.initial_mapping,
                       architecture)

    def test_smart_initial_mapping_never_worse_on_structured_circuit(self):
        circuit = ghz_circuit(6, linear=True)
        architecture = ring_architecture(6)
        plain = NaiveShortestPathRouter().route(circuit, architecture)
        smart = NaiveShortestPathRouter(smart_initial_mapping=True).route(
            circuit, architecture)
        assert smart.swap_count <= plain.swap_count

    def test_single_qubit_gates_pass_through(self):
        circuit = _circuit(2, [h(0), h(1), cx(0, 1)])
        result = NaiveShortestPathRouter().route(circuit, line_architecture(2))
        assert result.solved
        assert len(result.routed_circuit) == 3

    def test_full_connectivity_never_needs_swaps(self):
        circuit = random_circuit(num_qubits=5, num_two_qubit_gates=20, seed=9)
        result = NaiveShortestPathRouter().route(circuit, full_architecture(5))
        assert result.swap_count == 0

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2000))
    def test_random_circuits_always_verify(self, seed):
        circuit = random_circuit(num_qubits=5, num_two_qubit_gates=12, seed=seed)
        architecture = line_architecture(5)
        result = NaiveShortestPathRouter().route(circuit, architecture)
        assert result.solved
        verify_routing(circuit, result.routed_circuit, result.initial_mapping,
                       architecture)


class TestBmtLikeRouter:
    def test_embeddable_circuit_needs_no_swaps(self):
        circuit = ghz_circuit(5, linear=True)
        result = BmtLikeRouter().route(circuit, line_architecture(5))
        assert result.solved
        assert result.swap_count == 0

    def test_routed_circuit_verifies_on_grid(self):
        circuit = random_circuit(num_qubits=6, num_two_qubit_gates=20, seed=11)
        architecture = grid_architecture(2, 3)
        result = BmtLikeRouter().route(circuit, architecture)
        assert result.solved
        verify_routing(circuit, result.routed_circuit, result.initial_mapping,
                       architecture)

    def test_qft_on_line_requires_swaps(self):
        circuit = qft_circuit(5)
        result = BmtLikeRouter().route(circuit, line_architecture(5))
        assert result.solved
        assert result.swap_count > 0

    def test_qaoa_on_tokyo(self):
        circuit = maxcut_qaoa_circuit(num_qubits=8, num_cycles=2, seed=3)
        architecture = tokyo_architecture()
        result = BmtLikeRouter(time_budget=60).route(circuit, architecture)
        assert result.solved
        verify_routing(circuit, result.routed_circuit, result.initial_mapping,
                       architecture)

    def test_not_wildly_worse_than_sabre(self):
        circuit = random_circuit(num_qubits=6, num_two_qubit_gates=30, seed=21)
        architecture = grid_architecture(2, 3)
        bmt = BmtLikeRouter().route(circuit, architecture)
        sabre = SabreRouter().route(circuit, architecture)
        assert bmt.solved and sabre.solved
        assert bmt.swap_count <= max(10, 6 * max(1, sabre.swap_count))

    def test_timeout_reported(self):
        circuit = random_circuit(num_qubits=10, num_two_qubit_gates=200, seed=2)
        result = BmtLikeRouter(time_budget=0.0001).route(circuit, tokyo_architecture())
        assert result.status is RoutingStatus.TIMEOUT

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_random_circuits_always_verify(self, seed):
        circuit = random_circuit(num_qubits=5, num_two_qubit_gates=15, seed=seed)
        architecture = ring_architecture(5)
        result = BmtLikeRouter().route(circuit, architecture)
        assert result.solved
        verify_routing(circuit, result.routed_circuit, result.initial_mapping,
                       architecture)


class TestEmbeddingHelpers:
    def test_interaction_pairs_deduplicated(self):
        circuit = _circuit(3, [cx(0, 1), cx(1, 0), cx(1, 2)])
        assert interaction_pairs(circuit) == {(0, 1), (1, 2)}

    def test_line_circuit_embeds_in_line(self):
        assert embeds_without_swaps(ghz_circuit(5, linear=True), line_architecture(5))

    def test_qft_does_not_embed_in_line(self):
        assert not embeds_without_swaps(qft_circuit(4), line_architecture(4))

    def test_anything_embeds_in_full_graph(self):
        assert embeds_without_swaps(qft_circuit(5), full_architecture(5))

    def test_empty_circuit_embeds(self):
        assert embeds_without_swaps(QuantumCircuit(3), line_architecture(3))
