"""The sharded fleet end to end: real dispatcher, real worker processes.

Everything here runs against a genuine multi-process fleet (via the
``fleet_factory`` fixture): submissions cross two process boundaries
(client -> dispatcher -> shard worker) exactly as in production.
"""

from __future__ import annotations

import os
import signal
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.circuits.random_circuits import random_circuit
from repro.cluster import HashRing
from repro.hardware.devices import named_architectures
from repro.server import RoutingClient, ServerError
from repro.service import BatchRoutingService
from repro.service.jobs import RoutingJob

ARCH = "tokyo6"
ROUTER = "sabre:seed=0"
BUDGET = 5.0


def make_keyer() -> BatchRoutingService:
    """A local replica of the dispatcher's job keyer (same fleet config)."""
    return BatchRoutingService(cache=False, tracer=False, time_budget=BUDGET)


def circuit_for_shard(target: int, shards: int, keyer: BatchRoutingService,
                      router: str = ROUTER):
    """A circuit whose job key consistent-hashes onto ``target``."""
    ring = HashRing(range(shards))
    architecture = named_architectures()[ARCH]
    for seed in range(500):
        circuit = random_circuit(4, 6, seed=seed, name=f"pick_{seed}")
        job = RoutingJob.from_circuit(circuit, architecture, router=router)
        if ring.shard_for(keyer.job_key(job)) == target:
            return circuit
    raise AssertionError(f"no circuit found for shard {target}")  # pragma: no cover


class TestFleetDedup:
    def test_same_job_from_eight_threads_solves_once(self, fleet_factory):
        """Eight clients x four shards, one circuit -> exactly one solve."""
        fleet = fleet_factory(workers=4)
        circuit = random_circuit(4, 10, seed=42, name="fleet_shared")

        def submit_and_wait(index: int):
            client = RoutingClient(port=fleet.port, client_id=f"client-{index}")
            ticket = client.submit(circuit, architecture=ARCH, router=ROUTER)
            result = client.wait(ticket["job_id"], timeout=60)
            return ticket, result

        with ThreadPoolExecutor(max_workers=8) as pool:
            outcomes = list(pool.map(submit_and_wait, range(8)))

        tickets = [ticket for ticket, _ in outcomes]
        assert len({ticket["job_id"] for ticket in tickets}) == 1
        assert len({ticket["shard"] for ticket in tickets}) == 1
        assert all(result.solved for _, result in outcomes)
        swaps = {result.swap_count for _, result in outcomes}
        assert len(swaps) == 1  # everyone saw the one canonical answer

        # Fleet-wide single solve: across ALL shards, exactly one submission
        # was accepted for solving; the other seven were answered by dedup.
        stats = RoutingClient(port=fleet.port).stats()
        gateway_totals = stats["totals"]["gateway"]
        assert gateway_totals["submitted"] == 1
        assert gateway_totals["deduplicated"] == 7

    def test_duplicate_after_completion_is_a_cache_hit(self, fleet_factory):
        fleet = fleet_factory(workers=2)
        client = RoutingClient(port=fleet.port, client_id="first")
        circuit = random_circuit(4, 8, seed=7, name="warm_me")
        ticket = client.submit(circuit, architecture=ARCH, router=ROUTER)
        client.wait(ticket["job_id"], timeout=60)

        again = RoutingClient(port=fleet.port, client_id="second").submit(
            circuit, architecture=ARCH, router=ROUTER)
        assert again["job_id"] == ticket["job_id"]
        assert again["shard"] == ticket["shard"]
        assert again["deduplicated"] is True


class TestShardRouting:
    def test_tickets_report_the_ring_owner(self, fleet_factory):
        """The dispatcher, the worker, and a client-side ring all agree."""
        fleet = fleet_factory(workers=2)
        client = RoutingClient(port=fleet.port, client_id="router")
        keyer = make_keyer()
        architecture = named_architectures()[ARCH]
        ring = HashRing(range(2))
        seen_shards = set()
        for seed in (11, 12, 13, 14, 15, 16):
            circuit = random_circuit(4, 6, seed=seed, name=f"spread_{seed}")
            ticket = client.submit(circuit, architecture=ARCH, router=ROUTER)
            job = RoutingJob.from_circuit(circuit, architecture, router=ROUTER)
            # The returned job id IS the locally computed job key...
            assert ticket["job_id"] == keyer.job_key(job)
            # ...and the reported shard is the ring owner of that key, both
            # by the client's mirror ring and by a from-scratch local one.
            assert ticket["shard"] == ring.shard_for(ticket["job_id"])
            assert ticket["shard"] == client.shard_for(ticket["job_id"])
            seen_shards.add(ticket["shard"])
        assert seen_shards == {0, 1}  # six seeds spread over both shards

    def test_job_listing_merges_shards(self, fleet_factory):
        fleet = fleet_factory(workers=2)
        client = RoutingClient(port=fleet.port, client_id="lister")
        tickets = [client.submit(random_circuit(4, 6, seed=seed),
                                 architecture=ARCH, router=ROUTER)
                   for seed in (21, 22, 23, 24)]
        for ticket in tickets:
            client.wait(ticket["job_id"], timeout=60)
        jobs = client.jobs()
        listed = {job["job_id"]: job["shard"] for job in jobs}
        for ticket in tickets:
            assert listed[ticket["job_id"]] == ticket["shard"]


class TestWorkerRestart:
    def test_killed_worker_restarts_on_same_shard(self, fleet_factory):
        fleet = fleet_factory(workers=2)
        client = RoutingClient(port=fleet.port, client_id="chaos",
                               retry_quota=4)
        keyer = make_keyer()

        # Solve one job on the shard we are about to kill.
        victim_circuit = circuit_for_shard(1, 2, keyer)
        ticket = client.submit(victim_circuit, architecture=ARCH, router=ROUTER)
        assert ticket["shard"] == 1
        client.wait(ticket["job_id"], timeout=60)

        # SIGKILL the shard-1 worker process out from under the fleet.
        topology = client.cluster()
        victim = next(worker for worker
                      in topology["fleet"]["worker_detail"]
                      if worker["shard"] == 1)
        os.kill(victim["pid"], signal.SIGKILL)

        # The health sweep must bring a fresh process up on the SAME shard.
        deadline = time.monotonic() + 30.0
        reborn = None
        while time.monotonic() < deadline:
            workers = {worker["shard"]: worker for worker
                       in client.cluster()["fleet"]["worker_detail"]}
            candidate = workers[1]
            if candidate["alive"] and candidate["restarts"] == 1 \
                    and candidate["pid"] != victim["pid"]:
                reborn = candidate
                break
            time.sleep(0.2)
        assert reborn is not None, "worker was not restarted"

        # Stable assignment: the same circuit still routes to shard 1, and
        # the reborn worker answers it from the shared disk cache instead of
        # re-solving (the old in-memory job record died with the process).
        again = client.submit(victim_circuit, architecture=ARCH, router=ROUTER)
        assert again["shard"] == 1
        assert again["job_id"] == ticket["job_id"]
        result = client.wait(again["job_id"], timeout=60)
        assert result.solved
        assert "cache-hit" in result.notes

        stats = RoutingClient(port=fleet.port).stats()
        assert stats["fleet"]["dispatcher"]["worker_restarts"] == 1

    def test_kill_does_not_fail_other_shards_inflight_jobs(self, fleet_factory):
        fleet = fleet_factory(workers=2)
        client = RoutingClient(port=fleet.port, client_id="survivor",
                               retry_quota=4)
        keyer = make_keyer()

        # A genuinely in-flight job on shard 0: satmap with a real budget.
        slow_router = "satmap"
        slow_circuit = circuit_for_shard(0, 2, keyer, router=slow_router)
        ticket = client.submit(slow_circuit, architecture=ARCH,
                               router=slow_router, time_budget=4.0)
        assert ticket["shard"] == 0

        # Kill shard 1 while shard 0 is still solving.
        victim = next(worker for worker
                      in client.cluster()["fleet"]["worker_detail"]
                      if worker["shard"] == 1)
        os.kill(victim["pid"], signal.SIGKILL)

        # The shard-0 job must complete untouched by its neighbour's death.
        result = client.wait(ticket["job_id"], timeout=60)
        assert result.solved


class TestAggregation:
    def test_stats_and_metrics_merge_all_shards(self, fleet_factory):
        fleet = fleet_factory(workers=2)
        client = RoutingClient(port=fleet.port, client_id="scraper")
        for seed in (31, 32, 33):
            ticket = client.submit(random_circuit(4, 6, seed=seed),
                                   architecture=ARCH, router=ROUTER)
            client.wait(ticket["job_id"], timeout=60)

        stats = client.stats()
        assert stats["fleet"]["workers"] == 2
        assert stats["fleet"]["workers_alive"] == 2
        assert stats["totals"]["gateway"]["submitted"] == 3
        assert stats["totals"]["gateway"]["completed"] == 3
        assert set(stats["shards"]) == {"0", "1"}
        assert stats["fleet"]["dispatcher"]["dispatched"] == 3

        text = client.metrics_text()
        assert "repro_cluster_info{" in text
        assert "repro_cluster_dispatched_total{" in text
        assert 'repro_fleet_submitted_total{shard="0"}' in text
        assert 'repro_fleet_submitted_total{shard="1"}' in text
        assert "repro_cluster_worker_restarts_total 0" in text
        # Prometheus exposition sanity: every sample line parses.
        for line in text.splitlines():
            if line and not line.startswith("#"):
                assert " " in line
                float(line.rsplit(" ", 1)[1])

    def test_trace_is_rerooted_under_dispatch(self, fleet_factory):
        fleet = fleet_factory(workers=2)
        client = RoutingClient(port=fleet.port, client_id="tracer")
        ticket = client.submit(random_circuit(4, 8, seed=51),
                               architecture=ARCH, router=ROUTER)
        client.wait(ticket["job_id"], timeout=60)
        payload = client.trace(ticket["job_id"])
        tree = payload["trace"]
        assert tree["name"] == "dispatch"
        assert tree["attributes"]["shard"] == ticket["shard"]
        assert tree["attributes"]["job"] == ticket["job_id"]
        (job_span,) = tree["children"]
        assert job_span["name"] == "job"
        # The dispatch span must envelop the worker's whole tree.
        assert tree["start"] <= job_span["start"] + 1e-6
        assert (tree["start"] + tree["duration"]
                >= job_span["start"] + job_span["duration"] - 0.05)
        assert "dispatch" in payload["rendered"]


class TestDrainAndErrors:
    def test_drain_fans_out_and_refuses_new_work(self, fleet_factory):
        fleet = fleet_factory(workers=2)
        client = RoutingClient(port=fleet.port, client_id="drainer",
                               retry_quota=0)
        ticket = client.submit(random_circuit(4, 6, seed=61),
                               architecture=ARCH, router=ROUTER)
        client.wait(ticket["job_id"], timeout=60)
        response = client.drain()
        assert response["draining"] is True
        with pytest.raises((ServerError, ConnectionError, OSError)):
            client.submit(random_circuit(4, 6, seed=62),
                          architecture=ARCH, router=ROUTER)
        fleet.stop(timeout=60.0)

    def test_bad_submissions_rejected_at_the_front_door(self, fleet_factory):
        fleet = fleet_factory(workers=2)
        client = RoutingClient(port=fleet.port, client_id="fumbler",
                               retry_quota=0)
        with pytest.raises(ServerError) as excinfo:
            client.submit("OPENQASM 2.0; nonsense", architecture=ARCH)
        assert excinfo.value.status == 400
        with pytest.raises(ServerError) as excinfo:
            client.submit(random_circuit(4, 6, seed=71),
                          architecture="no-such-arch")
        assert excinfo.value.status == 400
        # Nothing malformed ever reached a worker.
        stats = client.stats()
        assert stats["totals"]["gateway"]["bad_requests"] == 0
