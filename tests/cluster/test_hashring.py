"""The consistent-hash ring: determinism, stability, balance, movement."""

from __future__ import annotations

import pytest

from repro.cluster import HashRing


def keys(count: int) -> list[str]:
    # Shaped like real job ids: hex content hashes.
    import hashlib
    return [hashlib.sha256(f"job-{index}".encode()).hexdigest()
            for index in range(count)]


class TestDeterminism:
    def test_same_shards_same_ring(self):
        first = HashRing(range(4))
        second = HashRing([3, 1, 0, 2])  # order must not matter
        for key in keys(200):
            assert first.shard_for(key) == second.shard_for(key)

    def test_assignment_is_stable_across_instances(self):
        ring = HashRing(range(4))
        expected = {key: ring.shard_for(key) for key in keys(100)}
        rebuilt = HashRing(range(4))
        assert {key: rebuilt.shard_for(key) for key in expected} == expected

    def test_replica_count_changes_the_ring(self):
        coarse = HashRing(range(4), replicas=4)
        fine = HashRing(range(4), replicas=256)
        sample = keys(500)
        assert any(coarse.shard_for(key) != fine.shard_for(key)
                   for key in sample)


class TestBalance:
    def test_every_shard_owns_a_fair_share(self):
        ring = HashRing(range(4), replicas=64)
        counts = ring.distribution(keys(4000))
        assert set(counts) == {0, 1, 2, 3}
        for shard, count in counts.items():
            # Fairness within a factor of ~2 of the ideal 1000 per shard.
            assert 400 < count < 2200, (shard, counts)


class TestMembership:
    def test_remove_moves_only_the_lost_shards_keys(self):
        ring = HashRing(range(4))
        sample = keys(1000)
        before = {key: ring.shard_for(key) for key in sample}
        ring.remove(2)
        after = {key: ring.shard_for(key) for key in sample}
        moved = [key for key in sample if before[key] != after[key]]
        # Every moved key belonged to the removed shard; nothing else moved.
        assert all(before[key] == 2 for key in moved)
        assert all(after[key] != 2 for key in sample)
        # ...and roughly 1/4 of the space moved, not half the ring.
        assert len(moved) == sum(1 for key in sample if before[key] == 2)

    def test_add_is_idempotent_and_remove_unknown_is_noop(self):
        ring = HashRing(range(2))
        ring.add(1)
        ring.remove(99)
        assert ring.shards == [0, 1]
        assert len(ring) == 2 and 1 in ring and 99 not in ring

    def test_cannot_empty_the_ring(self):
        ring = HashRing([7])
        with pytest.raises(ValueError):
            ring.remove(7)
        with pytest.raises(ValueError):
            HashRing([])

    def test_single_shard_owns_everything(self):
        ring = HashRing([0])
        assert all(ring.shard_for(key) == 0 for key in keys(50))
