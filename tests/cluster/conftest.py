"""Shared fixtures: a real multi-process fleet on a background thread."""

from __future__ import annotations

import pytest

from repro.cluster import FleetConfig, FleetThread


@pytest.fixture
def fleet_factory(tmp_path):
    """Start dispatcher fleets on free ports; drain them all afterwards.

    Workers default to thread pools (each worker is already its own
    process; nesting process pools inside them would just burn startup
    time in tests) and a short health interval so restart tests are quick.
    """
    handles: list[FleetThread] = []

    def make(**kwargs) -> FleetThread:
        kwargs.setdefault("workers", 2)
        kwargs.setdefault("cache_dir", str(tmp_path / "fleet-cache"))
        kwargs.setdefault("time_budget", 5.0)
        kwargs.setdefault("pool_mode", "thread")
        kwargs.setdefault("pool_workers", 2)
        kwargs.setdefault("health_interval", 0.2)
        handle = FleetThread(FleetConfig(**kwargs)).start()
        handles.append(handle)
        return handle

    yield make
    for handle in handles:
        handle.stop()
