"""Observability under churn: scrapes stay clean while workers die and
restart, fleet counters never regress, and /v1/slo keeps answering."""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.circuits.random_circuits import random_circuit
from repro.obs import check_exposition, parse_exposition
from repro.server import RoutingClient

ARCH = "tokyo6"
ROUTER = "sabre:seed=0"


def counter_samples(text: str) -> dict[tuple, float]:
    """Every ``repro_fleet_*_total`` sample keyed by (name, labels)."""
    samples: dict[tuple, float] = {}
    for family in parse_exposition(text).values():
        for sample in family.samples:
            if (sample.name.startswith("repro_fleet_")
                    and sample.name.endswith("_total")):
                key = (sample.name, tuple(sorted(sample.labels.items())))
                samples[key] = sample.value
    return samples


def kill_shard(client: RoutingClient, shard: int) -> dict:
    victim = next(worker for worker
                  in client.cluster()["fleet"]["worker_detail"]
                  if worker["shard"] == shard)
    os.kill(victim["pid"], signal.SIGKILL)
    return victim


def wait_for_restart(client: RoutingClient, shard: int, old_pid: int,
                     timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        workers = {worker["shard"]: worker for worker
                   in client.cluster()["fleet"]["worker_detail"]}
        candidate = workers[shard]
        if candidate["alive"] and candidate["pid"] != old_pid:
            return
        time.sleep(0.2)
    raise AssertionError(f"shard {shard} was not restarted")  # pragma: no cover


class TestChurnMetrics:
    def test_scrapes_stay_clean_and_counters_monotone_across_a_kill(
            self, fleet_factory):
        fleet = fleet_factory(workers=2)
        client = RoutingClient(port=fleet.port, client_id="churn",
                               retry_quota=4)
        ticket = client.submit(random_circuit(4, 6, seed=11, name="churn"),
                               architecture=ARCH, router=ROUTER)
        client.wait(ticket["job_id"], timeout=60)

        text = client.metrics_text()
        assert check_exposition(text) == []
        seen = counter_samples(text)
        assert any(key[0] == "repro_fleet_requests_total" for key in seen)

        victim = kill_shard(client, 1)

        # Scrape straight through the death/restart window: every exposition
        # must stay well-formed, and no mirrored counter may ever regress --
        # the dispatcher folds the reborn worker's reset counters onto the
        # old totals instead of letting Prometheus see a reset.
        deadline = time.monotonic() + 30.0
        restarted = False
        while time.monotonic() < deadline:
            text = client.metrics_text()
            assert check_exposition(text) == []
            now = counter_samples(text)
            for key, value in now.items():
                if key in seen:
                    assert value >= seen[key], \
                        f"{key} regressed {seen[key]} -> {value}"
            seen.update(now)
            workers = {worker["shard"]: worker for worker
                       in client.cluster()["fleet"]["worker_detail"]}
            if workers[1]["alive"] and workers[1]["pid"] != victim["pid"]:
                restarted = True
                break
            time.sleep(0.2)
        assert restarted, "worker was not restarted"

        # Work after the restart keeps counting upward from the fold.
        again = client.submit(random_circuit(4, 6, seed=12, name="churn2"),
                              architecture=ARCH, router=ROUTER)
        client.wait(again["job_id"], timeout=60)
        final = counter_samples(client.metrics_text())
        for key, value in final.items():
            if key in seen:
                assert value >= seen[key]

    def test_fleet_slo_merges_shards_and_survives_churn(self, fleet_factory):
        fleet = fleet_factory(
            workers=2,
            slos=({"route": "*", "quantile": 0.95, "latency_target": 30.0,
                   "availability_target": 0.9},))
        client = RoutingClient(port=fleet.port, client_id="slo",
                               retry_quota=4)
        for seed in (21, 22):
            ticket = client.submit(random_circuit(4, 6, seed=seed,
                                                  name=f"slo-{seed}"),
                                   architecture=ARCH, router=ROUTER)
            client.wait(ticket["job_id"], timeout=60)

        payload = client.slo()
        assert set(payload["shards"]) == {"0", "1"}
        fleet_status = payload["fleet"]
        assert fleet_status["routes"]["*"]["requests"] == 2
        assert fleet_status["objectives"][0]["latency_target"] == 30.0
        text = client.metrics_text()
        assert 'repro_slo_latency_target_seconds{route="*",quantile="p95"} 30' \
            in text
        assert check_exposition(text) == []

        victim = kill_shard(client, 1)
        # Mid-churn the endpoint still answers: the dead shard reports None
        # and the merged view is built from whoever responded.
        payload = client.slo()
        assert "fleet" in payload
        wait_for_restart(client, 1, victim["pid"])
        assert client.slo()["fleet"] is not None

    def test_restart_is_recorded_in_dispatcher_events(self, fleet_factory):
        fleet = fleet_factory(workers=2)
        client = RoutingClient(port=fleet.port, client_id="events",
                               retry_quota=4)
        victim = kill_shard(client, 0)
        wait_for_restart(client, 0, victim["pid"])
        # The event lands just after the restart completes; poll briefly.
        deadline = time.monotonic() + 10.0
        restart_events: list[dict] = []
        while time.monotonic() < deadline and not restart_events:
            events = client.events(level="warning")["events"]
            restart_events = [e for e in events
                              if e["event"] == "worker-restart"]
            if not restart_events:
                time.sleep(0.1)
        assert restart_events and restart_events[0]["shard"] == 0
        assert client.stats()["fleet"]["events"]["warning"] >= 1


class TestFleetProfile:
    def test_profile_fans_out_to_every_shard(self, fleet_factory):
        fleet = fleet_factory(workers=2)
        client = RoutingClient(port=fleet.port, client_id="prof")
        payload = client.profile(seconds=0.1)
        assert payload["dispatcher"]["samples"] >= 0
        assert set(payload["shards"]) == {"0", "1"}
        for report in payload["shards"].values():
            assert report is not None and "collapsed" in report

    def test_profile_proxies_to_one_shard(self, fleet_factory):
        fleet = fleet_factory(workers=2)
        client = RoutingClient(port=fleet.port, client_id="prof")
        payload = client.profile(seconds=0.1, shard=1)
        assert payload["shard"] == 1
        assert "collapsed_text" in payload

    def test_unknown_shard_404s(self, fleet_factory):
        from repro.server import ServerError

        fleet = fleet_factory(workers=2)
        client = RoutingClient(port=fleet.port, client_id="prof")
        with pytest.raises(ServerError) as excinfo:
            client.profile(seconds=0.1, shard=9)
        assert excinfo.value.status == 404
