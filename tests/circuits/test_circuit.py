"""Tests for the QuantumCircuit container."""

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate, cx, h, swap


def small_circuit() -> QuantumCircuit:
    circuit = QuantumCircuit(3, name="small")
    circuit.extend([h(0), cx(0, 1), h(2), cx(1, 2), cx(0, 1)])
    return circuit


class TestConstruction:
    def test_rejects_zero_qubits(self):
        with pytest.raises(ValueError):
            QuantumCircuit(0)

    def test_rejects_out_of_range_gate(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(ValueError):
            circuit.append(cx(0, 2))

    def test_constructor_validates_gates(self):
        with pytest.raises(ValueError):
            QuantumCircuit(1, [cx(0, 1)])

    def test_len_and_iteration(self):
        circuit = small_circuit()
        assert len(circuit) == 5
        assert [gate.name for gate in circuit] == ["h", "cx", "h", "cx", "cx"]

    def test_indexing(self):
        assert small_circuit()[1].name == "cx"


class TestCounts:
    def test_two_qubit_count(self):
        assert small_circuit().num_two_qubit_gates == 3

    def test_single_qubit_count(self):
        assert small_circuit().num_single_qubit_gates == 2

    def test_swap_count(self):
        circuit = QuantumCircuit(2, [swap(0, 1), cx(0, 1)])
        assert circuit.num_swaps == 1

    def test_interaction_sequence(self):
        assert small_circuit().interaction_sequence() == [(0, 1), (1, 2), (0, 1)]

    def test_used_qubits(self):
        circuit = QuantumCircuit(5, [cx(1, 3)])
        assert circuit.used_qubits() == {1, 3}

    def test_depth_chain(self):
        circuit = QuantumCircuit(2, [cx(0, 1), cx(0, 1), cx(0, 1)])
        assert circuit.depth() == 3

    def test_depth_parallel(self):
        circuit = QuantumCircuit(4, [cx(0, 1), cx(2, 3)])
        assert circuit.depth() == 1

    def test_depth_empty(self):
        assert QuantumCircuit(3).depth() == 0


class TestSlicing:
    def test_slices_cover_all_gates(self):
        circuit = small_circuit()
        slices = circuit.sliced_by_two_qubit_gates(2)
        assert sum(len(s) for s in slices) == len(circuit)

    def test_slice_two_qubit_counts(self):
        circuit = small_circuit()
        slices = circuit.sliced_by_two_qubit_gates(2)
        assert [s.num_two_qubit_gates for s in slices] == [2, 1]

    def test_slice_size_larger_than_circuit(self):
        circuit = small_circuit()
        slices = circuit.sliced_by_two_qubit_gates(100)
        assert len(slices) == 1
        assert len(slices[0]) == len(circuit)

    def test_invalid_slice_size(self):
        with pytest.raises(ValueError):
            small_circuit().sliced_by_two_qubit_gates(0)

    def test_single_qubit_gates_stay_with_following_gate(self):
        circuit = QuantumCircuit(2, [h(0), cx(0, 1), h(1), cx(0, 1)])
        slices = circuit.sliced_by_two_qubit_gates(1)
        assert [gate.name for gate in slices[0]] == ["h", "cx"]
        assert [gate.name for gate in slices[1]] == ["h", "cx"]

    def test_empty_circuit_gives_one_empty_slice(self):
        slices = QuantumCircuit(2).sliced_by_two_qubit_gates(5)
        assert len(slices) == 1 and len(slices[0]) == 0

    def test_slices_preserve_gate_order(self):
        circuit = small_circuit()
        slices = circuit.sliced_by_two_qubit_gates(1)
        flattened = [gate for piece in slices for gate in piece.gates]
        assert flattened == circuit.gates


class TestTransforms:
    def test_repeated(self):
        circuit = QuantumCircuit(2, [cx(0, 1)])
        assert len(circuit.repeated(3)) == 3

    def test_repeated_rejects_zero(self):
        with pytest.raises(ValueError):
            QuantumCircuit(2, [cx(0, 1)]).repeated(0)

    def test_without_single_qubit_gates(self):
        filtered = small_circuit().without_single_qubit_gates()
        assert filtered.num_single_qubit_gates == 0
        assert filtered.num_two_qubit_gates == 3

    def test_copy_is_independent(self):
        circuit = small_circuit()
        copy = circuit.copy()
        copy.append(cx(0, 2))
        assert len(circuit) == 5 and len(copy) == 6

    def test_repr_mentions_counts(self):
        text = repr(small_circuit())
        assert "gates=5" in text and "two_qubit=3" in text
