"""Tests for the OpenQASM 2.0 reader/writer."""

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import cx, h, rz
from repro.circuits.qasm import (
    QasmError,
    circuit_to_qasm,
    load_qasm,
    parse_qasm,
    save_qasm,
)

SIMPLE = """
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
rz(0.25) q[2];
cx q[1],q[2];
measure q[0] -> c[0];
"""

TWO_REGISTERS = """
OPENQASM 2.0;
qreg a[2];
qreg b[2];
cx a[0],b[1];
cx b[0],a[1];
"""

CUSTOM_GATE = """
OPENQASM 2.0;
gate majority a,b,c { cx c,b; cx c,a; ccx a,b,c; }
qreg q[4];
majority q[0],q[1],q[2];
cx q[2],q[3];
"""


class TestParsing:
    def test_qubit_count(self):
        assert parse_qasm(SIMPLE).num_qubits == 3

    def test_gate_names_in_order(self):
        circuit = parse_qasm(SIMPLE)
        assert [gate.name for gate in circuit] == ["h", "cx", "rz", "cx"]

    def test_measure_and_creg_dropped(self):
        circuit = parse_qasm(SIMPLE)
        assert all(gate.name not in ("measure", "creg") for gate in circuit)

    def test_parameters_preserved(self):
        circuit = parse_qasm(SIMPLE)
        assert circuit.gates[2].params == ("0.25",)

    def test_comments_stripped(self):
        circuit = parse_qasm("OPENQASM 2.0;\nqreg q[2];\n// comment\ncx q[0],q[1]; // inline\n")
        assert circuit.num_two_qubit_gates == 1

    def test_two_registers_flattened(self):
        circuit = parse_qasm(TWO_REGISTERS)
        assert circuit.num_qubits == 4
        assert circuit.interaction_sequence() == [(0, 3), (2, 1)]

    def test_custom_gate_expansion(self):
        circuit = parse_qasm(CUSTOM_GATE)
        # majority expands to 2 CX + a decomposed Toffoli (6 CX) + final cx
        assert circuit.num_qubits == 4
        assert circuit.interaction_sequence()[:2] == [(2, 1), (2, 0)]
        assert circuit.num_two_qubit_gates == 2 + 6 + 1

    def test_toffoli_decomposition(self):
        circuit = parse_qasm("OPENQASM 2.0;\nqreg q[3];\nccx q[0],q[1],q[2];\n")
        assert circuit.num_two_qubit_gates == 6

    def test_unknown_gate_rejected(self):
        with pytest.raises(QasmError):
            parse_qasm("OPENQASM 2.0;\nqreg q[2];\nfrobnicate q[0],q[1];\n")

    def test_unknown_register_rejected(self):
        with pytest.raises(QasmError):
            parse_qasm("OPENQASM 2.0;\nqreg q[2];\ncx r[0],q[1];\n")

    def test_out_of_range_index_rejected(self):
        with pytest.raises(QasmError):
            parse_qasm("OPENQASM 2.0;\nqreg q[2];\nh q[5];\n")

    def test_missing_qreg_rejected(self):
        with pytest.raises(QasmError):
            parse_qasm("OPENQASM 2.0;\nh q[0];\n")

    def test_whole_register_application_rejected(self):
        with pytest.raises(QasmError):
            parse_qasm("OPENQASM 2.0;\nqreg q[2];\nh q;\n")

    def test_wrong_arity_rejected(self):
        with pytest.raises(QasmError):
            parse_qasm("OPENQASM 2.0;\nqreg q[2];\ncx q[0];\n")


class TestWriting:
    def test_roundtrip_preserves_structure(self):
        circuit = QuantumCircuit(3, [h(0), cx(0, 1), rz(2, "0.5"), cx(1, 2)], name="rt")
        again = parse_qasm(circuit_to_qasm(circuit))
        assert [gate.name for gate in again] == [gate.name for gate in circuit]
        assert again.interaction_sequence() == circuit.interaction_sequence()

    def test_written_text_contains_header(self):
        text = circuit_to_qasm(QuantumCircuit(2, [cx(0, 1)]))
        assert text.startswith("OPENQASM 2.0;")
        assert "qreg q[2];" in text

    def test_file_roundtrip(self, tmp_path):
        circuit = QuantumCircuit(2, [cx(0, 1), cx(1, 0)], name="disk")
        path = tmp_path / "disk.qasm"
        save_qasm(circuit, path)
        loaded = load_qasm(path)
        assert loaded.name == "disk"
        assert loaded.interaction_sequence() == circuit.interaction_sequence()

    def test_swap_gates_survive_roundtrip(self):
        from repro.circuits.gates import swap

        circuit = QuantumCircuit(2, [swap(0, 1)])
        again = parse_qasm(circuit_to_qasm(circuit))
        assert again.gates[0].name == "swap"
