"""Tests for the plain-text circuit drawer."""

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.drawer import circuit_summary, draw_circuit, gate_label
from repro.circuits.gates import Gate, cx, h, swap
from repro.circuits.named_circuits import ghz_circuit
from repro.circuits.random_circuits import random_circuit


def _circuit(num_qubits, gates):
    circuit = QuantumCircuit(num_qubits)
    circuit.extend(gates)
    return circuit


class TestDrawCircuit:
    def test_one_line_per_qubit(self):
        circuit = _circuit(3, [h(0), cx(0, 1)])
        drawing = draw_circuit(circuit)
        assert len(drawing.splitlines()) == 3

    def test_qubit_labels_present(self):
        drawing = draw_circuit(_circuit(2, [cx(0, 1)]))
        assert drawing.splitlines()[0].startswith("q0:")
        assert drawing.splitlines()[1].startswith("q1:")

    def test_single_qubit_gate_label_shown(self):
        drawing = draw_circuit(_circuit(1, [h(0)]))
        assert "[h]" in drawing

    def test_cx_symbols(self):
        drawing = draw_circuit(_circuit(2, [cx(0, 1)]))
        assert "●" in drawing
        assert "⊕" in drawing

    def test_ascii_mode_avoids_unicode(self):
        drawing = draw_circuit(_circuit(2, [cx(0, 1), swap(0, 1)]), unicode=False)
        assert all(ord(char) < 128 for char in drawing)

    def test_swap_symbols_on_both_qubits(self):
        drawing = draw_circuit(_circuit(2, [swap(0, 1)]))
        lines = drawing.splitlines()
        assert "✕" in lines[0] and "✕" in lines[1]

    def test_truncation_marks_lines(self):
        circuit = _circuit(1, [h(0)] * 10)
        drawing = draw_circuit(circuit, max_columns=3)
        assert all(line.endswith("...") for line in drawing.splitlines())

    def test_parameterised_gate_label(self):
        drawing = draw_circuit(_circuit(1, [Gate("rz", (0,), ("pi/2",))]))
        assert "rz(pi/2)" in drawing

    def test_empty_circuit(self):
        drawing = draw_circuit(QuantumCircuit(2))
        assert len(drawing.splitlines()) == 2

    def test_parallel_gates_share_a_column(self):
        circuit = _circuit(2, [h(0), h(1)])
        drawing = draw_circuit(circuit)
        columns_q0 = drawing.splitlines()[0].count("[h]")
        columns_q1 = drawing.splitlines()[1].count("[h]")
        assert columns_q0 == columns_q1 == 1

    def test_non_cx_two_qubit_gate_labelled_on_both_wires(self):
        drawing = draw_circuit(_circuit(2, [Gate("rzz", (0, 1), ("g",))]))
        assert drawing.count("[rzz(g)]") == 2

    def test_ghz_draws_without_error(self):
        drawing = draw_circuit(ghz_circuit(5))
        assert len(drawing.splitlines()) == 5

    def test_random_circuit_draws_without_error(self):
        circuit = random_circuit(num_qubits=5, num_two_qubit_gates=20, seed=1)
        assert draw_circuit(circuit, unicode=False)


class TestGateLabel:
    def test_plain_gate(self):
        assert gate_label(h(0)) == "h"

    def test_parameterised_gate(self):
        assert gate_label(Gate("cp", (0, 1), ("pi/4",))) == "cp(pi/4)"


class TestCircuitSummary:
    def test_summary_mentions_counts(self):
        circuit = _circuit(3, [h(0), cx(0, 1), cx(1, 2)])
        summary = circuit_summary(circuit)
        assert "3 qubits" in summary
        assert "3 gates" in summary
        assert "2 two-qubit" in summary
        assert "cx: 2" in summary
