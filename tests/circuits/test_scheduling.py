"""Tests for gate scheduling and timing analysis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate, cx, h, swap
from repro.circuits.random_circuits import random_circuit
from repro.circuits.scheduling import (
    GateDurations,
    alap_schedule,
    asap_schedule,
    routing_latency_overhead,
    schedule_length,
)


def _circuit(num_qubits, gates):
    circuit = QuantumCircuit(num_qubits)
    circuit.extend(gates)
    return circuit


class TestGateDurations:
    def test_known_gate_durations(self):
        durations = GateDurations()
        assert durations.of(cx(0, 1)) == 300.0
        assert durations.of(swap(0, 1)) == 900.0
        assert durations.of(h(0)) == 35.0

    def test_unknown_two_qubit_gate_defaults_to_cx(self):
        durations = GateDurations()
        assert durations.of(Gate("rzz", (0, 1), ("x",))) == 300.0

    def test_override(self):
        durations = GateDurations({"cx": 100.0})
        assert durations.of(cx(0, 1)) == 100.0


class TestAsapSchedule:
    def test_sequential_gates_on_one_qubit(self):
        circuit = _circuit(1, [h(0), h(0), h(0)])
        schedule = asap_schedule(circuit)
        assert schedule.makespan == pytest.approx(3 * 35.0)
        starts = [entry.start for entry in schedule.entries]
        assert starts == sorted(starts)

    def test_parallel_gates_overlap(self):
        circuit = _circuit(2, [h(0), h(1)])
        schedule = asap_schedule(circuit)
        assert schedule.makespan == pytest.approx(35.0)

    def test_two_qubit_gate_waits_for_both_qubits(self):
        circuit = _circuit(2, [h(0), cx(0, 1)])
        schedule = asap_schedule(circuit)
        assert schedule.entries[1].start == pytest.approx(35.0)

    def test_empty_circuit(self):
        assert asap_schedule(QuantumCircuit(2)).makespan == 0.0

    def test_no_overlap_on_shared_qubits(self):
        circuit = random_circuit(num_qubits=4, num_two_qubit_gates=12, seed=3)
        schedule = asap_schedule(circuit)
        for first in schedule.entries:
            for second in schedule.entries:
                if first.index >= second.index:
                    continue
                if set(first.gate.qubits) & set(second.gate.qubits):
                    assert first.finish <= second.start + 1e-9


class TestAlapSchedule:
    def test_same_makespan_as_asap(self):
        circuit = random_circuit(num_qubits=4, num_two_qubit_gates=10, seed=7)
        assert alap_schedule(circuit).makespan == pytest.approx(
            asap_schedule(circuit).makespan)

    def test_gates_not_earlier_than_asap(self):
        circuit = random_circuit(num_qubits=4, num_two_qubit_gates=10, seed=11)
        asap = asap_schedule(circuit)
        alap = alap_schedule(circuit)
        for early, late in zip(asap.entries, alap.entries):
            assert late.start >= early.start - 1e-9

    def test_last_gate_pinned_to_makespan(self):
        circuit = _circuit(2, [h(0), cx(0, 1)])
        alap = alap_schedule(circuit)
        assert alap.entries[-1].finish == pytest.approx(alap.makespan)


class TestScheduleAnalysis:
    def test_critical_path_covers_longest_chain(self):
        circuit = _circuit(3, [cx(0, 1), cx(1, 2), cx(0, 1), h(2)])
        schedule = asap_schedule(circuit)
        path = schedule.critical_path()
        assert path
        path_length = sum(schedule.entries[i].duration for i in path)
        assert path_length == pytest.approx(schedule.makespan)

    def test_parallelism_profile_length(self):
        circuit = random_circuit(num_qubits=4, num_two_qubit_gates=8, seed=2)
        profile = asap_schedule(circuit).parallelism_profile(resolution=10)
        assert len(profile) == 10
        assert all(value >= 0 for value in profile)

    def test_parallelism_profile_empty_circuit(self):
        assert asap_schedule(QuantumCircuit(2)).parallelism_profile() == [0] * 20

    def test_qubit_busy_and_idle_time(self):
        circuit = _circuit(2, [h(0), cx(0, 1), h(0)])
        schedule = asap_schedule(circuit)
        assert schedule.qubit_busy_time(0) == pytest.approx(35.0 + 300.0 + 35.0)
        assert schedule.idle_time(0) == pytest.approx(0.0)
        # Qubit 1 waits for the Hadamard on qubit 0 before its CX... but its
        # first gate IS the CX, so idle time within its own span is zero.
        assert schedule.idle_time(1) == pytest.approx(0.0)

    def test_idle_time_positive_when_waiting(self):
        circuit = _circuit(2, [cx(0, 1), h(0), h(0), cx(0, 1)])
        schedule = asap_schedule(circuit)
        assert schedule.idle_time(1) == pytest.approx(70.0)


class TestRoutingOverhead:
    def test_identical_circuits_have_unit_overhead(self):
        circuit = random_circuit(num_qubits=3, num_two_qubit_gates=6, seed=5)
        assert routing_latency_overhead(circuit, circuit) == pytest.approx(1.0)

    def test_added_swaps_increase_overhead(self):
        original = _circuit(3, [cx(0, 1), cx(1, 2)])
        routed = _circuit(3, [cx(0, 1), swap(0, 1), cx(1, 2)])
        assert routing_latency_overhead(original, routed) > 1.0

    def test_empty_original(self):
        empty = QuantumCircuit(2)
        assert routing_latency_overhead(empty, empty) == 1.0

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=300))
    def test_overhead_at_least_one_when_gates_added(self, seed):
        circuit = random_circuit(num_qubits=4, num_two_qubit_gates=8, seed=seed)
        routed = circuit.copy()
        routed.append(swap(0, 1))
        assert routing_latency_overhead(circuit, routed) >= 1.0

    def test_schedule_length_helper(self):
        circuit = _circuit(2, [cx(0, 1)])
        assert schedule_length(circuit) == pytest.approx(300.0)
