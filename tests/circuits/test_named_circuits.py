"""Tests for the structured circuit generators."""

import pytest

from repro.circuits.named_circuits import (
    bernstein_vazirani_circuit,
    cuccaro_adder_circuit,
    ghz_circuit,
    hidden_shift_circuit,
    ising_model_circuit,
    qft_circuit,
)
from repro.core import SatMapRouter, verify_routing
from repro.hardware.topologies import line_architecture


class TestQft:
    def test_gate_count(self):
        # n Hadamards plus n(n-1)/2 controlled phases.
        circuit = qft_circuit(5)
        assert circuit.num_single_qubit_gates == 5
        assert circuit.num_two_qubit_gates == 10

    def test_all_pairs_interact(self):
        circuit = qft_circuit(4)
        pairs = {frozenset(gate.qubits) for gate in circuit.two_qubit_gates}
        assert len(pairs) == 6

    def test_swap_option(self):
        assert qft_circuit(4, include_swaps=True).num_swaps == 2
        assert qft_circuit(5, include_swaps=True).num_swaps == 2
        assert qft_circuit(4, include_swaps=False).num_swaps == 0

    def test_rejects_zero_qubits(self):
        with pytest.raises(ValueError):
            qft_circuit(0)

    def test_angles_are_halving(self):
        circuit = qft_circuit(3)
        angles = [gate.params[0] for gate in circuit.two_qubit_gates]
        assert angles == ["pi/2", "pi/4", "pi/2"]


class TestGhz:
    def test_linear_chain_structure(self):
        circuit = ghz_circuit(4, linear=True)
        assert [gate.qubits for gate in circuit.two_qubit_gates] == [(0, 1), (1, 2), (2, 3)]

    def test_star_structure(self):
        circuit = ghz_circuit(4, linear=False)
        assert all(gate.qubits[0] == 0 for gate in circuit.two_qubit_gates)

    def test_linear_ghz_needs_no_swaps_on_line(self):
        circuit = ghz_circuit(4, linear=True)
        result = SatMapRouter(time_budget=20).route(circuit, line_architecture(4))
        assert result.solved
        assert result.swap_count == 0

    def test_rejects_single_qubit(self):
        with pytest.raises(ValueError):
            ghz_circuit(1)


class TestBernsteinVazirani:
    def test_cnot_count_equals_ones_in_secret(self):
        circuit = bernstein_vazirani_circuit("1011")
        assert circuit.num_two_qubit_gates == 3

    def test_all_cnots_target_ancilla(self):
        circuit = bernstein_vazirani_circuit("111")
        ancilla = 3
        assert all(gate.qubits[1] == ancilla for gate in circuit.two_qubit_gates)

    def test_zero_secret_has_no_two_qubit_gates(self):
        assert bernstein_vazirani_circuit("000").num_two_qubit_gates == 0

    def test_rejects_bad_secret(self):
        with pytest.raises(ValueError):
            bernstein_vazirani_circuit("10a")
        with pytest.raises(ValueError):
            bernstein_vazirani_circuit("")


class TestCuccaroAdder:
    @pytest.mark.parametrize("bits", [1, 2, 3])
    def test_qubit_count(self, bits):
        assert cuccaro_adder_circuit(bits).num_qubits == 2 * bits + 2

    def test_only_one_and_two_qubit_gates(self):
        circuit = cuccaro_adder_circuit(2)
        assert all(len(gate.qubits) <= 2 for gate in circuit)

    def test_gate_count_grows_linearly(self):
        small = len(cuccaro_adder_circuit(2))
        large = len(cuccaro_adder_circuit(4))
        assert large > small
        # The MAJ/UMA ladder adds a constant number of gates per bit.
        assert (large - small) % 2 == 0

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            cuccaro_adder_circuit(0)

    def test_routes_on_line(self):
        circuit = cuccaro_adder_circuit(1)
        architecture = line_architecture(circuit.num_qubits)
        result = SatMapRouter(slice_size=10, time_budget=30).route(circuit, architecture)
        assert result.solved
        verify_routing(circuit, result.routed_circuit, result.initial_mapping,
                       architecture)


class TestIsingModel:
    def test_interactions_are_nearest_neighbour(self):
        circuit = ising_model_circuit(6, trotter_steps=2)
        for gate in circuit.two_qubit_gates:
            assert abs(gate.qubits[0] - gate.qubits[1]) == 1

    def test_gate_count(self):
        circuit = ising_model_circuit(5, trotter_steps=3)
        assert circuit.num_two_qubit_gates == 3 * 4
        assert circuit.num_single_qubit_gates == 3 * 5

    def test_needs_no_swaps_on_line(self):
        circuit = ising_model_circuit(5, trotter_steps=1)
        result = SatMapRouter(time_budget=20).route(circuit, line_architecture(5))
        assert result.solved
        assert result.swap_count == 0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ising_model_circuit(1)
        with pytest.raises(ValueError):
            ising_model_circuit(4, trotter_steps=0)


class TestHiddenShift:
    def test_interaction_graph_is_matching(self):
        circuit = hidden_shift_circuit("101010")
        pairs = [gate.qubits for gate in circuit.two_qubit_gates]
        used = [qubit for pair in pairs for qubit in pair]
        assert len(used) == len(set(used))

    def test_shift_controls_x_gates(self):
        circuit = hidden_shift_circuit("101")
        x_gates = [gate for gate in circuit if gate.name == "x"]
        assert len(x_gates) == 4  # two layers of two X gates

    def test_rejects_bad_shift(self):
        with pytest.raises(ValueError):
            hidden_shift_circuit("12")
