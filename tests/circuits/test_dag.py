"""Tests for the circuit dependency DAG."""

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import CircuitDag, topological_layers
from repro.circuits.gates import cx, h


def sample() -> QuantumCircuit:
    return QuantumCircuit(4, [cx(0, 1), cx(2, 3), cx(1, 2), h(0), cx(0, 1)])


class TestDagStructure:
    def test_node_count(self):
        assert len(CircuitDag(sample())) == 5

    def test_independent_gates_have_no_edge(self):
        dag = CircuitDag(sample())
        assert 0 not in dag.nodes[1].predecessors
        assert 1 not in dag.nodes[0].successors

    def test_dependency_through_shared_qubit(self):
        dag = CircuitDag(sample())
        # gate 2 = cx(1,2) depends on gate 0 (qubit 1) and gate 1 (qubit 2)
        assert dag.nodes[2].predecessors == {0, 1}

    def test_chain_on_same_qubit(self):
        dag = CircuitDag(QuantumCircuit(2, [cx(0, 1), cx(0, 1), cx(0, 1)]))
        assert dag.nodes[1].predecessors == {0}
        assert dag.nodes[2].predecessors == {1}

    def test_single_qubit_gate_dependencies(self):
        dag = CircuitDag(sample())
        # h(0) depends on cx(0,1); cx(0,1) (last) depends on h(0) and cx(1,2)
        assert dag.nodes[3].predecessors == {0}
        assert dag.nodes[4].predecessors == {3, 2}


class TestFrontLayer:
    def test_initial_front_layer(self):
        dag = CircuitDag(sample())
        assert {node.index for node in dag.front_layer(set())} == {0, 1}

    def test_front_layer_advances(self):
        dag = CircuitDag(sample())
        front = dag.front_layer({0, 1})
        assert {node.index for node in front} == {2, 3}

    def test_front_layer_empty_when_done(self):
        dag = CircuitDag(sample())
        assert dag.front_layer({0, 1, 2, 3, 4}) == []

    def test_successors_of(self):
        dag = CircuitDag(sample())
        assert [node.index for node in dag.successors_of(0)] == [2, 3]


class TestLayers:
    def test_layer_partition(self):
        layers = CircuitDag(sample()).layers()
        assert [sorted(node.index for node in layer) for layer in layers] == [
            [0, 1], [2, 3], [4]]

    def test_layers_respect_dependencies(self):
        dag = CircuitDag(sample())
        level = {}
        for depth, layer in enumerate(dag.layers()):
            for node in layer:
                level[node.index] = depth
        for node in dag.nodes:
            for predecessor in node.predecessors:
                assert level[predecessor] < level[node.index]

    def test_topological_layers_returns_gates(self):
        layers = topological_layers(sample())
        assert [len(layer) for layer in layers] == [2, 2, 1]
        assert layers[2][0].name == "cx"

    def test_two_qubit_layers_skip_single_qubit_gates(self):
        layers = CircuitDag(sample()).two_qubit_layers()
        total = sum(len(layer) for layer in layers)
        assert total == 4  # only the two-qubit gates

    def test_empty_circuit(self):
        assert CircuitDag(QuantumCircuit(2)).layers() == []
