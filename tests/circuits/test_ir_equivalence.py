"""Property tests: the flat-IR facade behaves exactly like the legacy model.

The legacy ``QuantumCircuit`` was a list of ``Gate`` dataclasses rescanned
per property, and ``CircuitDag`` allocated a node with two Python sets per
gate.  These tests pin the facade to that semantics: every cached statistic,
sliced view, QASM round-trip, and CSR-derived dependency structure is
compared against a straightforward reference recomputation over the
materialised gate list, on randomized circuits.
"""

import pickle
import random

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import CircuitDag
from repro.circuits.gates import Gate, cx, h, swap
from repro.circuits.ir import CircuitIR
from repro.circuits.qasm import circuit_to_qasm, parse_qasm
from repro.circuits.random_circuits import random_circuit


def random_mixed_circuit(seed: int, num_qubits: int = 6,
                         num_two_qubit: int = 30) -> QuantumCircuit:
    circuit = random_circuit(num_qubits=num_qubits,
                             num_two_qubit_gates=num_two_qubit, seed=seed)
    # Sprinkle SWAPs and parametrised gates so every column is exercised.
    rng = random.Random(seed + 1)
    for _ in range(5):
        first = rng.randrange(num_qubits)
        second = (first + 1 + rng.randrange(num_qubits - 1)) % num_qubits
        circuit.append(swap(first, second))
        circuit.append(Gate("rz", (first,), (str(rng.random()),)))
    return circuit


SEEDS = range(6)


class TestCachedStatistics:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_counts_match_gate_list_rescans(self, seed):
        circuit = random_mixed_circuit(seed)
        gates = circuit.gates
        assert circuit.num_two_qubit_gates == sum(1 for g in gates if g.is_two_qubit)
        assert circuit.num_single_qubit_gates == sum(1 for g in gates if g.is_single_qubit)
        assert circuit.num_swaps == sum(1 for g in gates if g.name == "swap")
        assert circuit.two_qubit_gates == [g for g in gates if g.is_two_qubit]
        assert circuit.interaction_sequence() == [
            tuple(g.qubits) for g in gates if g.is_two_qubit]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_counts_stay_valid_after_append(self, seed):
        circuit = random_mixed_circuit(seed)
        before = circuit.num_two_qubit_gates
        _ = circuit.gates  # populate the lazy cache, then invalidate it
        circuit.append(cx(0, 1))
        circuit.append(h(2))
        assert circuit.num_two_qubit_gates == before + 1
        assert circuit.gates[-1] == h(2)
        assert circuit.gates[-2] == cx(0, 1)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_depth_and_used_qubits(self, seed):
        circuit = random_mixed_circuit(seed)
        frontier = [0] * circuit.num_qubits
        used = set()
        for gate in circuit.gates:
            level = max(frontier[q] for q in gate.qubits) + 1
            for qubit in gate.qubits:
                frontier[qubit] = level
            used.update(gate.qubits)
        assert circuit.depth() == max(frontier, default=0)
        assert circuit.used_qubits() == used


class TestSliceViews:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("slice_size", [1, 3, 7, 100])
    def test_views_flatten_to_the_original(self, seed, slice_size):
        circuit = random_mixed_circuit(seed)
        slices = circuit.sliced_by_two_qubit_gates(slice_size)
        flattened = [gate for piece in slices for gate in piece.gates]
        assert flattened == circuit.gates
        for piece in slices[:-1]:
            assert piece.num_two_qubit_gates == slice_size
        assert slices[-1].num_two_qubit_gates <= slice_size

    @pytest.mark.parametrize("seed", SEEDS)
    def test_views_share_arrays_with_the_base(self, seed):
        circuit = random_mixed_circuit(seed)
        slices = circuit.sliced_by_two_qubit_gates(4)
        assert all(piece.ir.qa is circuit.ir.qa for piece in slices)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_view_statistics_match_materialised_copy(self, seed):
        circuit = random_mixed_circuit(seed)
        for piece in circuit.sliced_by_two_qubit_gates(5):
            copy = piece.copy()
            assert len(piece) == len(copy)
            assert piece.num_two_qubit_gates == copy.num_two_qubit_gates
            assert piece.num_swaps == copy.num_swaps
            assert piece.interaction_sequence() == copy.interaction_sequence()
            assert piece.gates == copy.gates

    def test_appending_to_a_view_compacts_it_first(self):
        circuit = QuantumCircuit(3, [h(0), cx(0, 1), cx(1, 2)])
        view = circuit.sliced_by_two_qubit_gates(1)[0]
        view.append(cx(0, 2))
        assert [g.name for g in view.gates] == ["h", "cx", "cx"]
        assert len(circuit) == 3  # the base circuit is untouched

    @pytest.mark.parametrize("seed", SEEDS)
    def test_repeat_equals_gate_level_repeat(self, seed):
        circuit = random_mixed_circuit(seed, num_two_qubit=10)
        repeated = circuit.repeated(3)
        assert repeated.gates == circuit.gates * 3
        assert repeated.num_two_qubit_gates == 3 * circuit.num_two_qubit_gates


class TestQasmRoundTrip:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_round_trip_preserves_gates(self, seed):
        circuit = random_mixed_circuit(seed)
        back = parse_qasm(circuit_to_qasm(circuit), name=circuit.name)
        assert back.gates == circuit.gates
        assert back.num_qubits == circuit.num_qubits

    @pytest.mark.parametrize("seed", SEEDS)
    def test_round_trip_of_a_slice_view(self, seed):
        circuit = random_mixed_circuit(seed)
        view = circuit.sliced_by_two_qubit_gates(7)[0]
        back = parse_qasm(circuit_to_qasm(view))
        assert back.gates == view.gates


class TestDagEquivalence:
    @staticmethod
    def reference_links(circuit):
        """The legacy DAG construction: dict/set based, last-writer per qubit."""
        predecessors = [set() for _ in circuit.gates]
        successors = [set() for _ in circuit.gates]
        last_on_qubit = {}
        for index, gate in enumerate(circuit.gates):
            for qubit in gate.qubits:
                if qubit in last_on_qubit:
                    predecessors[index].add(last_on_qubit[qubit])
                    successors[last_on_qubit[qubit]].add(index)
                last_on_qubit[qubit] = index
        return predecessors, successors

    @pytest.mark.parametrize("seed", SEEDS)
    def test_csr_matches_reference_links(self, seed):
        circuit = random_mixed_circuit(seed)
        dag = CircuitDag(circuit)
        predecessors, successors = self.reference_links(circuit)
        for index in range(len(dag)):
            assert set(dag.predecessor_range(index)) == predecessors[index]
            assert set(dag.successor_range(index)) == successors[index]
            assert dag.nodes[index].predecessors == predecessors[index]
            assert dag.nodes[index].successors == successors[index]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_layers_match_reference_levels(self, seed):
        circuit = random_mixed_circuit(seed)
        dag = CircuitDag(circuit)
        predecessors, _ = self.reference_links(circuit)
        level = {}
        for index in range(len(dag)):
            level[index] = max((level[p] + 1 for p in predecessors[index]),
                               default=0)
        for depth, layer in enumerate(dag.layer_indices()):
            for index in layer:
                assert level[index] == depth
        assert sum(len(layer) for layer in dag.layer_indices()) == len(dag)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_dag_of_a_view_ignores_the_rest_of_the_base(self, seed):
        circuit = random_mixed_circuit(seed)
        view = circuit.sliced_by_two_qubit_gates(6)[1]
        from_view = CircuitDag(view)
        from_copy = CircuitDag(view.copy())
        assert len(from_view) == len(from_copy)
        for index in range(len(from_view)):
            assert (list(from_view.predecessor_range(index))
                    == list(from_copy.predecessor_range(index)))
            assert (list(from_view.successor_range(index))
                    == list(from_copy.successor_range(index)))


class TestRouterParity:
    @pytest.mark.parametrize("seed", range(3))
    def test_routers_treat_views_and_copies_identically(self, seed):
        from repro.baselines.sabre import SabreRouter
        from repro.baselines.tket_like import TketLikeRouter
        from repro.baselines.trivial import NaiveShortestPathRouter
        from repro.hardware.topologies import grid_architecture

        architecture = grid_architecture(2, 3)
        circuit = random_circuit(num_qubits=5, num_two_qubit_gates=15, seed=seed)
        view = circuit.sliced_by_two_qubit_gates(circuit.num_two_qubit_gates)[0]
        reparsed = parse_qasm(circuit_to_qasm(circuit), name=circuit.name)
        for router in (SabreRouter(seed=seed), TketLikeRouter(),
                       NaiveShortestPathRouter()):
            results = [router.route(variant, architecture)
                       for variant in (circuit, view, reparsed)]
            assert all(r.solved for r in results)
            baseline = results[0]
            for other in results[1:]:
                assert other.swap_count == baseline.swap_count
                assert other.initial_mapping == baseline.initial_mapping
                assert other.routed_circuit.gates == baseline.routed_circuit.gates


class TestPickleAndIntern:
    @pytest.mark.parametrize("seed", range(3))
    def test_circuits_round_trip_through_pickle(self, seed):
        circuit = random_mixed_circuit(seed)
        clone = pickle.loads(pickle.dumps(circuit))
        assert clone.gates == circuit.gates
        assert clone.num_qubits == circuit.num_qubits
        assert clone.name == circuit.name

    def test_views_pickle_as_their_window(self):
        circuit = random_mixed_circuit(0)
        view = circuit.sliced_by_two_qubit_gates(5)[1]
        clone = pickle.loads(pickle.dumps(view))
        assert clone.gates == view.gates
        assert len(clone) == len(view)

    def test_unknown_opcodes_are_interned_on_the_fly(self):
        ir = CircuitIR()
        ir.append("totally_custom_gate", (0, 1))
        name, qubits, params = ir.gate(0)
        assert name == "totally_custom_gate"
        assert qubits == (0, 1)
        assert params == ()


class TestFacadeValidation:
    def test_append_op_rejects_bad_arity_and_repeats(self):
        circuit = QuantumCircuit(3)
        with pytest.raises(ValueError):
            circuit.append_op("ccx", (0, 1, 2))
        with pytest.raises(ValueError):
            circuit.append_op("cx", (1, 1))
        with pytest.raises(ValueError):
            circuit.append_op("h", ())
        assert len(circuit) == 0

    def test_self_extension_with_params(self):
        circuit = QuantumCircuit(2, name="selfext")
        circuit.append_op("rz", (0,), ("0.5",))
        circuit.append_op("cx", (0, 1))
        reference = circuit.gates
        circuit.extend(circuit)
        assert circuit.gates == reference * 2

    def test_extension_with_own_slice_view(self):
        circuit = QuantumCircuit(2, name="viewext")
        circuit.append_op("rz", (0,), ("0.25",))
        circuit.append_op("cx", (0, 1))
        circuit.append_op("cx", (0, 1))
        view = circuit.sliced_by_two_qubit_gates(1)[0]
        expected = circuit.gates + view.gates
        circuit.extend(view)
        assert circuit.gates == expected

    def test_gates_list_mutation_never_touches_the_circuit(self):
        circuit = QuantumCircuit(2, [cx(0, 1)])
        aliased = circuit.gates
        aliased.append(h(0))
        aliased[0] = h(1)
        assert circuit.gates == [cx(0, 1)]
        assert len(circuit) == 1
