"""Tests for the random-circuit, QAOA, and benchmark-library generators."""

import pytest

from repro.circuits.library import (
    NAMED_BENCHMARK_SIZES,
    benchmark_suite,
    get_benchmark,
    named_benchmarks,
)
from repro.circuits.qaoa import (
    maxcut_qaoa_circuit,
    qaoa_repeated_block,
    random_regular_graph,
)
from repro.circuits.random_circuits import layered_random_circuit, random_circuit


class TestRandomCircuit:
    def test_exact_two_qubit_gate_count(self):
        circuit = random_circuit(5, 37, seed=1)
        assert circuit.num_two_qubit_gates == 37

    def test_deterministic_for_same_seed(self):
        first = random_circuit(4, 20, seed=7)
        second = random_circuit(4, 20, seed=7)
        assert first.interaction_sequence() == second.interaction_sequence()

    def test_different_seeds_differ(self):
        first = random_circuit(4, 20, seed=1)
        second = random_circuit(4, 20, seed=2)
        assert first.interaction_sequence() != second.interaction_sequence()

    def test_qubits_in_range(self):
        circuit = random_circuit(6, 50, seed=3)
        assert all(0 <= q < 6 for gate in circuit for q in gate.qubits)

    def test_interaction_bias_concentrates_on_hubs(self):
        biased = random_circuit(8, 200, seed=5, interaction_bias=1.0)
        unbiased = random_circuit(8, 200, seed=5, interaction_bias=0.0)
        hub_qubits = {0, 1}

        def hub_fraction(circuit):
            pairs = circuit.interaction_sequence()
            return sum(1 for a, b in pairs if a in hub_qubits or b in hub_qubits) / len(pairs)

        assert hub_fraction(biased) > hub_fraction(unbiased)

    def test_rejects_single_qubit(self):
        with pytest.raises(ValueError):
            random_circuit(1, 5)

    def test_rejects_bad_bias(self):
        with pytest.raises(ValueError):
            random_circuit(3, 5, interaction_bias=1.5)

    def test_zero_gates(self):
        assert random_circuit(3, 0, seed=1).num_two_qubit_gates == 0

    def test_layered_circuit_layers(self):
        circuit = layered_random_circuit(6, 4, seed=1)
        assert circuit.num_two_qubit_gates == 3 * 4
        assert circuit.depth() == 4


class TestRegularGraphs:
    def test_three_regular_graph_degrees(self):
        edges = random_regular_graph(8, degree=3, seed=2)
        degree = {node: 0 for node in range(8)}
        for first, second in edges:
            degree[first] += 1
            degree[second] += 1
        assert all(value == 3 for value in degree.values())

    def test_no_self_loops_or_duplicates(self):
        edges = random_regular_graph(10, degree=3, seed=4)
        assert all(a != b for a, b in edges)
        assert len(set(edges)) == len(edges)

    def test_odd_total_degree_rejected(self):
        with pytest.raises(ValueError):
            random_regular_graph(5, degree=3)

    def test_too_few_nodes_rejected(self):
        with pytest.raises(ValueError):
            random_regular_graph(3, degree=3)

    def test_deterministic(self):
        assert random_regular_graph(8, seed=9) == random_regular_graph(8, seed=9)


class TestQaoa:
    def test_circuit_structure(self):
        circuit = maxcut_qaoa_circuit(6, 2, seed=1)
        # 6 Hadamards + 2 * (9 RZZ + 6 RX)
        assert circuit.num_qubits == 6
        assert circuit.num_two_qubit_gates == 2 * 9
        assert sum(1 for g in circuit if g.name == "h") == 6
        assert sum(1 for g in circuit if g.name == "rx") == 12

    def test_cycles_repeat_same_interactions(self):
        circuit = maxcut_qaoa_circuit(6, 3, seed=1)
        pairs = circuit.interaction_sequence()
        per_cycle = len(pairs) // 3
        assert pairs[:per_cycle] == pairs[per_cycle:2 * per_cycle]

    def test_block_matches_full_circuit_interactions(self):
        block = qaoa_repeated_block(6, seed=1)
        full = maxcut_qaoa_circuit(6, 1, seed=1)
        assert block.interaction_sequence() == full.interaction_sequence()

    def test_rejects_zero_cycles(self):
        with pytest.raises(ValueError):
            maxcut_qaoa_circuit(6, 0)


class TestBenchmarkLibrary:
    def test_named_benchmark_sizes_match_spec(self):
        bench = get_benchmark("miller_11")
        assert bench.num_qubits == 3
        assert bench.num_two_qubit_gates == 23
        assert bench.circuit.num_two_qubit_gates == 23

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_benchmark("definitely_not_a_benchmark")

    def test_named_benchmarks_filter(self):
        small = named_benchmarks(max_two_qubit_gates=20)
        assert all(bench.num_two_qubit_gates <= 20 for bench in small)
        assert small  # not empty

    def test_all_named_sizes_are_positive(self):
        assert all(qubits >= 3 and gates > 0
                   for _, qubits, gates in NAMED_BENCHMARK_SIZES)

    def test_suite_size_and_spread(self):
        suite = benchmark_suite(count=20, max_two_qubit_gates=500)
        assert len(suite) == 20
        sizes = [bench.num_two_qubit_gates for bench in suite]
        assert min(sizes) == 5 and max(sizes) == 500
        assert sorted(sizes) == sizes  # log-spread is monotone in index

    def test_suite_default_envelope_matches_paper(self):
        suite = benchmark_suite(count=5)
        assert suite[0].num_two_qubit_gates == 5
        assert suite[-1].num_two_qubit_gates == 200_000
        assert suite[0].num_qubits == 3 and suite[-1].num_qubits == 16

    def test_suite_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            benchmark_suite(count=0)
        with pytest.raises(ValueError):
            benchmark_suite(min_two_qubit_gates=10, max_two_qubit_gates=5)

    def test_benchmarks_are_deterministic(self):
        assert (get_benchmark("3_17_13").circuit.interaction_sequence()
                == get_benchmark("3_17_13").circuit.interaction_sequence())
