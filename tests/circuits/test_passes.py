"""Tests for the circuit transformation passes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate, cx, h, swap
from repro.circuits.passes import (
    PassManager,
    cancel_adjacent_inverses,
    decompose_swaps,
    default_cleanup_pipeline,
    merge_rotations,
    mirror_cnots_for_directed_coupling,
    remove_trivial_gates,
)
from repro.circuits.random_circuits import random_circuit


def _circuit(num_qubits, gates):
    circuit = QuantumCircuit(num_qubits)
    circuit.extend(gates)
    return circuit


def _final_permutation(circuit):
    """Track how SWAP/CX-only circuits permute qubit contents (SWAPs only)."""
    positions = list(range(circuit.num_qubits))
    for gate in circuit:
        if gate.name == "swap":
            a, b = gate.qubits
            positions[a], positions[b] = positions[b], positions[a]
    return positions


class TestDecomposeSwaps:
    def test_swap_becomes_three_cnots(self):
        circuit = _circuit(2, [swap(0, 1)])
        decomposed = decompose_swaps(circuit)
        assert [g.name for g in decomposed] == ["cx", "cx", "cx"]
        assert decomposed[0].qubits == (0, 1)
        assert decomposed[1].qubits == (1, 0)
        assert decomposed[2].qubits == (0, 1)

    def test_non_swap_gates_untouched(self):
        circuit = _circuit(3, [h(0), cx(0, 1), swap(1, 2), cx(0, 2)])
        decomposed = decompose_swaps(circuit)
        assert decomposed.num_swaps == 0
        assert len(decomposed) == len(circuit) + 2

    def test_cost_accounting_matches_paper(self):
        # k SWAPs must contribute exactly 3k CNOTs.
        circuit = _circuit(4, [swap(0, 1), swap(2, 3), swap(1, 2)])
        decomposed = decompose_swaps(circuit)
        assert decomposed.num_two_qubit_gates == 9

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_gate_count_invariant(self, seed):
        circuit = random_circuit(num_qubits=4, num_two_qubit_gates=10, seed=seed)
        decomposed = decompose_swaps(circuit)
        swaps = circuit.num_swaps
        assert len(decomposed) == len(circuit) + 2 * swaps


class TestRemoveTrivialGates:
    def test_identity_and_barrier_removed(self):
        circuit = _circuit(2, [Gate("id", (0,)), h(0), Gate("barrier", (0,)), cx(0, 1)])
        cleaned = remove_trivial_gates(circuit)
        assert [g.name for g in cleaned] == ["h", "cx"]

    def test_zero_angle_rotation_removed(self):
        circuit = _circuit(1, [Gate("rz", (0,), ("0.0",)), Gate("rz", (0,), ("1.5",))])
        cleaned = remove_trivial_gates(circuit)
        assert len(cleaned) == 1
        assert cleaned[0].params == ("1.5",)

    def test_symbolic_angle_kept(self):
        circuit = _circuit(1, [Gate("rz", (0,), ("theta",))])
        assert len(remove_trivial_gates(circuit)) == 1


class TestCancelAdjacentInverses:
    def test_double_hadamard_cancels(self):
        circuit = _circuit(1, [h(0), h(0)])
        assert len(cancel_adjacent_inverses(circuit)) == 0

    def test_double_cnot_cancels(self):
        circuit = _circuit(2, [cx(0, 1), cx(0, 1)])
        assert len(cancel_adjacent_inverses(circuit)) == 0

    def test_reversed_cnot_does_not_cancel(self):
        circuit = _circuit(2, [cx(0, 1), cx(1, 0)])
        assert len(cancel_adjacent_inverses(circuit)) == 2

    def test_intervening_gate_blocks_cancellation(self):
        circuit = _circuit(2, [cx(0, 1), h(0), cx(0, 1)])
        assert len(cancel_adjacent_inverses(circuit)) == 3

    def test_intervening_gate_on_other_qubit_allows_cancellation(self):
        circuit = _circuit(3, [cx(0, 1), h(2), cx(0, 1)])
        cancelled = cancel_adjacent_inverses(circuit)
        assert [g.name for g in cancelled] == ["h"]

    def test_quadruple_hadamard_cancels_completely(self):
        circuit = _circuit(1, [h(0)] * 4)
        assert len(cancel_adjacent_inverses(circuit)) == 0

    def test_odd_chain_leaves_one(self):
        circuit = _circuit(1, [h(0)] * 5)
        assert len(cancel_adjacent_inverses(circuit)) == 1

    def test_non_self_inverse_gate_untouched(self):
        circuit = _circuit(1, [Gate("t", (0,)), Gate("t", (0,))])
        assert len(cancel_adjacent_inverses(circuit)) == 2

    def test_double_swap_cancels_and_preserves_permutation(self):
        circuit = _circuit(3, [swap(0, 1), swap(0, 1), swap(1, 2)])
        cancelled = cancel_adjacent_inverses(circuit)
        assert _final_permutation(cancelled) == _final_permutation(circuit)
        assert cancelled.num_swaps == 1


class TestMergeRotations:
    def test_numeric_angles_summed(self):
        circuit = _circuit(1, [Gate("rz", (0,), ("0.5",)), Gate("rz", (0,), ("0.25",))])
        merged = merge_rotations(circuit)
        assert len(merged) == 1
        assert float(merged[0].params[0]) == pytest.approx(0.75)

    def test_symbolic_angles_joined(self):
        circuit = _circuit(1, [Gate("rz", (0,), ("a",)), Gate("rz", (0,), ("b",))])
        merged = merge_rotations(circuit)
        assert merged[0].params[0] == "(a)+(b)"

    def test_cancelling_angles_drop_gate(self):
        circuit = _circuit(1, [Gate("rz", (0,), ("0.5",)), Gate("rz", (0,), ("-0.5",))])
        assert len(merge_rotations(circuit)) == 0

    def test_different_axes_not_merged(self):
        circuit = _circuit(1, [Gate("rz", (0,), ("1",)), Gate("rx", (0,), ("1",))])
        assert len(merge_rotations(circuit)) == 2

    def test_two_qubit_gate_flushes_pending(self):
        circuit = _circuit(2, [Gate("rz", (0,), ("1",)), cx(0, 1), Gate("rz", (0,), ("1",))])
        merged = merge_rotations(circuit)
        assert len(merged) == 3
        # Order must be preserved: rotation, cx, rotation.
        assert [g.name for g in merged] == ["rz", "cx", "rz"]

    def test_rotations_on_distinct_qubits_not_merged(self):
        circuit = _circuit(2, [Gate("rz", (0,), ("1",)), Gate("rz", (1,), ("1",))])
        assert len(merge_rotations(circuit)) == 2


class TestMirrorCnots:
    def test_supported_direction_unchanged(self):
        circuit = _circuit(2, [cx(0, 1)])
        mirrored = mirror_cnots_for_directed_coupling(circuit, [(0, 1)])
        assert [g.name for g in mirrored] == ["cx"]

    def test_reversed_direction_wrapped_in_hadamards(self):
        circuit = _circuit(2, [cx(1, 0)])
        mirrored = mirror_cnots_for_directed_coupling(circuit, [(0, 1)])
        assert [g.name for g in mirrored] == ["h", "h", "cx", "h", "h"]
        assert mirrored[2].qubits == (0, 1)

    def test_unsupported_edge_raises(self):
        circuit = _circuit(3, [cx(0, 2)])
        with pytest.raises(ValueError):
            mirror_cnots_for_directed_coupling(circuit, [(0, 1), (1, 2)])

    def test_other_gates_pass_through(self):
        circuit = _circuit(2, [h(0), Gate("cz", (0, 1))])
        mirrored = mirror_cnots_for_directed_coupling(circuit, [])
        assert len(mirrored) == 2


class TestPassManager:
    def test_history_records_each_pass(self):
        manager = PassManager().add(remove_trivial_gates).add(cancel_adjacent_inverses)
        circuit = _circuit(2, [Gate("id", (0,)), h(0), h(0), cx(0, 1)])
        result = manager.run(circuit)
        assert len(manager.history) == 2
        assert manager.history[0].name == "remove_trivial_gates"
        assert manager.total_removed == 3
        assert len(result) == 1

    def test_default_cleanup_pipeline_is_idempotent(self):
        circuit = _circuit(2, [h(0), h(0), cx(0, 1), Gate("rz", (1,), ("1",)),
                               Gate("rz", (1,), ("-1",))])
        pipeline = default_cleanup_pipeline()
        once = pipeline.run(circuit)
        twice = default_cleanup_pipeline().run(once)
        assert [g.name for g in once] == [g.name for g in twice]

    def test_empty_manager_returns_circuit_unchanged(self):
        circuit = _circuit(2, [cx(0, 1)])
        assert PassManager().run(circuit) is circuit

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_cleanup_never_increases_two_qubit_count(self, seed):
        circuit = random_circuit(num_qubits=5, num_two_qubit_gates=15, seed=seed,
                                 single_qubit_ratio=1.0)
        cleaned = default_cleanup_pipeline().run(circuit)
        assert cleaned.num_two_qubit_gates <= circuit.num_two_qubit_gates
