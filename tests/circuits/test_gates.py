"""Tests for the gate dataclass and constructors."""

import pytest

from repro.circuits.gates import Gate, GateKind, cx, h, rz, rzz, swap


class TestGate:
    def test_single_qubit_kind(self):
        assert h(0).kind is GateKind.SINGLE_QUBIT

    def test_two_qubit_kind(self):
        assert cx(0, 1).kind is GateKind.TWO_QUBIT

    def test_swap_kind(self):
        assert swap(0, 1).kind is GateKind.SWAP

    def test_is_two_qubit_flags(self):
        assert cx(0, 1).is_two_qubit
        assert not cx(0, 1).is_single_qubit
        assert h(2).is_single_qubit

    def test_rejects_empty_qubits(self):
        with pytest.raises(ValueError):
            Gate("x", ())

    def test_rejects_repeated_qubit(self):
        with pytest.raises(ValueError):
            Gate("cx", (1, 1))

    def test_rejects_three_qubit_gates(self):
        with pytest.raises(ValueError):
            Gate("ccx", (0, 1, 2))

    def test_params_preserved(self):
        gate = rz(0, 0.5)
        assert gate.params == ("0.5",)

    def test_rzz_constructor(self):
        gate = rzz(0, 1, "gamma")
        assert gate.name == "rzz"
        assert gate.qubits == (0, 1)
        assert gate.params == ("gamma",)

    def test_gate_is_hashable_and_frozen(self):
        gate = cx(0, 1)
        assert gate in {gate}
        with pytest.raises(AttributeError):
            gate.name = "cz"

    def test_remapped(self):
        gate = cx(0, 1).remapped({0: 5, 1: 3})
        assert gate.qubits == (5, 3)
        assert gate.name == "cx"

    def test_remapped_preserves_params(self):
        gate = rzz(0, 1, "g").remapped({0: 2, 1: 0})
        assert gate.params == ("g",)
