"""Optimality cross-checks: SATMAP vs the exhaustive optimal search.

These are the most important correctness tests in the repository: they confirm
Theorem 1 empirically by comparing the MaxSAT optimum against an independent
exhaustive optimal router on a range of small instances, and they check that
the relaxations never beat the true optimum (which would indicate a soundness
bug) while staying within a reasonable factor of it.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.exact_mqt import ExhaustiveOptimalRouter
from repro.circuits.random_circuits import random_circuit
from repro.core import SatMapRouter
from repro.hardware.topologies import (
    grid_architecture,
    line_architecture,
    ring_architecture,
)


ARCHITECTURES = {
    "line4": line_architecture(4),
    "line5": line_architecture(5),
    "ring5": ring_architecture(5),
    "grid2x3": grid_architecture(2, 3),
}


class TestAgainstExhaustiveOptimum:
    @pytest.mark.parametrize("arch_name", list(ARCHITECTURES))
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_satmap_matches_exhaustive_optimum(self, arch_name, seed):
        architecture = ARCHITECTURES[arch_name]
        circuit = random_circuit(4, 8, seed=seed, single_qubit_ratio=0.0)
        satmap = SatMapRouter(time_budget=60).route(circuit, architecture)
        exact = ExhaustiveOptimalRouter(time_budget=60).route(circuit, architecture)
        assert satmap.solved and exact.solved
        assert satmap.optimal and exact.optimal
        assert satmap.swap_count == exact.swap_count

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_satmap_never_beats_or_loses_to_exhaustive(self, seed):
        architecture = line_architecture(4)
        circuit = random_circuit(4, 6, seed=seed, single_qubit_ratio=0.0)
        satmap = SatMapRouter(time_budget=60).route(circuit, architecture)
        exact = ExhaustiveOptimalRouter(time_budget=60).route(circuit, architecture)
        if satmap.optimal and exact.solved:
            # Soundness: the MaxSAT optimum can never beat the true optimum.
            assert satmap.swap_count >= exact.swap_count
            if satmap.swap_count != exact.swap_count:
                # The default encoding offers one SWAP slot per transition, so
                # its optimum may legitimately exceed the true optimum when a
                # transition needs several SWAPs (e.g. seed 367 needs two).
                # Granting diameter-many slots makes the encoding complete, at
                # which point the optima must coincide.
                escalated = SatMapRouter(
                    time_budget=60,
                    swaps_per_gate=architecture.diameter()).route(circuit,
                                                                  architecture)
                # These 4-qubit/6-gate instances solve well within the
                # budget; requiring optimality keeps the check non-vacuous.
                assert escalated.optimal
                assert escalated.swap_count == exact.swap_count

    @pytest.mark.parametrize("seed", [5, 6])
    def test_relaxations_never_beat_the_optimum(self, seed):
        architecture = grid_architecture(2, 3)
        circuit = random_circuit(5, 12, seed=seed, single_qubit_ratio=0.0)
        optimal = SatMapRouter(time_budget=60).route(circuit, architecture)
        sliced = SatMapRouter(slice_size=4, time_budget=60).route(circuit, architecture)
        assert optimal.solved and sliced.solved
        assert sliced.swap_count >= optimal.swap_count

    def test_heuristics_never_beat_the_optimum(self):
        from repro.baselines import SabreRouter, TketLikeRouter

        architecture = line_architecture(5)
        circuit = random_circuit(5, 10, seed=17, single_qubit_ratio=0.0)
        optimal = SatMapRouter(time_budget=60).route(circuit, architecture)
        assert optimal.optimal
        for router in (SabreRouter(), TketLikeRouter()):
            heuristic = router.route(circuit, architecture)
            assert heuristic.solved
            assert heuristic.swap_count >= optimal.swap_count
