"""Tests for the MaxSAT encoding of QMR (Fig. 5)."""

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import cx, h
from repro.core.encoder import EncodingOptions, QmrEncoder
from repro.core.variables import NOOP
from repro.hardware.topologies import (
    full_architecture,
    line_architecture,
    tokyo_architecture,
)
from repro.maxsat import MaxSatSolver, MaxSatStatus


def encode(circuit, architecture, **options):
    return QmrEncoder(architecture, EncodingOptions(**options)).encode(circuit)


def two_cx_circuit() -> QuantumCircuit:
    return QuantumCircuit(3, [cx(0, 1), cx(1, 2)])


class TestOptions:
    def test_rejects_zero_swaps_per_gate(self):
        with pytest.raises(ValueError):
            EncodingOptions(swaps_per_gate=0)

    def test_rejects_bad_leading_slots(self):
        with pytest.raises(ValueError):
            EncodingOptions(leading_slots=0)

    def test_rejects_small_commander_threshold(self):
        with pytest.raises(ValueError):
            EncodingOptions(commander_threshold=2)


class TestStepConstruction:
    def test_one_step_per_two_qubit_gate(self):
        encoding = encode(two_cx_circuit(), line_architecture(3))
        assert encoding.num_steps == 2
        assert encoding.step_of_gate == [0, 1]

    def test_single_qubit_gates_do_not_create_steps(self):
        circuit = QuantumCircuit(3, [h(0), cx(0, 1), h(2), cx(1, 2)])
        encoding = encode(circuit, line_architecture(3))
        assert encoding.num_steps == 2

    def test_consecutive_identical_pairs_collapse(self):
        circuit = QuantumCircuit(2, [cx(0, 1), cx(1, 0), cx(0, 1)])
        encoding = encode(circuit, line_architecture(2))
        assert encoding.num_steps == 1
        assert encoding.step_of_gate == [0, 0, 0]

    def test_collapse_can_be_disabled(self):
        circuit = QuantumCircuit(2, [cx(0, 1), cx(0, 1)])
        encoding = encode(circuit, line_architecture(2), collapse_repeated_pairs=False)
        assert encoding.num_steps == 2

    def test_circuit_without_two_qubit_gates(self):
        circuit = QuantumCircuit(3, [h(0), h(1)])
        encoding = encode(circuit, line_architecture(3))
        assert encoding.num_steps == 0
        assert encoding.num_variables > 0  # the free initial map is still encoded

    def test_too_many_logical_qubits_rejected(self):
        circuit = QuantumCircuit(5, [cx(0, 4)])
        with pytest.raises(ValueError):
            encode(circuit, line_architecture(3))


class TestEncodingSize:
    def test_swap_slots_count(self):
        encoding = encode(two_cx_circuit(), line_architecture(3))
        # No leading slot by default: one slot between the two steps.
        assert len(encoding.swap_slots) == 1

    def test_leading_slot_adds_one(self):
        encoding = encode(two_cx_circuit(), line_architecture(3),
                          leading_swap_slot=True)
        assert len(encoding.swap_slots) == 2

    def test_cyclic_adds_trailing_slot(self):
        encoding = encode(two_cx_circuit(), line_architecture(3), cyclic=True)
        assert (encoding.num_steps, 0) in encoding.swap_slots

    def test_soft_clause_per_slot(self):
        encoding = encode(two_cx_circuit(), line_architecture(3))
        assert encoding.num_soft_clauses == len(encoding.swap_slots)

    def test_clause_count_scales_linearly_in_gates(self):
        circuit_small = QuantumCircuit(4, [cx(i % 4, (i + 1) % 4) for i in range(5)])
        circuit_large = QuantumCircuit(4, [cx(i % 4, (i + 1) % 4) for i in range(10)])
        arch = line_architecture(6)
        small = encode(circuit_small, arch)
        large = encode(circuit_large, arch)
        assert large.num_hard_clauses < 2.5 * small.num_hard_clauses

    def test_multiple_swap_slots_per_gate(self):
        encoding = encode(two_cx_circuit(), line_architecture(3), swaps_per_gate=2)
        assert len(encoding.swap_slots) == 2  # two slots for the single transition

    def test_map_variables_exist_for_all_steps(self):
        encoding = encode(two_cx_circuit(), line_architecture(3))
        for step in range(encoding.num_steps):
            for logical in range(3):
                for physical in range(3):
                    assert (logical, physical, step) in encoding.registry.map_vars


class TestEncodingSemantics:
    def solve(self, encoding):
        return MaxSatSolver().solve(encoding.builder, time_budget=30)

    def test_adjacent_gate_needs_no_swap(self):
        encoding = encode(two_cx_circuit(), line_architecture(3))
        result = self.solve(encoding)
        assert result.is_optimal and result.cost == 0

    def test_full_connectivity_never_needs_swaps(self):
        circuit = QuantumCircuit(4, [cx(0, 1), cx(0, 2), cx(3, 2), cx(0, 3), cx(1, 3)])
        encoding = encode(circuit, full_architecture(4))
        result = self.solve(encoding)
        assert result.is_optimal and result.cost == 0

    def test_running_example_needs_one_swap(self):
        circuit = QuantumCircuit(4, [cx(0, 1), cx(0, 2), cx(3, 2), cx(0, 3)])
        encoding = encode(circuit, line_architecture(4))
        result = self.solve(encoding)
        assert result.is_optimal and result.cost == 1

    def test_fixed_initial_mapping_is_respected(self):
        circuit = QuantumCircuit(3, [cx(0, 2)])
        # Pin 0 -> 0 and 2 -> 2 on a line: they are distance 2 apart, and with
        # no leading swap slot the gate cannot be executed.
        encoding = encode(circuit, line_architecture(3),
                          fixed_initial_mapping={0: 0, 1: 1, 2: 2})
        result = self.solve(encoding)
        assert result.status is MaxSatStatus.UNSATISFIABLE

    def test_fixed_initial_mapping_with_leading_slot(self):
        circuit = QuantumCircuit(3, [cx(0, 2)])
        encoding = encode(circuit, line_architecture(3),
                          fixed_initial_mapping={0: 0, 1: 1, 2: 2},
                          leading_swap_slot=True)
        result = self.solve(encoding)
        assert result.is_optimal and result.cost == 1

    def test_unsolvable_with_one_slot_needs_more(self):
        circuit = QuantumCircuit(4, [cx(0, 3)])
        # Pin the qubits three hops apart; one leading swap is not enough.
        encoding = encode(circuit, line_architecture(4),
                          fixed_initial_mapping={0: 0, 1: 1, 2: 2, 3: 3},
                          leading_swap_slot=True, leading_slots=1)
        assert self.solve(encoding).status is MaxSatStatus.UNSATISFIABLE
        encoding = encode(circuit, line_architecture(4),
                          fixed_initial_mapping={0: 0, 1: 1, 2: 2, 3: 3},
                          leading_swap_slot=True, leading_slots=2)
        result = self.solve(encoding)
        assert result.is_optimal and result.cost == 2

    def test_cyclic_closure_costs_more(self):
        circuit = QuantumCircuit(4, [cx(0, 1), cx(0, 2), cx(3, 2), cx(0, 3)])
        arch = line_architecture(4)
        plain = self.solve(encode(circuit, arch))
        cyclic = self.solve(encode(circuit, arch, cyclic=True))
        assert cyclic.is_optimal
        assert cyclic.cost >= plain.cost

    def test_noop_variable_exists_per_slot(self):
        encoding = encode(two_cx_circuit(), line_architecture(3))
        for step, slot in encoding.swap_slots:
            assert (NOOP, step, slot) in encoding.registry.swap_vars


class TestNoiseAwareEncoding:
    def test_weighted_soft_clauses(self):
        from repro.hardware.noise import NoiseModel

        arch = line_architecture(3)
        noise = NoiseModel.uniform(arch, two_qubit_error=0.02)
        encoding = encode(two_cx_circuit(), arch, noise_model=noise)
        assert encoding.builder.is_weighted()
        assert encoding.num_soft_clauses > len(encoding.swap_slots)
