"""Tests for the cyclic relaxation (Section VI) and the noise-aware objective (Q6)."""

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate, cx
from repro.circuits.qaoa import maxcut_qaoa_circuit, qaoa_repeated_block
from repro.core import NoiseAwareSatMapRouter, SatMapRouter, route_cyclic, verify_routing
from repro.core.cyclic import reset_swap_sequence
from repro.core.result import RoutingStatus
from repro.hardware.noise import NoiseModel
from repro.hardware.topologies import grid_architecture, line_architecture, ring_architecture


class TestResetSwapSequence:
    def test_identity_needs_no_swaps(self):
        arch = line_architecture(3)
        mapping = {0: 0, 1: 1, 2: 2}
        assert reset_swap_sequence(mapping, dict(mapping), arch) == []

    def test_single_transposition(self):
        arch = line_architecture(3)
        initial = {0: 0, 1: 1, 2: 2}
        final = {0: 1, 1: 0, 2: 2}
        swaps = reset_swap_sequence(initial, final, arch)
        assert swaps == [(0, 1)]

    def test_reset_restores_mapping(self):
        arch = grid_architecture(2, 3)
        initial = {0: 0, 1: 1, 2: 2, 3: 3}
        final = {0: 4, 1: 2, 2: 0, 3: 5}
        swaps = reset_swap_sequence(initial, final, arch)
        current = dict(final)
        for a, b in swaps:
            assert arch.are_adjacent(a, b)
            moved = {}
            for logical, physical in current.items():
                if physical == a:
                    moved[logical] = b
                elif physical == b:
                    moved[logical] = a
            current.update(moved)
        assert current == initial


class TestCyclicRouting:
    def test_block_stitches_into_full_circuit(self):
        block = QuantumCircuit(4, [cx(0, 1), cx(0, 2), cx(3, 2), cx(0, 3)], name="blk")
        arch = line_architecture(4)
        result = route_cyclic(block, cycles=3, architecture=arch,
                              router=SatMapRouter(time_budget=60))
        assert result.solved
        assert result.final_mapping == result.initial_mapping

    def test_swap_count_scales_with_cycles(self):
        block = QuantumCircuit(4, [cx(0, 1), cx(0, 2), cx(3, 2), cx(0, 3)], name="blk")
        arch = line_architecture(4)
        two = route_cyclic(block, 2, arch, router=SatMapRouter(time_budget=60))
        four = route_cyclic(block, 4, arch, router=SatMapRouter(time_budget=60))
        assert four.swap_count == 2 * two.swap_count

    def test_routed_full_circuit_verifies(self):
        block = qaoa_repeated_block(4, degree=3, seed=2)
        arch = ring_architecture(4)
        result = route_cyclic(block, cycles=3, architecture=arch,
                              router=SatMapRouter(time_budget=60))
        assert result.solved
        full = QuantumCircuit(4, name="full")
        for _ in range(3):
            full.extend(block.gates)
        verify_routing(full, result.routed_circuit, result.initial_mapping, arch)

    def test_prelude_gates_are_included(self):
        block = qaoa_repeated_block(4, degree=3, seed=2)
        prelude = QuantumCircuit(4)
        for qubit in range(4):
            prelude.append(Gate("h", (qubit,)))
        arch = ring_architecture(4)
        result = route_cyclic(block, cycles=2, architecture=arch,
                              router=SatMapRouter(time_budget=60), prelude=prelude)
        assert result.solved
        assert sum(1 for g in result.routed_circuit if g.name == "h") == 4

    def test_prelude_with_two_qubit_gates_rejected(self):
        block = QuantumCircuit(2, [cx(0, 1)])
        prelude = QuantumCircuit(2, [cx(0, 1)])
        with pytest.raises(ValueError):
            route_cyclic(block, 2, line_architecture(2),
                         router=SatMapRouter(time_budget=10), prelude=prelude)

    def test_rejects_zero_cycles(self):
        block = QuantumCircuit(2, [cx(0, 1)])
        with pytest.raises(ValueError):
            route_cyclic(block, 0, line_architecture(2))

    def test_router_name_gets_cyc_prefix(self):
        block = QuantumCircuit(2, [cx(0, 1)])
        result = route_cyclic(block, 2, line_architecture(2),
                              router=SatMapRouter(time_budget=10))
        assert result.router_name.startswith("CYC-")

    def test_cyclic_matches_qaoa_circuit_semantics(self):
        """Routing the block cyclically must verify against the generator's circuit."""
        num_qubits, cycles, seed = 4, 2, 7
        block = qaoa_repeated_block(num_qubits, seed=seed)
        prelude = QuantumCircuit(num_qubits)
        for qubit in range(num_qubits):
            prelude.append(Gate("h", (qubit,)))
        arch = grid_architecture(2, 2)
        result = route_cyclic(block, cycles, arch,
                              router=SatMapRouter(time_budget=60), prelude=prelude)
        assert result.solved
        # maxcut_qaoa_circuit uses per-cycle parameter names, so compare the
        # interaction sequences rather than full gate equality.
        full = maxcut_qaoa_circuit(num_qubits, cycles, seed=seed)
        routed_interactions = [g for g in result.routed_circuit if g.is_two_qubit
                               and g.name != "swap"]
        assert len(routed_interactions) == full.num_two_qubit_gates


class TestNoiseAwareRouting:
    def test_reports_fidelity_objective(self):
        arch = line_architecture(4)
        noise = NoiseModel.uniform(arch, two_qubit_error=0.02)
        circuit = QuantumCircuit(4, [cx(0, 1), cx(0, 2), cx(3, 2), cx(0, 3)])
        result = NoiseAwareSatMapRouter(noise, time_budget=60).route(circuit, arch)
        assert result.solved
        assert result.objective_value is not None
        assert 0.0 < result.objective_value < 1.0

    def test_prefers_low_error_edges(self):
        # Line of 3: two edges with very different error rates; a single CNOT
        # should be placed on the good edge.
        arch = line_architecture(3)
        noise = NoiseModel(arch, {(0, 1): 0.30, (1, 2): 0.001})
        circuit = QuantumCircuit(2, [cx(0, 1)])
        result = NoiseAwareSatMapRouter(noise, time_budget=30).route(circuit, arch)
        assert result.solved
        executed = [g for g in result.routed_circuit if g.is_two_qubit][0]
        assert set(executed.qubits) == {1, 2}

    def test_noise_aware_result_verifies(self):
        arch = line_architecture(4)
        noise = NoiseModel.synthetic(arch, seed=11)
        from repro.circuits.random_circuits import random_circuit

        circuit = random_circuit(4, 5, seed=13)
        result = NoiseAwareSatMapRouter(noise, time_budget=30).route(circuit, arch)
        assert result.solved
        verify_routing(circuit, result.routed_circuit, result.initial_mapping, arch)

    def test_status_remains_informative(self):
        arch = line_architecture(3)
        noise = NoiseModel.uniform(arch)
        circuit = QuantumCircuit(3, [cx(0, 1), cx(1, 2)])
        result = NoiseAwareSatMapRouter(noise, time_budget=30).route(circuit, arch)
        assert result.status in (RoutingStatus.OPTIMAL, RoutingStatus.FEASIBLE)


class TestFallbackBudget:
    def test_fallback_reset_respects_remaining_budget(self):
        """The fallback re-route runs within the caller's remaining time and
        restores the router's own budget afterwards (the cyclic call must
        never take ~2x its declared time_budget)."""
        from repro.core.cyclic import _route_block_with_reset

        block = QuantumCircuit(3, [cx(0, 1), cx(1, 2), cx(0, 2)])
        router = SatMapRouter(time_budget=30.0, verify=False)
        result = _route_block_with_reset(block, ring_architecture(3), router,
                                         time_budget=5.0)
        assert router.time_budget == 30.0  # restored
        assert result.solved
        assert result.final_mapping == result.initial_mapping

    def test_budget_restored_even_when_routing_fails(self):
        from repro.core.cyclic import _route_block_with_reset

        block = QuantumCircuit(3, [cx(0, 1), cx(1, 2), cx(0, 2)])
        router = SatMapRouter(time_budget=30.0, verify=False)
        # 3 qubits cannot fit a 2-qubit line: routing errors out, budget
        # must still be restored by the finally block.
        result = _route_block_with_reset(block, line_architecture(2), router,
                                         time_budget=5.0)
        assert router.time_budget == 30.0
        assert not result.solved
