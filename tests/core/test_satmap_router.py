"""Tests for the SATMAP router (monolithic and sliced) and the result type."""

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import cx, h
from repro.circuits.random_circuits import random_circuit
from repro.core import RoutingStatus, SatMapRouter, verify_routing
from repro.core.result import RoutingResult
from repro.hardware.topologies import (
    full_architecture,
    grid_architecture,
    line_architecture,
)


class TestRoutingResult:
    def test_added_cnots_is_three_per_swap(self):
        result = RoutingResult(RoutingStatus.OPTIMAL, "x", swap_count=4)
        assert result.added_cnots == 12

    def test_solved_statuses(self):
        assert RoutingResult(RoutingStatus.OPTIMAL, "x").solved
        assert RoutingResult(RoutingStatus.FEASIBLE, "x").solved
        assert not RoutingResult(RoutingStatus.TIMEOUT, "x").solved
        assert not RoutingResult(RoutingStatus.UNSATISFIABLE, "x").solved

    def test_summary_mentions_swaps_when_solved(self):
        result = RoutingResult(RoutingStatus.OPTIMAL, "tool", circuit_name="c",
                               swap_count=2, optimal=True)
        assert "2 swaps" in result.summary()
        assert "optimal" in result.summary()

    def test_summary_mentions_status_when_unsolved(self):
        result = RoutingResult(RoutingStatus.TIMEOUT, "tool", circuit_name="c")
        assert "timeout" in result.summary()


class TestRouterConfiguration:
    def test_rejects_bad_slice_size(self):
        with pytest.raises(ValueError):
            SatMapRouter(slice_size=0)

    def test_rejects_bad_time_budget(self):
        with pytest.raises(ValueError):
            SatMapRouter(time_budget=0)

    def test_default_names(self):
        assert SatMapRouter().name == "NL-SATMAP"
        assert SatMapRouter(slice_size=25).name == "SATMAP"

    def test_custom_name(self):
        assert SatMapRouter(name="mine").name == "mine"


class TestMonolithicRouting:
    def test_running_example_optimal_cost(self, running_example_circuit, line4):
        result = SatMapRouter(time_budget=30).route(running_example_circuit, line4)
        assert result.status is RoutingStatus.OPTIMAL
        assert result.swap_count == 1
        assert result.added_cnots == 3

    def test_no_swaps_on_already_adjacent_circuit(self, line5):
        circuit = QuantumCircuit(3, [cx(0, 1), cx(1, 2)])
        result = SatMapRouter(time_budget=10).route(circuit, line5)
        assert result.swap_count == 0 and result.optimal

    def test_full_connectivity_never_needs_swaps(self):
        circuit = random_circuit(5, 15, seed=2)
        result = SatMapRouter(time_budget=30).route(circuit, full_architecture(5))
        assert result.swap_count == 0

    def test_routed_circuit_passes_external_verification(self, running_example_circuit, line4):
        result = SatMapRouter(time_budget=30).route(running_example_circuit, line4)
        swaps = verify_routing(running_example_circuit, result.routed_circuit,
                               result.initial_mapping, line4)
        assert swaps == result.swap_count

    def test_single_qubit_only_circuit(self, line4):
        circuit = QuantumCircuit(3, [h(0), h(1), h(2)])
        result = SatMapRouter(time_budget=10).route(circuit, line4)
        assert result.solved
        assert result.swap_count == 0
        assert len(result.routed_circuit) == 3

    def test_empty_circuit(self, line4):
        result = SatMapRouter(time_budget=10).route(QuantumCircuit(2), line4)
        assert result.solved and result.swap_count == 0

    def test_circuit_larger_than_architecture_is_an_error(self):
        circuit = random_circuit(6, 5, seed=1)
        result = SatMapRouter(time_budget=10).route(circuit, line_architecture(4))
        assert result.status is RoutingStatus.ERROR

    def test_metadata_populated(self, running_example_circuit, line4):
        result = SatMapRouter(time_budget=30).route(running_example_circuit, line4)
        assert result.num_variables > 0
        assert result.num_hard_clauses > 0
        assert result.num_soft_clauses > 0
        assert result.sat_calls >= 1
        assert result.circuit_name == "running_example"

    def test_initial_mapping_is_injective_and_total(self, running_example_circuit, line4):
        result = SatMapRouter(time_budget=30).route(running_example_circuit, line4)
        values = list(result.initial_mapping.values())
        assert len(set(values)) == len(values)
        assert sorted(result.initial_mapping) == [0, 1, 2, 3]

    def test_tiny_time_budget_reports_timeout_or_solution(self, grid2x3):
        circuit = random_circuit(5, 30, seed=4)
        result = SatMapRouter(time_budget=0.05).route(circuit, grid2x3)
        assert result.status in (RoutingStatus.TIMEOUT, RoutingStatus.FEASIBLE,
                                 RoutingStatus.OPTIMAL)


class TestSlicedRouting:
    def test_sliced_solves_and_verifies(self, grid2x3):
        circuit = random_circuit(5, 18, seed=6)
        router = SatMapRouter(slice_size=6, time_budget=60)
        result = router.route(circuit, grid2x3)
        assert result.solved
        assert result.num_slices == 3
        verify_routing(circuit, result.routed_circuit, result.initial_mapping, grid2x3)

    def test_sliced_cost_at_least_optimal(self, line5):
        circuit = random_circuit(4, 12, seed=3)
        optimal = SatMapRouter(time_budget=60).route(circuit, line5)
        sliced = SatMapRouter(slice_size=4, time_budget=60).route(circuit, line5)
        assert optimal.solved and sliced.solved
        assert sliced.swap_count >= optimal.swap_count

    def test_sliced_never_claims_global_optimality(self, line5):
        circuit = random_circuit(4, 12, seed=3)
        result = SatMapRouter(slice_size=4, time_budget=60).route(circuit, line5)
        assert not result.optimal

    def test_slice_size_larger_than_circuit_behaves_monolithically(self, line4):
        circuit = QuantumCircuit(4, [cx(0, 1), cx(0, 2), cx(3, 2), cx(0, 3)])
        result = SatMapRouter(slice_size=100, time_budget=30).route(circuit, line4)
        assert result.optimal and result.swap_count == 1

    def test_slicing_records_backtracks(self, line5):
        circuit = random_circuit(4, 12, seed=3)
        result = SatMapRouter(slice_size=4, time_budget=60).route(circuit, line5)
        assert result.backtracks >= 0

    def test_different_slice_sizes_all_verify(self, grid2x3):
        circuit = random_circuit(5, 16, seed=8)
        for slice_size in (4, 8, 16):
            result = SatMapRouter(slice_size=slice_size, time_budget=60).route(
                circuit, grid2x3)
            assert result.solved
            verify_routing(circuit, result.routed_circuit, result.initial_mapping,
                           grid2x3)
