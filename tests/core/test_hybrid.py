"""Tests for the hybrid router (MaxSAT placement + heuristic routing)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.base import identity_mapping
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import cx
from repro.circuits.named_circuits import ghz_circuit, qft_circuit
from repro.circuits.random_circuits import random_circuit
from repro.core.hybrid import HybridSatMapRouter, placement_adjacency_score
from repro.core.satmap import SatMapRouter
from repro.core.verifier import verify_routing
from repro.hardware.topologies import (
    grid_architecture,
    line_architecture,
    reduced_tokyo_architecture,
    ring_architecture,
)


def _circuit(num_qubits, gates):
    circuit = QuantumCircuit(num_qubits)
    circuit.extend(gates)
    return circuit


class TestPlacement:
    def test_embeddable_interaction_graph_scores_everything(self):
        circuit = ghz_circuit(4, linear=True)
        architecture = line_architecture(4)
        router = HybridSatMapRouter(time_budget=20)
        mapping, stats = router.solve_placement(circuit, architecture, time_budget=10)
        assert placement_adjacency_score(circuit, architecture, mapping) == \
            circuit.num_two_qubit_gates
        assert stats["num_soft_clauses"] == 3

    def test_placement_is_injective_and_total(self):
        circuit = random_circuit(num_qubits=4, num_two_qubit_gates=10, seed=5)
        architecture = ring_architecture(6)
        mapping, _ = HybridSatMapRouter(time_budget=20).solve_placement(
            circuit, architecture, time_budget=10)
        assert len(mapping) == 4
        assert len(set(mapping.values())) == 4
        assert all(0 <= physical < 6 for physical in mapping.values())

    def test_placement_beats_identity_when_identity_is_bad(self):
        # Interactions are (0,2) and (1,3): the identity mapping on a line puts
        # both pairs at distance two; an optimal placement makes them adjacent.
        circuit = _circuit(4, [cx(0, 2), cx(0, 2), cx(1, 3), cx(1, 3)])
        architecture = line_architecture(4)
        mapping, _ = HybridSatMapRouter(time_budget=20).solve_placement(
            circuit, architecture, time_budget=10)
        optimal_score = placement_adjacency_score(circuit, architecture, mapping)
        identity_score = placement_adjacency_score(
            circuit, architecture, identity_mapping(circuit, architecture))
        assert optimal_score >= identity_score
        assert optimal_score == circuit.num_two_qubit_gates


class TestHybridRouting:
    def test_routed_circuit_verifies(self):
        circuit = random_circuit(num_qubits=5, num_two_qubit_gates=15, seed=1)
        architecture = grid_architecture(2, 3)
        result = HybridSatMapRouter(time_budget=30).route(circuit, architecture)
        assert result.solved
        verify_routing(circuit, result.routed_circuit, result.initial_mapping,
                       architecture)

    def test_zero_swap_instances_stay_zero_swap(self):
        circuit = ghz_circuit(5, linear=True)
        result = HybridSatMapRouter(time_budget=30).route(circuit, line_architecture(5))
        assert result.solved
        assert result.swap_count == 0

    def test_reports_placement_statistics(self):
        circuit = random_circuit(num_qubits=4, num_two_qubit_gates=8, seed=3)
        result = HybridSatMapRouter(time_budget=30).route(circuit, ring_architecture(5))
        assert result.num_variables > 0
        assert result.num_hard_clauses > 0
        assert "placement" in result.notes

    def test_too_many_logical_qubits_is_an_error(self):
        circuit = random_circuit(num_qubits=6, num_two_qubit_gates=5, seed=0)
        result = HybridSatMapRouter(time_budget=10).route(circuit, line_architecture(4))
        assert not result.solved

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            HybridSatMapRouter(time_budget=0)
        with pytest.raises(ValueError):
            HybridSatMapRouter(placement_share=1.5)

    def test_competitive_with_full_satmap_on_small_instances(self):
        circuit = qft_circuit(4)
        architecture = reduced_tokyo_architecture(5)
        hybrid = HybridSatMapRouter(time_budget=30).route(circuit, architecture)
        full = SatMapRouter(time_budget=30).route(circuit, architecture)
        assert hybrid.solved and full.solved
        # The hybrid router gives up optimal routing; it must stay within a
        # small factor of full SATMAP on instances this size.
        assert hybrid.swap_count <= full.swap_count + 4

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=200))
    def test_random_circuits_verify(self, seed):
        circuit = random_circuit(num_qubits=4, num_two_qubit_gates=8, seed=seed)
        architecture = ring_architecture(5)
        result = HybridSatMapRouter(time_budget=20).route(circuit, architecture)
        assert result.solved
        verify_routing(circuit, result.routed_circuit, result.initial_mapping,
                       architecture)


class TestSabreInitialMappingOption:
    def test_sabre_respects_fixed_initial_mapping(self):
        from repro.baselines.sabre import SabreRouter

        circuit = ghz_circuit(4, linear=True)
        architecture = line_architecture(4)
        fixed = {0: 3, 1: 2, 2: 1, 3: 0}
        result = SabreRouter(initial_mapping=fixed).route(circuit, architecture)
        assert result.solved
        assert result.initial_mapping == fixed
