"""Tests for the independent routing verifier."""

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate, cx, h, swap
from repro.core.verifier import VerificationError, verify_routing
from repro.hardware.topologies import line_architecture


def original() -> QuantumCircuit:
    return QuantumCircuit(3, [h(0), cx(0, 1), cx(0, 2)])


IDENTITY = {0: 0, 1: 1, 2: 2}


class TestAcceptedRoutings:
    def test_identity_routing_with_swap(self):
        routed = QuantumCircuit(3, [h(0), cx(0, 1), swap(1, 2), cx(0, 1)])
        assert verify_routing(original(), routed, IDENTITY, line_architecture(3)) == 1

    def test_routing_without_swaps(self):
        circuit = QuantumCircuit(3, [cx(0, 1), cx(1, 2)])
        routed = QuantumCircuit(3, [cx(0, 1), cx(1, 2)])
        assert verify_routing(circuit, routed, IDENTITY, line_architecture(3)) == 0

    def test_non_identity_initial_mapping(self):
        circuit = QuantumCircuit(2, [cx(0, 1)])
        routed = QuantumCircuit(3, [cx(2, 1)])
        mapping = {0: 2, 1: 1}
        assert verify_routing(circuit, routed, mapping, line_architecture(3)) == 0

    def test_reordering_of_disjoint_gates_accepted(self):
        circuit = QuantumCircuit(4, [cx(0, 1), cx(2, 3)])
        routed = QuantumCircuit(4, [cx(2, 3), cx(0, 1)])
        mapping = {0: 0, 1: 1, 2: 2, 3: 3}
        arch = line_architecture(4)
        assert verify_routing(circuit, routed, mapping, arch) == 0

    def test_unused_logical_qubits_need_no_mapping(self):
        circuit = QuantumCircuit(4, [cx(0, 1)])
        routed = QuantumCircuit(4, [cx(0, 1)])
        assert verify_routing(circuit, routed, {0: 0, 1: 1}, line_architecture(4)) == 0


class TestRejectedRoutings:
    def test_gate_on_non_adjacent_qubits(self):
        circuit = QuantumCircuit(3, [cx(0, 2)])
        routed = QuantumCircuit(3, [cx(0, 2)])
        with pytest.raises(VerificationError):
            verify_routing(circuit, routed, IDENTITY, line_architecture(3))

    def test_swap_on_non_edge(self):
        circuit = QuantumCircuit(3, [cx(0, 1)])
        routed = QuantumCircuit(3, [swap(0, 2), cx(1, 0)])
        with pytest.raises(VerificationError):
            verify_routing(circuit, routed, IDENTITY, line_architecture(3))

    def test_missing_gate(self):
        routed = QuantumCircuit(3, [h(0), cx(0, 1)])
        with pytest.raises(VerificationError):
            verify_routing(original(), routed, IDENTITY, line_architecture(3))

    def test_extra_gate(self):
        routed = QuantumCircuit(3, [h(0), cx(0, 1), cx(1, 2), cx(0, 1)])
        with pytest.raises(VerificationError):
            verify_routing(original(), routed, IDENTITY, line_architecture(3))

    def test_wrong_logical_operands(self):
        # Original wants cx(0, 2) after the swap, routed executes cx on the
        # wrong physical pair so it translates to the wrong logical pair.
        circuit = QuantumCircuit(3, [cx(0, 1), cx(0, 2)])
        routed = QuantumCircuit(3, [cx(0, 1), cx(1, 2)])
        with pytest.raises(VerificationError):
            verify_routing(circuit, routed, IDENTITY, line_architecture(3))

    def test_non_injective_initial_mapping(self):
        circuit = QuantumCircuit(2, [cx(0, 1)])
        routed = QuantumCircuit(2, [cx(0, 1)])
        with pytest.raises(VerificationError):
            verify_routing(circuit, routed, {0: 0, 1: 0}, line_architecture(2))

    def test_mapping_missing_used_qubit(self):
        circuit = QuantumCircuit(2, [cx(0, 1)])
        routed = QuantumCircuit(2, [cx(0, 1)])
        with pytest.raises(VerificationError):
            verify_routing(circuit, routed, {0: 0}, line_architecture(2))

    def test_mapping_to_nonexistent_physical_qubit(self):
        circuit = QuantumCircuit(2, [cx(0, 1)])
        routed = QuantumCircuit(2, [cx(0, 1)])
        with pytest.raises(VerificationError):
            verify_routing(circuit, routed, {0: 0, 1: 7}, line_architecture(2))

    def test_gate_on_unoccupied_physical_qubit(self):
        circuit = QuantumCircuit(2, [cx(0, 1)])
        routed = QuantumCircuit(3, [cx(1, 2)])
        with pytest.raises(VerificationError):
            verify_routing(circuit, routed, {0: 0, 1: 1}, line_architecture(3))

    def test_wrong_gate_name(self):
        circuit = QuantumCircuit(2, [cx(0, 1)])
        routed = QuantumCircuit(2, [Gate("cz", (0, 1))])
        with pytest.raises(VerificationError):
            verify_routing(circuit, routed, {0: 0, 1: 1}, line_architecture(2))

    def test_wrong_parameters(self):
        circuit = QuantumCircuit(2, [Gate("rzz", (0, 1), ("a",))])
        routed = QuantumCircuit(2, [Gate("rzz", (0, 1), ("b",))])
        with pytest.raises(VerificationError):
            verify_routing(circuit, routed, {0: 0, 1: 1}, line_architecture(2))
