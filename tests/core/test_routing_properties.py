"""Property-based tests of the full SATMAP pipeline.

Every routed circuit, for any random circuit and any of several architectures,
must pass the independent verifier; this is the invariant the paper's own
verifier enforces for every reported result.
"""

from hypothesis import given, settings, strategies as st

from repro.circuits.random_circuits import random_circuit
from repro.core import SatMapRouter, verify_routing
from repro.core.result import RoutingStatus
from repro.hardware.topologies import (
    grid_architecture,
    line_architecture,
    ring_architecture,
)

ARCHITECTURES = [
    line_architecture(4),
    line_architecture(5),
    ring_architecture(5),
    grid_architecture(2, 3),
]


@st.composite
def routing_instance(draw):
    architecture = draw(st.sampled_from(ARCHITECTURES))
    num_qubits = draw(st.integers(min_value=2, max_value=min(4, architecture.num_qubits)))
    num_gates = draw(st.integers(min_value=1, max_value=10))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    circuit = random_circuit(num_qubits, num_gates, seed=seed)
    return circuit, architecture


class TestRoutingInvariants:
    @given(routing_instance())
    @settings(max_examples=25, deadline=None)
    def test_monolithic_routing_always_verifies(self, instance):
        circuit, architecture = instance
        router = SatMapRouter(time_budget=30, verify=False)
        result = router.route(circuit, architecture)
        assert result.solved
        swaps = verify_routing(circuit, result.routed_circuit,
                               result.initial_mapping, architecture)
        assert swaps == result.swap_count

    @given(routing_instance())
    @settings(max_examples=15, deadline=None)
    def test_sliced_routing_always_verifies(self, instance):
        circuit, architecture = instance
        router = SatMapRouter(slice_size=3, time_budget=30, verify=False)
        result = router.route(circuit, architecture)
        assert result.solved
        verify_routing(circuit, result.routed_circuit, result.initial_mapping,
                       architecture)

    @given(routing_instance())
    @settings(max_examples=15, deadline=None)
    def test_swap_count_consistent_with_routed_circuit(self, instance):
        circuit, architecture = instance
        result = SatMapRouter(time_budget=30).route(circuit, architecture)
        assert result.solved
        assert result.routed_circuit.num_swaps == result.swap_count
        assert (len(result.routed_circuit)
                == len(circuit) + result.swap_count)

    @given(routing_instance())
    @settings(max_examples=10, deadline=None)
    def test_status_is_always_a_definite_outcome(self, instance):
        circuit, architecture = instance
        result = SatMapRouter(time_budget=30).route(circuit, architecture)
        assert result.status in (RoutingStatus.OPTIMAL, RoutingStatus.FEASIBLE,
                                 RoutingStatus.TIMEOUT)
