"""Tests for variable bookkeeping and model extraction."""

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import cx, h
from repro.core.encoder import EncodingOptions, QmrEncoder
from repro.core.extraction import (
    build_routed_circuit,
    complete_mapping,
    extract_solution,
)
from repro.core.variables import NOOP, VariableRegistry
from repro.hardware.topologies import line_architecture
from repro.maxsat import MaxSatSolver
from repro.maxsat.wcnf import WcnfBuilder


class TestVariableRegistry:
    def setup_method(self):
        self.registry = VariableRegistry(WcnfBuilder())

    def test_map_var_is_stable(self):
        first = self.registry.map_var(0, 1, 2)
        second = self.registry.map_var(0, 1, 2)
        assert first == second

    def test_distinct_keys_get_distinct_vars(self):
        assert self.registry.map_var(0, 1, 0) != self.registry.map_var(1, 0, 0)

    def test_swap_var_normalises_edge_order(self):
        assert (self.registry.swap_var((2, 1), 0)
                == self.registry.swap_var((1, 2), 0))

    def test_noop_edge_is_allowed(self):
        variable = self.registry.swap_var(NOOP, 3)
        assert self.registry.lookup_swap(variable) == (NOOP, 3, 0)

    def test_reverse_lookup_map(self):
        variable = self.registry.map_var(2, 3, 1)
        assert self.registry.lookup_map(variable) == (2, 3, 1)

    def test_reverse_lookup_unknown_returns_none(self):
        assert self.registry.lookup_map(999) is None

    def test_counters(self):
        self.registry.map_var(0, 0, 0)
        self.registry.swap_var((0, 1), 0)
        assert self.registry.num_map_vars == 1
        assert self.registry.num_swap_vars == 1


class TestCompleteMapping:
    def test_fills_missing_qubits_deterministically(self):
        mapping = complete_mapping({0: 2}, num_logical=3, num_physical=4)
        assert mapping[0] == 2
        assert sorted(mapping) == [0, 1, 2]
        assert len(set(mapping.values())) == 3

    def test_rejects_non_injective_input(self):
        with pytest.raises(ValueError):
            complete_mapping({0: 1, 1: 1}, 2, 3)

    def test_rejects_when_not_enough_physical_qubits(self):
        with pytest.raises(ValueError):
            complete_mapping({}, num_logical=4, num_physical=3)

    def test_already_complete_mapping_unchanged(self):
        mapping = {0: 1, 1: 0, 2: 2}
        assert complete_mapping(dict(mapping), 3, 3) == mapping


class TestExtraction:
    def _solve(self, circuit, architecture, **options):
        encoding = QmrEncoder(architecture, EncodingOptions(**options)).encode(circuit)
        result = MaxSatSolver().solve(encoding.builder, time_budget=30)
        assert result.has_model
        return encoding, result.model

    def test_extracted_mapping_is_injective_at_every_step(self):
        circuit = QuantumCircuit(4, [cx(0, 1), cx(0, 2), cx(3, 2), cx(0, 3)])
        encoding, model = self._solve(circuit, line_architecture(4))
        solution = extract_solution(encoding, model)
        for mapping in solution.step_mappings.values():
            assert len(set(mapping.values())) == len(mapping)

    def test_swap_count_matches_model_cost(self):
        circuit = QuantumCircuit(4, [cx(0, 1), cx(0, 2), cx(3, 2), cx(0, 3)])
        encoding, model = self._solve(circuit, line_architecture(4))
        solution = extract_solution(encoding, model)
        assert solution.swap_count == 1

    def test_initial_mapping_is_total(self):
        circuit = QuantumCircuit(5, [cx(0, 1)])
        encoding, model = self._solve(circuit, line_architecture(5))
        solution = extract_solution(encoding, model)
        assert sorted(solution.initial_mapping) == list(range(5))

    def test_routed_circuit_contains_original_gates_plus_swaps(self):
        circuit = QuantumCircuit(4, [h(0), cx(0, 1), cx(0, 2), cx(3, 2), cx(0, 3)])
        encoding, model = self._solve(circuit, line_architecture(4))
        solution = extract_solution(encoding, model)
        routed = build_routed_circuit(circuit, encoding, solution)
        assert len(routed) == len(circuit) + solution.swap_count
        assert routed.num_swaps == solution.swap_count

    def test_routed_circuit_acts_on_physical_qubits(self):
        circuit = QuantumCircuit(3, [cx(0, 2)])
        arch = line_architecture(5)
        encoding, model = self._solve(circuit, arch)
        solution = extract_solution(encoding, model)
        routed = build_routed_circuit(circuit, encoding, solution)
        assert routed.num_qubits == arch.num_qubits

    def test_final_mapping_updated_by_routed_builder(self):
        circuit = QuantumCircuit(4, [cx(0, 1), cx(0, 2), cx(3, 2), cx(0, 3)])
        encoding, model = self._solve(circuit, line_architecture(4))
        solution = extract_solution(encoding, model)
        build_routed_circuit(circuit, encoding, solution)
        assert sorted(solution.final_mapping) == list(range(4))
        assert len(set(solution.final_mapping.values())) == 4
