"""Session reuse across slice re-solves (the incremental solve path)."""

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import cx
from repro.circuits.random_circuits import random_circuit
from repro.core import SatMapRouter, verify_routing
from repro.hardware.topologies import line_architecture, ring_architecture


def ladder_circuit(num_qubits: int, rungs: int) -> QuantumCircuit:
    circuit = QuantumCircuit(num_qubits, name=f"ladder_{num_qubits}_{rungs}")
    for index in range(rungs):
        near = (index % (num_qubits - 1), index % (num_qubits - 1) + 1)
        far = (0, num_qubits - 1 - (index % (num_qubits - 2)))
        circuit.append(cx(*near))
        if far[0] != far[1]:
            circuit.append(cx(*far))
    return circuit


class TestMonolithicContextReuse:
    def test_outcome_carries_a_reusable_context(self):
        circuit = random_circuit(4, 8, seed=3)
        arch = ring_architecture(4)
        router = SatMapRouter(time_budget=30)
        outcome = router.solve_monolithic(circuit, arch, 30)
        assert outcome.result.solved
        assert outcome.context is not None
        assert outcome.context.session.stats.clauses_streamed > 0
        assert outcome.context.solves == 1

    def test_non_incremental_router_returns_no_context(self):
        circuit = random_circuit(4, 6, seed=3)
        arch = ring_architecture(4)
        outcome = SatMapRouter(time_budget=30, incremental=False).solve_monolithic(
            circuit, arch, 30)
        assert outcome.result.solved
        assert outcome.context is None

    def test_exclusion_resolve_reuses_the_context(self):
        circuit = random_circuit(4, 8, seed=5)
        arch = ring_architecture(4)
        router = SatMapRouter(time_budget=30)
        first = router.solve_monolithic(circuit, arch, 30)
        assert first.result.solved
        second = router.solve_monolithic(
            circuit, arch, 30,
            excluded_final_mappings=[dict(first.result.final_mapping)],
            context=first.context)
        assert second.result.solved
        assert second.context is first.context
        assert second.context.solves == 2
        assert second.result.final_mapping != first.result.final_mapping
        verify_routing(circuit, second.result.routed_circuit,
                       second.result.initial_mapping, arch)

    def test_resolve_matches_from_scratch_swaps(self):
        """The re-solved optimum equals the from-scratch re-solved optimum."""
        circuit = random_circuit(4, 10, seed=9)
        arch = ring_architecture(4)
        incremental = SatMapRouter(time_budget=30)
        scratch = SatMapRouter(time_budget=30, incremental=False)
        inc_first = incremental.solve_monolithic(circuit, arch, 30)
        scr_first = scratch.solve_monolithic(circuit, arch, 30)
        assert inc_first.result.optimal and scr_first.result.optimal
        assert inc_first.result.swap_count == scr_first.result.swap_count
        excluded = [dict(inc_first.result.final_mapping)]
        inc_second = incremental.solve_monolithic(
            circuit, arch, 30, excluded_final_mappings=excluded,
            context=inc_first.context)
        scr_second = scratch.solve_monolithic(
            circuit, arch, 30, excluded_final_mappings=excluded)
        assert inc_second.result.optimal and scr_second.result.optimal
        assert inc_second.result.swap_count == scr_second.result.swap_count

    def test_context_for_a_different_circuit_is_refused(self):
        arch = ring_architecture(4)
        router = SatMapRouter(time_budget=30)
        first = router.solve_monolithic(random_circuit(4, 8, seed=21), arch, 30)
        other_circuit = random_circuit(4, 8, seed=22)
        second = router.solve_monolithic(other_circuit, arch, 30,
                                         context=first.context)
        assert second.context is not first.context
        assert second.result.solved
        verify_routing(other_circuit, second.result.routed_circuit,
                       second.result.initial_mapping, arch)

    def test_context_for_a_different_architecture_is_refused(self):
        circuit = random_circuit(4, 8, seed=23)
        router = SatMapRouter(time_budget=30)
        first = router.solve_monolithic(circuit, ring_architecture(4), 30)
        second = router.solve_monolithic(circuit, line_architecture(4), 30,
                                         context=first.context)
        assert second.context is not first.context
        assert second.result.solved

    def test_non_extending_exclusion_list_is_refused(self):
        """Streamed exclusions are permanent, so a different list must rebuild."""
        circuit = random_circuit(4, 8, seed=25)
        arch = ring_architecture(4)
        router = SatMapRouter(time_budget=30)
        first = router.solve_monolithic(circuit, arch, 30)
        mapping_a = dict(first.result.final_mapping)
        second = router.solve_monolithic(circuit, arch, 30,
                                         excluded_final_mappings=[mapping_a],
                                         context=first.context)
        mapping_b = dict(second.result.final_mapping)
        assert mapping_b != mapping_a
        # Asking to exclude only B (dropping A) is not an extension of the
        # streamed [A]; the context must be refused, and the fresh solve must
        # genuinely honour the new list: B never comes back, A may.
        third = router.solve_monolithic(circuit, arch, 30,
                                        excluded_final_mappings=[mapping_b],
                                        context=second.context)
        assert third.context is not second.context
        assert third.result.solved
        assert third.result.final_mapping != mapping_b

    def test_changed_slot_configuration_invalidates_the_context(self):
        circuit = random_circuit(4, 6, seed=11)
        arch = ring_architecture(4)
        router = SatMapRouter(time_budget=30)
        first = router.solve_monolithic(circuit, arch, 30)
        escalated = router.solve_monolithic(circuit, arch, 30, swaps_per_gate=2,
                                            context=first.context)
        assert escalated.result.solved
        assert escalated.context is not first.context

    def test_stage_timings_reported(self):
        circuit = random_circuit(4, 6, seed=13)
        arch = ring_architecture(4)
        outcome = SatMapRouter(time_budget=30).solve_monolithic(circuit, arch, 30)
        timings = outcome.result.stage_timings
        assert set(timings) == {"encode", "solve", "extract"}
        assert all(seconds >= 0 for seconds in timings.values())
        assert outcome.result.clauses_streamed > 0


class TestSlicedIncrementalEquivalence:
    def test_sliced_routing_verifies_in_both_modes(self):
        circuit = ladder_circuit(5, 6)
        arch = line_architecture(5)
        for incremental in (False, True):
            router = SatMapRouter(slice_size=2, time_budget=90, backtrack_limit=3,
                                  incremental=incremental)
            result = router.route(circuit, arch)
            assert result.solved, f"incremental={incremental}"
            verify_routing(circuit, result.routed_circuit,
                           result.initial_mapping, arch)

    def test_backtracking_works_on_warm_sessions(self):
        # Force handoffs that typically require backtracking or escalation and
        # make sure the incremental path still lands on a verified routing.
        circuit = ladder_circuit(5, 8)
        arch = line_architecture(5)
        router = SatMapRouter(slice_size=2, time_budget=120, backtrack_limit=5)
        result = router.route(circuit, arch)
        assert result.solved
        verify_routing(circuit, result.routed_circuit, result.initial_mapping, arch)
        assert result.stage_timings  # aggregated across slices
