"""Deterministic coverage of the slicing escalation ladder (Section V).

A scripted router stands in for the SAT solve so the tests pin the exact
order of recovery attempts: backtracking until the budget is spent, then
leading-slot doubling up to the graph diameter, then per-gate escalation.
"""

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import cx
from repro.core.result import RoutingResult, RoutingStatus
from repro.core.satmap import MonolithicOutcome
from repro.core.slicing import route_sliced
from repro.hardware.topologies import line_architecture


def two_slice_circuit(num_qubits: int = 5) -> QuantumCircuit:
    return QuantumCircuit(num_qubits, [cx(0, 1), cx(1, 2)], name="two_slice")


class ScriptedRouter:
    """Mimics SatMapRouter's surface; solves per a scripted UNSAT policy."""

    def __init__(self, architecture, backtrack_limit: int,
                 unsat_while) -> None:
        self.architecture = architecture
        self.slice_size = 1
        self.swaps_per_gate = 1
        self.time_budget = 60.0
        self.backtrack_limit = backtrack_limit
        self.incremental = False
        self.pipeline_slices = False
        self.cube_workers = None
        self.noise_model = None
        self.name = "scripted"
        self.unsat_while = unsat_while
        self.calls: list[dict] = []

    def solve_monolithic(self, circuit, architecture, time_budget,
                         fixed_initial_mapping=None,
                         excluded_final_mappings=None, leading_slots=None,
                         swaps_per_gate=None, context=None):
        call = dict(
            slice_gates=circuit.num_two_qubit_gates,
            fixed=fixed_initial_mapping,
            excluded=len(excluded_final_mappings or []),
            leading_slots=leading_slots,
            swaps_per_gate=swaps_per_gate,
        )
        self.calls.append(call)
        if fixed_initial_mapping is not None and self.unsat_while(call):
            return MonolithicOutcome(RoutingResult(
                status=RoutingStatus.UNSATISFIABLE, router_name=self.name,
                circuit_name=circuit.name))
        identity = {q: q for q in range(architecture.num_qubits)}
        return MonolithicOutcome(RoutingResult(
            status=RoutingStatus.OPTIMAL, router_name=self.name,
            circuit_name=circuit.name, optimal=True,
            initial_mapping=dict(fixed_initial_mapping or identity),
            final_mapping=dict(fixed_initial_mapping or identity),
            routed_circuit=QuantumCircuit(architecture.num_qubits),
        ))


class TestBacktrackBudget:
    def test_budget_exhausts_before_escalation_begins(self):
        """With backtrack_limit=2, exactly two backtracks precede escalation."""
        arch = line_architecture(5)
        attempts = {"n": 0}

        def unsat_while(call):
            attempts["n"] += 1
            return attempts["n"] <= 3  # survive 2 backtracks + 1 more failure

        router = ScriptedRouter(arch, backtrack_limit=2,
                                unsat_while=unsat_while)
        result = route_sliced(two_slice_circuit(), arch, router)
        assert result.solved
        assert result.backtracks == 2
        # Slice 0 re-solved once per backtrack, accumulating exclusions.
        slice0_calls = [c for c in router.calls if c["fixed"] is None]
        assert [c["excluded"] for c in slice0_calls] == [0, 1, 2]
        # Escalation only started after the budget was spent: the first
        # retry beyond the backtracks doubles the leading slots.
        slice1_calls = [c for c in router.calls if c["fixed"] is not None]
        assert [c["leading_slots"] for c in slice1_calls] == [1, 1, 1, 2]

    def test_zero_budget_escalates_immediately(self):
        arch = line_architecture(5)
        router = ScriptedRouter(
            arch, backtrack_limit=0,
            unsat_while=lambda call: call["leading_slots"] < 2)
        result = route_sliced(two_slice_circuit(), arch, router)
        assert result.solved
        assert result.backtracks == 0
        slice1_calls = [c for c in router.calls if c["fixed"] is not None]
        assert [c["leading_slots"] for c in slice1_calls] == [1, 2]


class TestLeadingSlotEscalation:
    def test_leading_slots_double_up_to_the_graph_diameter(self):
        """1 -> 2 -> 4 on a diameter-4 line, then per-gate slots grow."""
        arch = line_architecture(5)
        assert arch.diameter() == 4
        router = ScriptedRouter(
            arch, backtrack_limit=0,
            unsat_while=lambda call: call["swaps_per_gate"] is None)
        result = route_sliced(two_slice_circuit(), arch, router)
        assert result.solved
        slice1_calls = [c for c in router.calls if c["fixed"] is not None]
        assert [c["leading_slots"] for c in slice1_calls] == [1, 2, 4, 4]
        # Once the diameter is reached, escalation falls through to the
        # per-gate slot count (the last resort that keeps slicing complete).
        assert [c["swaps_per_gate"] for c in slice1_calls] == [None, None,
                                                               None, 2]

    def test_real_router_survives_zero_backtracks_on_a_line(self):
        """End-to-end: escalation alone repairs hard handoffs."""
        from repro.core import SatMapRouter, verify_routing

        circuit = QuantumCircuit(
            5, [cx(0, 1), cx(3, 4), cx(0, 4), cx(1, 3), cx(0, 3), cx(2, 4)],
            name="hard_handoffs")
        arch = line_architecture(5)
        router = SatMapRouter(slice_size=2, time_budget=120, backtrack_limit=0)
        result = router.route(circuit, arch)
        assert result.solved
        assert result.backtracks == 0
        verify_routing(circuit, result.routed_circuit, result.initial_mapping,
                       arch)
