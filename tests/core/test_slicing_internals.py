"""Focused tests for the local-relaxation machinery (Section V internals)."""

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import cx
from repro.core import SatMapRouter, verify_routing
from repro.core.result import RoutingStatus
from repro.core.slicing import route_sliced
from repro.hardware.topologies import line_architecture, ring_architecture


def ladder_circuit(num_qubits: int, rungs: int) -> QuantumCircuit:
    """A circuit alternating between near and far interactions.

    The far interactions force a slice that inherits an unsuitable mapping to
    either backtrack or escalate, which is exactly the machinery under test.
    """
    circuit = QuantumCircuit(num_qubits, name=f"ladder_{num_qubits}_{rungs}")
    for index in range(rungs):
        near = (index % (num_qubits - 1), index % (num_qubits - 1) + 1)
        far = (0, num_qubits - 1 - (index % (num_qubits - 2)))
        circuit.append(cx(*near))
        if far[0] != far[1]:
            circuit.append(cx(*far))
    return circuit


class TestSlicedSolving:
    def test_example9_slicing_can_cost_one_extra_swap(self):
        """The paper's Example 9: slicing may lose one SWAP versus the optimum."""
        circuit = QuantumCircuit(3, [cx(0, 1), cx(1, 2)], name="example9")
        arch = line_architecture(3)
        optimal = SatMapRouter(time_budget=30).route(circuit, arch)
        sliced = SatMapRouter(slice_size=1, time_budget=30).route(circuit, arch)
        assert optimal.swap_count == 0
        assert sliced.solved
        assert 0 <= sliced.swap_count <= 1

    def test_backtracking_or_escalation_resolves_hard_handoffs(self):
        circuit = ladder_circuit(5, 6)
        arch = line_architecture(5)
        router = SatMapRouter(slice_size=2, time_budget=90, backtrack_limit=3)
        result = router.route(circuit, arch)
        assert result.solved
        verify_routing(circuit, result.routed_circuit, result.initial_mapping, arch)

    def test_zero_backtrack_limit_still_succeeds_via_escalation(self):
        circuit = ladder_circuit(5, 5)
        arch = line_architecture(5)
        router = SatMapRouter(slice_size=2, time_budget=90, backtrack_limit=0)
        result = router.route(circuit, arch)
        assert result.solved
        assert result.backtracks == 0

    def test_slice_count_matches_circuit_partition(self):
        circuit = ladder_circuit(4, 6)
        arch = ring_architecture(4)
        router = SatMapRouter(slice_size=3, time_budget=90)
        result = router.route(circuit, arch)
        expected_slices = len(circuit.sliced_by_two_qubit_gates(3))
        assert result.num_slices == expected_slices

    def test_route_sliced_requires_slice_size(self):
        circuit = ladder_circuit(4, 4)
        arch = ring_architecture(4)
        router = SatMapRouter(slice_size=2, time_budget=60)
        result = route_sliced(circuit, arch, router)
        assert result.solved

    def test_timeout_reported_when_budget_is_tiny(self):
        circuit = ladder_circuit(6, 20)
        arch = line_architecture(6)
        router = SatMapRouter(slice_size=2, time_budget=0.02)
        result = router.route(circuit, arch)
        assert result.status in (RoutingStatus.TIMEOUT, RoutingStatus.FEASIBLE)

    def test_sliced_swap_count_equals_routed_swaps(self):
        circuit = ladder_circuit(5, 8)
        arch = line_architecture(5)
        result = SatMapRouter(slice_size=3, time_budget=90).route(circuit, arch)
        assert result.solved
        assert result.routed_circuit.num_swaps == result.swap_count

    @pytest.mark.parametrize("backtrack_limit", [0, 2, 10])
    def test_varying_backtrack_limits_all_verify(self, backtrack_limit):
        circuit = ladder_circuit(4, 6)
        arch = line_architecture(4)
        router = SatMapRouter(slice_size=2, time_budget=90,
                              backtrack_limit=backtrack_limit)
        result = router.route(circuit, arch)
        assert result.solved
        verify_routing(circuit, result.routed_circuit, result.initial_mapping, arch)
