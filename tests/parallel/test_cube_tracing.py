"""Observability of the cube race: spans, grafting, rendering."""

from repro.circuits.random_circuits import random_circuit
from repro.core import SatMapRouter
from repro.hardware.topologies import ring_architecture
from repro.obs import trace as obs_trace


def _spans_named(tree: dict, name: str) -> list[dict]:
    found = []
    if tree.get("name") == name:
        found.append(tree)
    for child in tree.get("children", ()):
        found.extend(_spans_named(child, name))
    return found


def _routed_trace(cube_workers: int) -> dict:
    circuit = random_circuit(4, 6, seed=2)
    arch = ring_architecture(4)
    tracer = obs_trace.Tracer(max_traces=1)
    root = tracer.start_trace("job")
    with obs_trace.activate(tracer, root):
        result = SatMapRouter(time_budget=120,
                              cube_workers=cube_workers).route(circuit, arch)
    root.finish()
    assert result.solved
    return root.to_dict()


class TestCubeSpans:
    def test_cube_solve_spans_graft_under_the_job_root(self):
        tree = _routed_trace(cube_workers=1)
        conquer = _spans_named(tree, "cube-conquer")
        assert len(conquer) == 1
        solves = _spans_named(conquer[0], "cube-solve")
        assert len(solves) == conquer[0]["attributes"]["cubes"]

    def test_cube_solve_spans_carry_cube_ids(self):
        tree = _routed_trace(cube_workers=1)
        solves = _spans_named(tree, "cube-solve")
        ids = sorted(span["attributes"]["cube_id"] for span in solves)
        assert ids == list(range(len(solves)))
        assert all("pruned" in span["attributes"] for span in solves)

    def test_process_mode_spans_survive_the_pickle_round_trip(self):
        tree = _routed_trace(cube_workers=2)
        solves = _spans_named(tree, "cube-solve")
        assert solves, "worker traces must graft back under the parent"
        # Worker-side child spans (encode/solve) ride along.
        assert any(span.get("children") for span in solves)

    def test_render_shows_the_race(self):
        tree = _routed_trace(cube_workers=1)
        rendered = obs_trace.render_trace(tree)
        assert "cube-conquer" in rendered
        assert "cube-solve" in rendered
        assert "cube_id=" in rendered
