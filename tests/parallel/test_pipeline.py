"""Pipeline-parallel slicing: serial-equivalent results, invalidation rules."""

import pytest

from repro.circuits.random_circuits import random_circuit
from repro.core import SatMapRouter, verify_routing
from repro.core.slicing import SliceState
from repro.hardware.topologies import ring_architecture
from repro.parallel.pipeline import SlicePipeline


@pytest.fixture()
def instance():
    return random_circuit(4, 12, seed=7), ring_architecture(4)


class TestPipelinedRoute:
    def test_results_equal_the_serial_sliced_route(self, instance):
        circuit, arch = instance
        serial = SatMapRouter(slice_size=4, time_budget=120).route(circuit, arch)
        piped = SatMapRouter(slice_size=4, time_budget=120,
                             pipeline_slices=True).route(circuit, arch)
        assert serial.solved and piped.solved
        assert piped.swap_count == serial.swap_count
        assert piped.num_slices == serial.num_slices
        verify_routing(circuit, piped.routed_circuit, piped.initial_mapping, arch)

    def test_stats_record_prebuilt_slices(self, instance):
        circuit, arch = instance
        result = SatMapRouter(slice_size=4, time_budget=120,
                              pipeline_slices=True).route(circuit, arch)
        assert "pipeline" in result.notes
        if "pipeline_prebuilt" in result.solver_stats:
            # Successors (never slice 0) are eligible for pre-encoding.
            assert 0 <= result.solver_stats["pipeline_prebuilt"] < result.num_slices

    def test_single_slice_circuit_skips_the_pipeline(self):
        circuit = random_circuit(3, 3, seed=1)
        arch = ring_architecture(4)
        result = SatMapRouter(slice_size=50, time_budget=60,
                              pipeline_slices=True).route(circuit, arch)
        assert result.solved
        assert "pipeline" not in result.notes


class TestSlicePipelineUnit:
    def _pipeline(self, instance):
        circuit, arch = instance
        router = SatMapRouter(slice_size=4, time_budget=60,
                              pipeline_slices=True)
        slices = circuit.sliced_by_two_qubit_gates(4)
        states = [SliceState(i, sub, leading_slots=router.swaps_per_gate)
                  for i, sub in enumerate(slices)]
        return SlicePipeline(router, arch), states

    def test_take_without_prefetch_is_a_miss(self, instance):
        pipeline, states = self._pipeline(instance)
        try:
            assert pipeline.take(states[1]) is None
        finally:
            pipeline.close()

    def test_escalation_invalidates_the_inflight_encoding(self, instance):
        pipeline, states = self._pipeline(instance)
        try:
            if not pipeline.enabled:
                pytest.skip("no process pool available")
            pipeline.prefetch(states[1])
            states[1].leading_slots *= 2  # shape changed while in flight
            assert pipeline.take(states[1]) is None
            assert pipeline.invalidated == 1
        finally:
            pipeline.close()

    def test_explicit_invalidate_drops_the_prefetch(self, instance):
        pipeline, states = self._pipeline(instance)
        try:
            if not pipeline.enabled:
                pytest.skip("no process pool available")
            pipeline.prefetch(states[1])
            pipeline.invalidate(states[1].index)
            assert pipeline.invalidated == 1
            assert pipeline.take(states[1]) is None  # nothing left in flight
        finally:
            pipeline.close()

    def test_prefetched_context_solves_the_slice(self, instance):
        circuit, arch = instance
        pipeline, states = self._pipeline(instance)
        try:
            if not pipeline.enabled:
                pytest.skip("no process pool available")
            pipeline.prefetch(states[1])
            context = pipeline.take(states[1], timeout=60)
            assert context is not None
            assert pipeline.prebuilt_used == 1
            router = SatMapRouter(slice_size=None, time_budget=60)
            identity = {q: q for q in range(states[1].circuit.num_qubits)}
            outcome = router.solve_monolithic(
                states[1].circuit, arch, 60, fixed_initial_mapping=identity,
                leading_slots=1, context=context)
            assert outcome.result.solved
        finally:
            pipeline.close()

    def test_degrades_to_noop_without_a_process_pool(self, instance, monkeypatch):
        from repro.parallel import pipeline as pipeline_module

        def broken(*args, **kwargs):
            raise OSError("no processes here")

        monkeypatch.setattr(pipeline_module, "ProcessPoolExecutor", broken)
        pipeline, states = self._pipeline(instance)
        try:
            assert not pipeline.enabled
            pipeline.prefetch(states[1])  # no-op, no crash
            assert pipeline.take(states[1]) is None
        finally:
            pipeline.close()
