"""The cube planner: a disjoint, exhaustive initial-mapping partition."""

from math import perm

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import cx
from repro.hardware.topologies import line_architecture, ring_architecture
from repro.parallel import CubePlan, plan_cubes


def star_circuit(num_qubits: int) -> QuantumCircuit:
    """Qubit 0 talks to everyone: an unambiguous highest-degree qubit."""
    return QuantumCircuit(num_qubits,
                          [cx(0, other) for other in range(1, num_qubits)],
                          name=f"star_{num_qubits}")


class TestPlanCubes:
    def test_empty_circuit_yields_no_cubes(self):
        plan = plan_cubes(QuantumCircuit(3), ring_architecture(4))
        assert plan == CubePlan((), ())

    def test_cubes_are_disjoint(self):
        plan = plan_cubes(star_circuit(4), ring_architecture(5))
        placements = [tuple(sorted(cube.items())) for cube in plan.cubes]
        assert len(placements) == len(set(placements))

    def test_cubes_are_exhaustive(self):
        """Fixing k qubits enumerates every injective placement of them."""
        arch = ring_architecture(5)
        plan = plan_cubes(star_circuit(4), arch, min_cubes=2)
        k = len(plan.qubits)
        assert len(plan.cubes) == perm(arch.num_qubits, k)
        assert all(tuple(sorted(cube)) == tuple(sorted(plan.qubits))
                   for cube in plan.cubes)

    def test_highest_degree_qubit_fixed_first(self):
        plan = plan_cubes(star_circuit(4), ring_architecture(5))
        assert plan.qubits[0] == 0  # the star centre

    def test_min_cubes_grows_the_fixed_set(self):
        arch = ring_architecture(4)
        shallow = plan_cubes(star_circuit(3), arch, min_cubes=2)
        deep = plan_cubes(star_circuit(3), arch, min_cubes=8)
        assert len(shallow.qubits) < len(deep.qubits)
        assert len(deep.cubes) >= 8

    def test_cubes_ordered_densest_placement_first(self):
        # On a line the endpoints have degree 1 and the middle degree 2, so
        # the first cube must place the fixed qubit on an interior vertex.
        arch = line_architecture(5)
        plan = plan_cubes(star_circuit(3), arch, min_cubes=2)
        degrees = [sum(arch.degree(place) for place in cube.values())
                   for cube in plan.cubes]
        assert degrees == sorted(degrees, reverse=True)

    def test_max_fixed_caps_plan_depth(self):
        plan = plan_cubes(star_circuit(5), ring_architecture(6),
                          min_cubes=10 ** 6, max_fixed=2)
        assert len(plan.qubits) <= 2
