"""Cube-and-conquer end-to-end: serial-identical cost, pruning, status."""

import pytest

from repro.circuits.random_circuits import random_circuit
from repro.core import SatMapRouter, verify_routing
from repro.core.result import RoutingStatus
from repro.hardware.topologies import grid_architecture, ring_architecture
from repro.obs.metrics import default_registry


@pytest.fixture()
def instance():
    circuit = random_circuit(4, 8, seed=3)
    return circuit, ring_architecture(5)


class TestCubedMonolithic:
    def test_cost_identical_to_serial_and_optimal(self, instance):
        """The tentpole guarantee: min over cube optima == serial optimum."""
        circuit, arch = instance
        serial = SatMapRouter(time_budget=120).route(circuit, arch)
        cubed = SatMapRouter(time_budget=120, cube_workers=1).route(circuit, arch)
        assert serial.status is RoutingStatus.OPTIMAL
        assert cubed.status is RoutingStatus.OPTIMAL
        assert cubed.swap_count == serial.swap_count
        verify_routing(circuit, cubed.routed_circuit, cubed.initial_mapping, arch)

    def test_cost_identical_with_process_workers(self, instance):
        circuit, arch = instance
        serial = SatMapRouter(time_budget=120).route(circuit, arch)
        cubed = SatMapRouter(time_budget=120, cube_workers=2).route(circuit, arch)
        assert cubed.solved
        assert cubed.swap_count == serial.swap_count
        verify_routing(circuit, cubed.routed_circuit, cubed.initial_mapping, arch)

    def test_bound_sharing_prunes_dominated_cubes(self, instance):
        circuit, arch = instance
        before = default_registry().counter(
            "repro_parallel_cubes_pruned_total").value()
        result = SatMapRouter(time_budget=120, cube_workers=1).route(circuit, arch)
        assert result.solver_stats["cubes"] >= 2
        assert result.solver_stats["cubes_pruned"] >= 1
        after = default_registry().counter(
            "repro_parallel_cubes_pruned_total").value()
        assert after - before >= result.solver_stats["cubes_pruned"]

    def test_notes_describe_the_race(self, instance):
        circuit, arch = instance
        result = SatMapRouter(time_budget=120, cube_workers=1).route(circuit, arch)
        assert "cube-and-conquer" in result.notes
        assert "pruned by bound" in result.notes

    def test_single_cube_plan_falls_back_to_serial(self):
        # One two-qubit gate between two qubits on a two-qubit device: only
        # two placements exist, but a one-gate circuit needs no conquering
        # beyond the plan; make sure tiny instances still route.
        circuit = random_circuit(2, 1, seed=0)
        arch = ring_architecture(3)
        result = SatMapRouter(time_budget=60, cube_workers=4).route(circuit, arch)
        assert result.solved
        verify_routing(circuit, result.routed_circuit, result.initial_mapping, arch)

    def test_cubed_slice_zero_in_sliced_route(self):
        """slice 0 of a sliced solve runs the cube race; later slices serial."""
        circuit = random_circuit(4, 10, seed=5)
        arch = grid_architecture(2, 3)
        router = SatMapRouter(slice_size=4, time_budget=120, cube_workers=1)
        result = router.route(circuit, arch)
        assert result.solved
        assert result.solver_stats.get("cubes", 0) >= 2
        verify_routing(circuit, result.routed_circuit, result.initial_mapping, arch)
