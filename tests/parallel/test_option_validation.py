"""RouterSpec / constructor validation for the parallel options."""

import pytest

from repro.api.registry import get_router
from repro.api.spec import RouterSpec
from repro.core import SatMapRouter


class TestConstructorValidation:
    def test_cube_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="cube_workers"):
            SatMapRouter(cube_workers=0)
        with pytest.raises(ValueError, match="cube_workers"):
            SatMapRouter(cube_workers=-2)

    def test_cube_workers_rejects_bool_and_non_int(self):
        with pytest.raises(ValueError, match="cube_workers"):
            SatMapRouter(cube_workers=True)
        with pytest.raises(ValueError, match="cube_workers"):
            SatMapRouter(cube_workers="four")

    def test_cube_workers_requires_linear_strategy(self):
        with pytest.raises(ValueError, match="linear"):
            SatMapRouter(cube_workers=2, strategy="rc2")
        with pytest.raises(ValueError, match="linear"):
            SatMapRouter(cube_workers=2, strategy="core-guided")

    def test_pipeline_slices_must_be_bool(self):
        with pytest.raises(ValueError, match="pipeline_slices"):
            SatMapRouter(pipeline_slices="yes", slice_size=4)

    def test_pipeline_slices_requires_slicing(self):
        with pytest.raises(ValueError, match="slice_size"):
            SatMapRouter(pipeline_slices=True, slice_size=None)

    def test_pipeline_slices_requires_incremental_sessions(self):
        with pytest.raises(ValueError, match="incremental"):
            SatMapRouter(pipeline_slices=True, slice_size=4, incremental=False)

    def test_defaults_stay_serial(self):
        router = SatMapRouter()
        assert router.cube_workers is None
        assert router.pipeline_slices is False


class TestSpecWiring:
    def test_cube_workers_flows_through_spec(self):
        router = get_router(RouterSpec.from_string("satmap:cube_workers=3"))
        assert router.cube_workers == 3

    def test_pipeline_slices_flows_through_spec(self):
        router = get_router(
            RouterSpec.from_string("satmap:pipeline_slices=true,slice_size=4"))
        assert router.pipeline_slices is True

    def test_invalid_spec_value_is_rejected_with_clear_error(self):
        with pytest.raises(ValueError, match="cube_workers"):
            get_router(RouterSpec.from_string("satmap:cube_workers=0"))

    def test_noise_aware_variant_accepts_the_options(self):
        router = get_router(
            RouterSpec.from_string("noise-satmap:cube_workers=2"))
        assert router.cube_workers == 2
