"""The architecture's CSR adjacency and flat distance matrix.

Both are derived once per instance and shared by every router; these tests
pin them to the set-based adjacency and the nested distance matrix they
replaced in the hot paths.
"""

import pytest

from repro.hardware.architecture import Architecture
from repro.hardware.topologies import (
    grid_architecture,
    heavy_hex_architecture,
    line_architecture,
    ring_architecture,
    tokyo_architecture,
)

ARCHITECTURES = [
    line_architecture(7),
    ring_architecture(6),
    grid_architecture(3, 4),
    tokyo_architecture(),
    heavy_hex_architecture(3),
    Architecture(5, [(0, 1), (3, 4)], name="two-islands"),
]


@pytest.mark.parametrize("architecture", ARCHITECTURES,
                         ids=lambda a: a.name)
def test_neighbors_sorted_matches_adjacency_sets(architecture):
    for qubit in range(architecture.num_qubits):
        run = architecture.neighbors_sorted(qubit)
        assert run == sorted(architecture.neighbors(qubit))
        assert architecture.degree(qubit) == len(run)


@pytest.mark.parametrize("architecture", ARCHITECTURES,
                         ids=lambda a: a.name)
def test_flat_distances_match_nested_view(architecture):
    flat = architecture.flat_distance_matrix()
    nested = architecture.distance_matrix()
    n = architecture.num_qubits
    assert len(flat) == n * n
    for a in range(n):
        for b in range(n):
            assert flat[a * n + b] == nested[a][b]
            assert architecture.distance(a, b) == nested[a][b]


@pytest.mark.parametrize("architecture", ARCHITECTURES,
                         ids=lambda a: a.name)
def test_flat_matrix_is_computed_once_and_shared(architecture):
    assert architecture.flat_distance_matrix() is architecture.flat_distance_matrix()


@pytest.mark.parametrize("architecture", ARCHITECTURES,
                         ids=lambda a: a.name)
def test_reachability_agrees_with_bfs(architecture):
    n = architecture.num_qubits
    for source in range(n):
        seen = {source}
        stack = [source]
        while stack:
            for neighbor in architecture.neighbors_sorted(stack.pop()):
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        for target in range(n):
            assert architecture.reachable(source, target) == (target in seen)


def test_distance_one_is_exactly_adjacency():
    architecture = tokyo_architecture()
    n = architecture.num_qubits
    flat = architecture.flat_distance_matrix()
    for a in range(n):
        for b in range(n):
            assert (flat[a * n + b] == 1) == architecture.are_adjacent(a, b)
