"""Tests for the named device catalogue."""

import pytest

from repro.hardware.devices import (
    architecture_properties,
    aspen_architecture,
    device_catalog,
    get_architecture,
    guadalupe_architecture,
    melbourne_architecture,
    ourense_architecture,
    sycamore_architecture,
    trapped_ion_architecture,
    yorktown_architecture,
)


class TestNamedDevices:
    def test_yorktown_shape(self):
        device = yorktown_architecture()
        assert device.num_qubits == 5
        assert device.degree(2) == 4  # the middle of the bowtie

    def test_ourense_is_a_tree(self):
        device = ourense_architecture()
        assert device.num_qubits == 5
        assert len(device.edges) == 4
        assert device.is_connected()

    def test_melbourne_is_a_ladder(self):
        device = melbourne_architecture()
        assert device.num_qubits == 14
        assert device.is_connected()
        # A 2x7 ladder has 7 rungs + 2*6 rails = 19 edges.
        assert len(device.edges) == 19

    def test_guadalupe_heavy_hex(self):
        device = guadalupe_architecture()
        assert device.num_qubits == 16
        assert device.is_connected()
        # Heavy-hex degree never exceeds 3.
        assert max(device.degree(q) for q in range(16)) == 3
        # Four spur qubits have degree 1.
        assert sum(1 for q in range(16) if device.degree(q) == 1) == 4

    def test_sycamore_lattice(self):
        device = sycamore_architecture(3, 4)
        assert device.num_qubits == 12
        assert device.is_connected()

    def test_sycamore_rejects_tiny_grid(self):
        with pytest.raises(ValueError):
            sycamore_architecture(1, 5)

    def test_aspen_octagons(self):
        device = aspen_architecture(2)
        assert device.num_qubits == 16
        assert device.is_connected()
        # Each octagon contributes 8 ring edges; one fused joint adds 2.
        assert len(device.edges) == 18

    def test_aspen_rejects_zero_octagons(self):
        with pytest.raises(ValueError):
            aspen_architecture(0)

    def test_trapped_ion_fully_connected(self):
        device = trapped_ion_architecture(6)
        assert len(device.edges) == 15
        assert device.diameter() == 1


class TestCatalog:
    def test_every_entry_builds_and_is_connected(self):
        for name, constructor in device_catalog().items():
            device = constructor()
            assert device.num_qubits >= 5, name
            assert device.is_connected(), name

    def test_get_architecture_by_name(self):
        assert get_architecture("tokyo").num_qubits == 20

    def test_get_architecture_unknown_name(self):
        with pytest.raises(KeyError):
            get_architecture("not-a-device")

    def test_tokyo_variants_ordered_by_degree(self):
        sparse = get_architecture("tokyo-")
        medium = get_architecture("tokyo")
        dense = get_architecture("tokyo+")
        assert sparse.average_degree < medium.average_degree < dense.average_degree


class TestArchitectureProperties:
    def test_properties_of_ring(self):
        from repro.hardware.topologies import ring_architecture

        properties = architecture_properties(ring_architecture(8))
        assert properties["num_qubits"] == 8
        assert properties["average_degree"] == pytest.approx(2.0)
        assert properties["diameter"] == 4

    def test_properties_keys_stable(self):
        properties = architecture_properties(yorktown_architecture())
        assert set(properties) == {
            "num_qubits", "num_edges", "average_degree", "max_degree",
            "min_degree", "diameter", "average_distance",
        }

    def test_average_distance_positive_for_non_complete_graph(self):
        properties = architecture_properties(melbourne_architecture())
        assert properties["average_distance"] > 1.0
