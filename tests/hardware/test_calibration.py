"""Tests for the full device calibration model."""

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import cx, h, swap
from repro.hardware.calibration import DeviceCalibration, QubitCalibration
from repro.hardware.devices import yorktown_architecture
from repro.hardware.topologies import line_architecture


def _circuit(num_qubits, gates):
    circuit = QuantumCircuit(num_qubits)
    circuit.extend(gates)
    return circuit


class TestQubitCalibration:
    def test_valid_values(self):
        data = QubitCalibration(t1=100_000, t2=80_000, readout_error=0.02,
                                single_qubit_error=0.001)
        assert data.t1 == 100_000

    @pytest.mark.parametrize("kwargs", [
        {"t1": 0, "t2": 1, "readout_error": 0.1, "single_qubit_error": 0.01},
        {"t1": 1, "t2": -5, "readout_error": 0.1, "single_qubit_error": 0.01},
        {"t1": 1, "t2": 1, "readout_error": 1.5, "single_qubit_error": 0.01},
        {"t1": 1, "t2": 1, "readout_error": 0.1, "single_qubit_error": -0.1},
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            QubitCalibration(**kwargs)


class TestDeviceCalibration:
    def test_synthetic_is_deterministic(self):
        architecture = yorktown_architecture()
        first = DeviceCalibration.synthetic(architecture, seed=3)
        second = DeviceCalibration.synthetic(architecture, seed=3)
        assert first.two_qubit_error == second.two_qubit_error
        assert first.qubits[0].t1 == second.qubits[0].t1

    def test_different_seeds_differ(self):
        architecture = yorktown_architecture()
        first = DeviceCalibration.synthetic(architecture, seed=1)
        second = DeviceCalibration.synthetic(architecture, seed=2)
        assert first.two_qubit_error != second.two_qubit_error

    def test_missing_qubit_rejected(self):
        architecture = line_architecture(3)
        base = DeviceCalibration.synthetic(architecture)
        with pytest.raises(ValueError):
            DeviceCalibration(architecture,
                              {0: base.qubits[0], 1: base.qubits[1]},
                              dict(base.two_qubit_error))

    def test_missing_edge_rejected(self):
        architecture = line_architecture(3)
        base = DeviceCalibration.synthetic(architecture)
        with pytest.raises(ValueError):
            DeviceCalibration(architecture, dict(base.qubits), {(0, 1): 0.01})

    def test_edge_error_lookup_is_symmetric(self):
        calibration = DeviceCalibration.synthetic(line_architecture(3))
        assert calibration.edge_error(0, 1) == calibration.edge_error(1, 0)

    def test_edge_error_unknown_edge(self):
        calibration = DeviceCalibration.synthetic(line_architecture(3))
        with pytest.raises(KeyError):
            calibration.edge_error(0, 2)

    def test_best_edges_sorted_by_error(self):
        calibration = DeviceCalibration.synthetic(yorktown_architecture())
        best = calibration.best_edges(count=3)
        errors = [calibration.two_qubit_error[edge] for edge in best]
        assert errors == sorted(errors)

    def test_worst_qubits_count(self):
        calibration = DeviceCalibration.synthetic(yorktown_architecture())
        assert len(calibration.worst_qubits(2)) == 2

    def test_to_noise_model_preserves_errors(self):
        calibration = DeviceCalibration.synthetic(line_architecture(4))
        noise = calibration.to_noise_model()
        for edge, error in calibration.two_qubit_error.items():
            assert noise.two_qubit_error[edge] == error


class TestFidelityEstimation:
    def test_empty_circuit_has_unit_fidelity_without_readout(self):
        calibration = DeviceCalibration.synthetic(line_architecture(2))
        fidelity = calibration.estimate_fidelity(QuantumCircuit(2),
                                                 include_readout=False)
        assert fidelity == pytest.approx(1.0)

    def test_more_gates_lower_fidelity(self):
        calibration = DeviceCalibration.synthetic(line_architecture(3))
        short = _circuit(3, [cx(0, 1)])
        long = _circuit(3, [cx(0, 1), cx(1, 2), cx(0, 1), cx(1, 2)])
        assert (calibration.estimate_fidelity(long)
                < calibration.estimate_fidelity(short))

    def test_swap_counts_as_three_cnots(self):
        calibration = DeviceCalibration.synthetic(line_architecture(2))
        with_swap = _circuit(2, [swap(0, 1)])
        with_three_cx = _circuit(2, [cx(0, 1), cx(1, 0), cx(0, 1)])
        f_swap = calibration.estimate_fidelity(with_swap, include_decoherence=False)
        f_cx = calibration.estimate_fidelity(with_three_cx, include_decoherence=False)
        assert f_swap == pytest.approx(f_cx)

    def test_readout_only_counts_used_qubits(self):
        calibration = DeviceCalibration.synthetic(line_architecture(4))
        one_qubit = _circuit(4, [h(0)])
        two_qubits = _circuit(4, [h(0), h(1)])
        assert (calibration.estimate_fidelity(one_qubit)
                > calibration.estimate_fidelity(two_qubits))

    def test_decoherence_penalises_idle_qubits(self):
        calibration = DeviceCalibration.synthetic(line_architecture(2))
        # Qubit 1 idles between its two CX gates while qubit 0 does work.
        idle_heavy = _circuit(2, [cx(0, 1), h(0), h(0), h(0), h(0), cx(0, 1)])
        with_decoherence = calibration.estimate_fidelity(idle_heavy)
        without_decoherence = calibration.estimate_fidelity(
            idle_heavy, include_decoherence=False)
        assert with_decoherence < without_decoherence

    def test_compare_routings_ranks_best_first(self):
        calibration = DeviceCalibration.synthetic(line_architecture(3))
        cheap = _circuit(3, [cx(0, 1)])
        expensive = _circuit(3, [cx(0, 1), swap(1, 2), cx(0, 1)])
        ranking = calibration.compare_routings({"cheap": cheap, "expensive": expensive})
        assert ranking[0][0] == "cheap"
        assert ranking[0][1] >= ranking[1][1]
