"""Tests for the connectivity-graph model."""

import pytest

from repro.hardware.architecture import Architecture


def path4() -> Architecture:
    return Architecture(4, [(0, 1), (1, 2), (2, 3)], name="path4")


class TestConstruction:
    def test_edges_are_normalised_and_deduplicated(self):
        arch = Architecture(3, [(1, 0), (0, 1), (2, 1)])
        assert arch.edges == [(0, 1), (1, 2)]

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            Architecture(3, [(1, 1)])

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(ValueError):
            Architecture(3, [(0, 3)])

    def test_rejects_zero_qubits(self):
        with pytest.raises(ValueError):
            Architecture(0, [])


class TestQueries:
    def test_neighbors(self):
        assert path4().neighbors(1) == {0, 2}

    def test_are_adjacent_symmetric(self):
        arch = path4()
        assert arch.are_adjacent(0, 1) and arch.are_adjacent(1, 0)
        assert not arch.are_adjacent(0, 2)

    def test_degree_and_average_degree(self):
        arch = path4()
        assert arch.degree(0) == 1 and arch.degree(1) == 2
        assert arch.average_degree == pytest.approx(1.5)

    def test_distance_matrix(self):
        arch = path4()
        assert arch.distance(0, 3) == 3
        assert arch.distance(2, 2) == 0
        assert arch.distance(3, 1) == 2

    def test_diameter(self):
        assert path4().diameter() == 3

    def test_is_connected(self):
        assert path4().is_connected()
        disconnected = Architecture(4, [(0, 1), (2, 3)])
        assert not disconnected.is_connected()

    def test_disconnected_distance_is_sentinel(self):
        disconnected = Architecture(4, [(0, 1), (2, 3)])
        assert disconnected.distance(0, 3) == 4  # num_qubits sentinel

    def test_shortest_path_endpoints(self):
        path = path4().shortest_path(0, 3)
        assert path[0] == 0 and path[-1] == 3
        assert len(path) == 4

    def test_shortest_path_same_node(self):
        assert path4().shortest_path(2, 2) == [2]

    def test_shortest_path_steps_are_edges(self):
        arch = path4()
        path = arch.shortest_path(3, 0)
        assert all(arch.are_adjacent(a, b) for a, b in zip(path, path[1:]))

    def test_shortest_path_unreachable_raises(self):
        disconnected = Architecture(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            disconnected.shortest_path(0, 2)


class TestSubgraph:
    def test_subgraph_reindexes(self):
        arch = path4().subgraph([1, 2, 3])
        assert arch.num_qubits == 3
        assert arch.edges == [(0, 1), (1, 2)]

    def test_subgraph_drops_external_edges(self):
        arch = path4().subgraph([0, 2])
        assert arch.edges == []

    def test_subgraph_name(self):
        assert path4().subgraph([0, 1], name="sub").name == "sub"
