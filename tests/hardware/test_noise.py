"""Tests for the synthetic noise model."""

import math

import pytest

from repro.hardware.architecture import Architecture
from repro.hardware.noise import NoiseModel
from repro.hardware.topologies import line_architecture, tokyo_architecture


class TestConstruction:
    def test_uniform_model(self):
        arch = line_architecture(4)
        noise = NoiseModel.uniform(arch, two_qubit_error=0.01)
        assert noise.edge_error(0, 1) == pytest.approx(0.01)
        assert noise.edge_error(2, 1) == pytest.approx(0.01)

    def test_missing_edge_rate_rejected(self):
        arch = line_architecture(3)
        with pytest.raises(ValueError):
            NoiseModel(arch, {(0, 1): 0.01})  # (1, 2) missing

    def test_out_of_range_rate_rejected(self):
        arch = line_architecture(3)
        with pytest.raises(ValueError):
            NoiseModel(arch, {(0, 1): 0.01, (1, 2): 1.5})

    def test_synthetic_is_deterministic(self):
        arch = line_architecture(5)
        first = NoiseModel.synthetic(arch, seed=3)
        second = NoiseModel.synthetic(arch, seed=3)
        assert first.two_qubit_error == second.two_qubit_error

    def test_synthetic_rates_within_bounds(self):
        arch = tokyo_architecture()
        noise = NoiseModel.synthetic(arch, low=0.01, high=0.05)
        assert all(0.01 <= rate <= 0.05 for rate in noise.two_qubit_error.values())

    def test_fake_tokyo_covers_all_edges(self):
        noise = NoiseModel.fake_tokyo()
        assert set(noise.two_qubit_error) == set(tokyo_architecture().edges)


class TestQueries:
    def setup_method(self):
        self.arch = line_architecture(3)
        self.noise = NoiseModel.uniform(self.arch, two_qubit_error=0.02)

    def test_edge_error_order_independent(self):
        assert self.noise.edge_error(1, 0) == self.noise.edge_error(0, 1)

    def test_non_edge_rejected(self):
        with pytest.raises(KeyError):
            self.noise.edge_error(0, 2)

    def test_cnot_fidelity(self):
        assert self.noise.cnot_fidelity(0, 1) == pytest.approx(0.98)

    def test_swap_fidelity_is_cubed(self):
        assert self.noise.swap_fidelity(0, 1) == pytest.approx(0.98 ** 3)

    def test_swap_weight_positive_and_monotone(self):
        arch = Architecture(3, [(0, 1), (1, 2)])
        noise = NoiseModel(arch, {(0, 1): 0.01, (1, 2): 0.05})
        assert noise.swap_weight(0, 1) >= 1
        assert noise.swap_weight(1, 2) > noise.swap_weight(0, 1)

    def test_circuit_fidelity_product(self):
        edges = [(0, 1), (1, 2), (0, 1)]
        expected = 0.98 ** 3
        assert self.noise.circuit_fidelity(edges) == pytest.approx(expected)

    def test_circuit_log_fidelity_matches_log_of_fidelity(self):
        edges = [(0, 1), (1, 2)]
        assert math.exp(self.noise.circuit_log_fidelity(edges)) == pytest.approx(
            self.noise.circuit_fidelity(edges))

    def test_empty_circuit_has_unit_fidelity(self):
        assert self.noise.circuit_fidelity([]) == pytest.approx(1.0)
