"""Tests for the standard coupling graphs, especially the Tokyo family (Fig. 9)."""

import pytest

from repro.hardware.topologies import (
    full_architecture,
    grid_architecture,
    heavy_hex_architecture,
    line_architecture,
    reduced_tokyo_architecture,
    ring_architecture,
    tokyo_architecture,
    tokyo_minus_architecture,
    tokyo_plus_architecture,
)


class TestTokyoFamily:
    def test_all_have_twenty_qubits(self):
        for factory in (tokyo_minus_architecture, tokyo_architecture, tokyo_plus_architecture):
            assert factory().num_qubits == 20

    def test_edge_counts(self):
        assert len(tokyo_minus_architecture().edges) == 31  # 4x5 grid
        assert len(tokyo_architecture().edges) == 43  # grid + 12 alternating diagonals
        assert len(tokyo_plus_architecture().edges) == 55  # grid + 24 diagonals

    def test_tokyo_average_degree_is_halfway(self):
        sparse = tokyo_minus_architecture().average_degree
        medium = tokyo_architecture().average_degree
        dense = tokyo_plus_architecture().average_degree
        assert medium == pytest.approx((sparse + dense) / 2)

    def test_tokyo_minus_is_subgraph_of_tokyo(self):
        tokyo_edges = set(tokyo_architecture().edges)
        assert set(tokyo_minus_architecture().edges) <= tokyo_edges

    def test_tokyo_is_subgraph_of_tokyo_plus(self):
        plus_edges = set(tokyo_plus_architecture().edges)
        assert set(tokyo_architecture().edges) <= plus_edges

    def test_all_connected(self):
        for factory in (tokyo_minus_architecture, tokyo_architecture, tokyo_plus_architecture):
            assert factory().is_connected()

    def test_diameters_shrink_with_connectivity(self):
        assert (tokyo_plus_architecture().diameter()
                <= tokyo_architecture().diameter()
                <= tokyo_minus_architecture().diameter())

    def test_grid_edges_present(self):
        tokyo = tokyo_architecture()
        assert tokyo.are_adjacent(0, 1)
        assert tokyo.are_adjacent(0, 5)
        assert not tokyo.are_adjacent(0, 2)

    def test_reduced_tokyo(self):
        reduced = reduced_tokyo_architecture(8)
        assert reduced.num_qubits == 8
        assert reduced.is_connected()
        full_edges = set(tokyo_architecture().edges)
        assert all(edge in full_edges for edge in reduced.edges)

    def test_reduced_tokyo_bounds(self):
        with pytest.raises(ValueError):
            reduced_tokyo_architecture(1)
        with pytest.raises(ValueError):
            reduced_tokyo_architecture(21)


class TestGenericTopologies:
    def test_line(self):
        line = line_architecture(5)
        assert len(line.edges) == 4
        assert line.diameter() == 4

    def test_ring(self):
        ring = ring_architecture(6)
        assert len(ring.edges) == 6
        assert ring.diameter() == 3

    def test_ring_needs_three_qubits(self):
        with pytest.raises(ValueError):
            ring_architecture(2)

    def test_grid(self):
        grid = grid_architecture(3, 4)
        assert grid.num_qubits == 12
        assert len(grid.edges) == 3 * 3 + 4 * 2  # horizontal + vertical
        assert grid.is_connected()

    def test_grid_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            grid_architecture(0, 3)

    def test_full(self):
        full = full_architecture(5)
        assert len(full.edges) == 10
        assert full.diameter() == 1

    def test_heavy_hex(self):
        heavy = heavy_hex_architecture()
        assert heavy.num_qubits == 27
        assert heavy.is_connected()
        assert max(heavy.degree(q) for q in range(27)) <= 3

    def test_heavy_hex_unknown_distance(self):
        with pytest.raises(ValueError):
            heavy_hex_architecture(distance=5)
