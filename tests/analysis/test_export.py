"""Tests for CSV/JSON export of experiment records."""

import json

from repro.analysis.experiments import ExperimentRecord, SuiteComparison
from repro.analysis.export import (
    comparison_records,
    records_from_csv,
    records_to_csv,
    records_to_json,
    save_comparison_csv,
    save_comparison_json,
)


def make_record(router="SATMAP", circuit="c0", solved=True) -> ExperimentRecord:
    return ExperimentRecord(
        router=router, circuit=circuit, num_qubits=4, num_two_qubit_gates=10,
        solved=solved, optimal=solved, swap_count=2 if solved else -1,
        added_cnots=6 if solved else -1, solve_time=0.5, status="optimal",
        notes="")


class TestCsv:
    def test_header_and_rows(self):
        text = records_to_csv([make_record(), make_record(router="SABRE")])
        lines = text.strip().splitlines()
        assert lines[0].startswith("router,circuit,")
        assert len(lines) == 3

    def test_roundtrip(self):
        original = [make_record(), make_record(router="SABRE", solved=False)]
        again = records_from_csv(records_to_csv(original))
        assert again == original

    def test_save_comparison(self, tmp_path):
        comparison = SuiteComparison()
        comparison.add(make_record())
        comparison.add(make_record(router="SABRE"))
        path = tmp_path / "out.csv"
        save_comparison_csv(comparison, path)
        assert len(records_from_csv(path.read_text())) == 2


class TestJson:
    def test_json_is_valid_and_complete(self):
        payload = json.loads(records_to_json([make_record()]))
        assert payload[0]["router"] == "SATMAP"
        assert payload[0]["swap_count"] == 2

    def test_save_comparison_json(self, tmp_path):
        comparison = SuiteComparison()
        comparison.add(make_record())
        path = tmp_path / "out.json"
        save_comparison_json(comparison, path)
        assert json.loads(path.read_text())[0]["circuit"] == "c0"


class TestComparisonFlattening:
    def test_router_major_order(self):
        comparison = SuiteComparison()
        comparison.add(make_record(router="B", circuit="x"))
        comparison.add(make_record(router="A", circuit="y"))
        flattened = comparison_records(comparison)
        assert [record.router for record in flattened] == ["A", "B"]
