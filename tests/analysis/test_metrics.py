"""Tests for the analysis metrics (cost ratios, solve statistics)."""

import math

import pytest

from repro.analysis.metrics import (
    cost_ratio,
    geometric_mean,
    mean_cost_ratio,
    solve_statistics,
    speedup_factors,
    undefined_ratio_count,
    zero_cost_fraction,
)
from repro.core.result import RoutingResult, RoutingStatus


def result(name, status, swaps=0, time=1.0):
    return RoutingResult(status=status, router_name="r", circuit_name=name,
                         swap_count=swaps, solve_time=time)


class TestCostRatio:
    def test_plain_ratio(self):
        assert cost_ratio(30, 10) == pytest.approx(3.0)

    def test_both_zero_is_one(self):
        assert cost_ratio(0, 0) == 1.0

    def test_satmap_zero_and_heuristic_positive_is_undefined(self):
        assert cost_ratio(6, 0) is None

    def test_heuristic_zero_and_satmap_positive(self):
        assert cost_ratio(0, 3) == 0.0

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            cost_ratio(-1, 2)

    def test_mean_ignores_undefined(self):
        assert mean_cost_ratio([2.0, None, 4.0]) == pytest.approx(3.0)

    def test_mean_of_all_undefined_is_nan(self):
        assert math.isnan(mean_cost_ratio([None, None]))

    def test_undefined_count(self):
        assert undefined_ratio_count([1.0, None, None, 2.0]) == 2


class TestAggregates:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_empty_is_nan(self):
        assert math.isnan(geometric_mean([]))

    def test_solve_statistics(self):
        results = [
            result("a", RoutingStatus.OPTIMAL, swaps=1, time=2.0),
            result("b", RoutingStatus.TIMEOUT),
            result("c", RoutingStatus.FEASIBLE, swaps=0, time=4.0),
        ]
        stats = solve_statistics(results, sizes={"a": 10, "b": 100, "c": 25})
        assert stats.solved == 2
        assert stats.total == 3
        assert stats.largest_two_qubit_gates == 25
        assert stats.mean_time == pytest.approx(3.0)
        assert stats.solve_fraction == pytest.approx(2 / 3)

    def test_speedup_factors(self):
        factors = speedup_factors({"a": 10.0, "b": 2.0}, {"a": 1.0, "b": 4.0, "c": 1.0})
        assert sorted(factors) == [0.5, 10.0]

    def test_zero_cost_fraction(self):
        results = [
            result("a", RoutingStatus.OPTIMAL, swaps=0),
            result("b", RoutingStatus.OPTIMAL, swaps=3),
            result("c", RoutingStatus.TIMEOUT),
        ]
        assert zero_cost_fraction(results) == pytest.approx(0.5)

    def test_zero_cost_fraction_empty(self):
        assert zero_cost_fraction([]) == 0.0
