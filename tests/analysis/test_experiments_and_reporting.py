"""Tests for the experiment harness, the scaled suites, and reporting."""

import math

import pytest

from repro.analysis.experiments import (
    ExperimentRecord,
    SuiteComparison,
    run_many_routers,
    run_router_on_suite,
)
from repro.analysis.reporting import (
    render_cost_ratio_summary,
    render_records_table,
    render_solve_rate_table,
    render_table,
)
from repro.analysis.suite import (
    default_architecture,
    mini_tokyo_family,
    named_small_suite,
    qaoa_suite,
    small_suite,
    suite_sizes,
    tiny_suite,
)
from repro.baselines import SabreRouter
from repro.circuits.library import BenchmarkCircuit
from repro.circuits.random_circuits import random_circuit
from repro.core import SatMapRouter
from repro.core.result import RoutingResult, RoutingStatus
from repro.hardware.topologies import grid_architecture


class TestSuites:
    def test_tiny_suite_shape(self):
        suite = tiny_suite()
        assert len(suite) == 12
        assert all(3 <= bench.num_qubits <= 5 for bench in suite)
        assert all(bench.circuit.num_two_qubit_gates == bench.num_two_qubit_gates
                   for bench in suite)

    def test_small_suite_extends_tiny(self):
        assert len(small_suite()) > len(tiny_suite())

    def test_named_small_suite_respects_bound(self):
        assert all(bench.num_two_qubit_gates <= 40 for bench in named_small_suite(40))

    def test_qaoa_suite_rows(self):
        instances = qaoa_suite(qubit_counts=(4, 6), cycle_counts=(2,))
        assert len(instances) == 2
        for instance in instances:
            assert instance.circuit.num_two_qubit_gates == (
                instance.cycles * instance.block.num_two_qubit_gates)

    def test_default_architecture(self):
        arch = default_architecture(8)
        assert arch.num_qubits == 8 and arch.is_connected()

    def test_mini_tokyo_family_degree_halfway(self):
        sparse, medium, dense = mini_tokyo_family()
        assert medium.average_degree == pytest.approx(
            (sparse.average_degree + dense.average_degree) / 2)

    def test_suite_sizes_lookup(self):
        suite = tiny_suite()
        sizes = suite_sizes(suite)
        assert sizes[suite[0].name] == suite[0].num_two_qubit_gates


class TestExperimentHarness:
    def _mini_suite(self):
        return [
            BenchmarkCircuit("mini_a", 4, 6, random_circuit(4, 6, seed=1, name="mini_a")),
            BenchmarkCircuit("mini_b", 4, 8, random_circuit(4, 8, seed=2, name="mini_b")),
        ]

    def test_run_router_on_suite(self):
        records = run_router_on_suite(lambda: SabreRouter(), self._mini_suite(),
                                      grid_architecture(2, 2))
        assert len(records) == 2
        assert all(record.solved for record in records)
        assert all(record.router == "SABRE" for record in records)

    def test_run_many_routers_builds_comparison(self):
        comparison = run_many_routers(
            {"SABRE": lambda: SabreRouter(),
             "NL-SATMAP": lambda: SatMapRouter(time_budget=30)},
            self._mini_suite(), grid_architecture(2, 2))
        assert set(comparison.routers()) == {"SABRE", "NL-SATMAP"}
        assert comparison.solved_count("SABRE") == 2

    def test_cost_ratio_computation(self):
        comparison = SuiteComparison()
        bench = self._mini_suite()[0]
        sabre = RoutingResult(RoutingStatus.FEASIBLE, "SABRE", circuit_name=bench.name,
                              swap_count=4)
        satmap = RoutingResult(RoutingStatus.OPTIMAL, "SATMAP", circuit_name=bench.name,
                               swap_count=2)
        comparison.add(ExperimentRecord.from_result(sabre, bench))
        comparison.add(ExperimentRecord.from_result(satmap, bench))
        ratios = comparison.cost_ratios("SABRE", "SATMAP")
        assert ratios == [2.0]
        assert comparison.mean_cost_ratio("SABRE", "SATMAP") == pytest.approx(2.0)

    def test_unsolved_records_are_excluded_from_ratios(self):
        comparison = SuiteComparison()
        bench = self._mini_suite()[0]
        timeout = RoutingResult(RoutingStatus.TIMEOUT, "SLOW", circuit_name=bench.name)
        solved = RoutingResult(RoutingStatus.OPTIMAL, "SATMAP", circuit_name=bench.name,
                               swap_count=1)
        comparison.add(ExperimentRecord.from_result(timeout, bench))
        comparison.add(ExperimentRecord.from_result(solved, bench))
        assert comparison.cost_ratios("SLOW", "SATMAP") == []

    def test_largest_solved_and_mean_time(self):
        comparison = SuiteComparison()
        for name, gates, solved in (("a", 10, True), ("b", 50, True), ("c", 90, False)):
            bench = BenchmarkCircuit(name, 4, gates, random_circuit(4, 5, seed=3))
            status = RoutingStatus.OPTIMAL if solved else RoutingStatus.TIMEOUT
            record = ExperimentRecord.from_result(
                RoutingResult(status, "T", circuit_name=name, solve_time=2.0), bench)
            comparison.add(record)
        assert comparison.largest_solved("T") == 50
        assert comparison.solved_count("T") == 2
        assert comparison.mean_time("T") == pytest.approx(2.0)

    def test_mean_time_of_unknown_router_is_nan(self):
        assert math.isnan(SuiteComparison().mean_time("nobody"))


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 2.5], ["xyz", 3]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "2.50" in text

    def test_render_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_render_solve_rate_table(self):
        comparison = SuiteComparison()
        bench = BenchmarkCircuit("x", 4, 12, random_circuit(4, 5, seed=4))
        comparison.add(ExperimentRecord.from_result(
            RoutingResult(RoutingStatus.OPTIMAL, "SATMAP", circuit_name="x"), bench))
        text = render_solve_rate_table(comparison, total=1)
        assert "SATMAP" in text and "1/1" in text

    def test_render_cost_ratio_summary(self):
        comparison = SuiteComparison()
        bench = BenchmarkCircuit("x", 4, 12, random_circuit(4, 5, seed=4))
        for router, swaps in (("SABRE", 6), ("SATMAP", 2)):
            comparison.add(ExperimentRecord.from_result(
                RoutingResult(RoutingStatus.OPTIMAL, router, circuit_name="x",
                              swap_count=swaps), bench))
        text = render_cost_ratio_summary(comparison, "SATMAP", ["SABRE"])
        assert "SABRE" in text and "3.00" in text

    def test_render_records_table_lists_all_rows(self):
        comparison = SuiteComparison()
        bench = BenchmarkCircuit("x", 4, 12, random_circuit(4, 5, seed=4))
        comparison.add(ExperimentRecord.from_result(
            RoutingResult(RoutingStatus.OPTIMAL, "A", circuit_name="x"), bench))
        comparison.add(ExperimentRecord.from_result(
            RoutingResult(RoutingStatus.TIMEOUT, "B", circuit_name="x"), bench))
        text = render_records_table(comparison)
        assert text.count("\n") >= 3
