"""Tests for the text-mode plotting helpers and the statistics module."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.plotting import (
    bar_chart,
    histogram,
    line_plot,
    log_scale_positions,
    scatter_plot,
    sparkline,
)
from repro.analysis.statistics import (
    arithmetic_mean,
    bootstrap_confidence_interval,
    median,
    percentile,
    speedup_geometric_mean,
    standard_deviation,
    summarize,
)


class TestBarChart:
    def test_contains_every_label_and_value(self):
        chart = bar_chart({"SATMAP": 109, "TB-OLSQ": 38, "EX-MQT": 4}, title="solved")
        assert "SATMAP" in chart and "TB-OLSQ" in chart and "EX-MQT" in chart
        assert "109" in chart
        assert chart.splitlines()[0] == "solved"

    def test_largest_value_gets_longest_bar(self):
        chart = bar_chart({"a": 10, "b": 5})
        bar_a = chart.splitlines()[0].count("█")
        bar_b = chart.splitlines()[1].count("█")
        assert bar_a > bar_b

    def test_empty_input(self):
        assert bar_chart({}, title="empty") == "empty"

    def test_zero_values_do_not_crash(self):
        assert "0" in bar_chart({"a": 0, "b": 0})


class TestScatterPlot:
    def test_dimensions(self):
        plot = scatter_plot([(1, 1), (2, 4), (3, 9)], width=30, height=8)
        canvas_rows = [line for line in plot.splitlines() if line.startswith("|")]
        assert len(canvas_rows) == 8
        assert all(len(row) == 31 for row in canvas_rows)

    def test_points_present(self):
        plot = scatter_plot([(0, 0), (1, 1)], width=10, height=5)
        assert plot.count("*") + plot.count("@") >= 1

    def test_single_point(self):
        assert "*" in scatter_plot([(5, 5)])

    def test_empty(self):
        assert scatter_plot([], title="none") == "none"


class TestHistogram:
    def test_counts_sum_to_input_size(self):
        values = [1.0, 1.2, 2.5, 3.0, 3.1, 3.2]
        text = histogram(values, bins=4)
        counts = [int(line.rsplit(" ", 1)[-1]) for line in text.splitlines()]
        assert sum(counts) == len(values)

    def test_rejects_zero_bins(self):
        with pytest.raises(ValueError):
            histogram([1.0], bins=0)

    def test_empty(self):
        assert histogram([], title="nothing") == "nothing"


class TestLinePlot:
    def test_legend_contains_series_names(self):
        plot = line_plot({"SATMAP": [(1, 1.4), (2, 1.1)], "TKET": [(1, 1.0), (2, 1.0)]})
        assert "o = SATMAP" in plot
        assert "x = TKET" in plot

    def test_empty(self):
        assert line_plot({}, title="none") == "none"


class TestSparklineAndLogScale:
    def test_sparkline_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_log_positions_monotone(self):
        positions = log_scale_positions([0.1, 1.0, 10.0, 100.0], width=40)
        assert positions == sorted(positions)
        assert positions[0] == 0
        assert positions[-1] == 39

    def test_log_positions_handle_nonpositive(self):
        assert log_scale_positions([0.0, -1.0], width=10) == [0, 0]


class TestStatistics:
    def test_mean_and_median(self):
        assert arithmetic_mean([1, 2, 3, 4]) == 2.5
        assert median([1, 2, 3, 4]) == 2.5
        assert median([1, 2, 3]) == 2
        assert arithmetic_mean([]) == 0.0
        assert median([]) == 0.0

    def test_standard_deviation(self):
        assert standard_deviation([2, 2, 2]) == 0.0
        assert standard_deviation([1]) == 0.0
        assert standard_deviation([0, 2]) == pytest.approx(1.0)

    def test_percentile_bounds(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 4.0
        assert percentile(values, 0.5) == pytest.approx(2.5)
        with pytest.raises(ValueError):
            percentile(values, 1.5)

    def test_bootstrap_interval_contains_mean_for_constant_data(self):
        low, high = bootstrap_confidence_interval([5.0] * 10)
        assert low == pytest.approx(5.0)
        assert high == pytest.approx(5.0)

    def test_bootstrap_interval_ordering(self):
        low, high = bootstrap_confidence_interval([1.0, 2.0, 3.0, 4.0, 5.0], seed=3)
        assert low <= high
        assert low <= arithmetic_mean([1.0, 2.0, 3.0, 4.0, 5.0]) <= high

    def test_bootstrap_rejects_bad_confidence(self):
        with pytest.raises(ValueError):
            bootstrap_confidence_interval([1.0], confidence=0.0)

    def test_summarize_keys(self):
        summary = summarize([1.0, 3.0])
        assert summary["count"] == 2
        assert summary["mean"] == 2.0
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0

    def test_speedup_geometric_mean(self):
        # Candidate twice as fast on one instance, four times on another.
        speedup = speedup_geometric_mean([2.0, 4.0], [1.0, 1.0])
        assert speedup == pytest.approx((2.0 * 4.0) ** 0.5)

    def test_speedup_requires_paired_lists(self):
        with pytest.raises(ValueError):
            speedup_geometric_mean([1.0], [1.0, 2.0])

    def test_speedup_ignores_nonpositive_times(self):
        assert speedup_geometric_mean([0.0, 2.0], [1.0, 1.0]) == pytest.approx(2.0)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False),
                    min_size=1, max_size=20))
    def test_median_between_min_and_max(self, values):
        assert min(values) <= median(values) <= max(values)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=0.1, max_value=100, allow_nan=False),
                    min_size=2, max_size=20))
    def test_std_nonnegative(self, values):
        assert standard_deviation(values) >= 0.0
