"""Wire-protocol schemas: versioning, submit parsing, result round trips."""

from __future__ import annotations

import pytest

from repro.api.spec import RouterSpec
from repro.circuits.random_circuits import random_circuit
from repro.core.result import RoutingResult, RoutingStatus
from repro.hardware.topologies import line_architecture, tokyo_architecture
from repro.server import protocol
from repro.server.protocol import ProtocolError


@pytest.fixture
def catalog():
    return {"tokyo": tokyo_architecture(), "line4": line_architecture(4)}


@pytest.fixture
def circuit():
    return random_circuit(4, 8, seed=7, name="wire_test")


class TestVersioning:
    def test_envelope_stamps_version(self):
        assert protocol.envelope(x=1) == {"wire_version": 1, "x": 1}

    def test_missing_version_rejected(self, catalog):
        with pytest.raises(ProtocolError, match="wire_version"):
            protocol.parse_submit({"qasm": "OPENQASM 2.0;"}, catalog)

    def test_wrong_version_rejected(self, catalog):
        payload = {"wire_version": 99, "qasm": "OPENQASM 2.0;"}
        with pytest.raises(ProtocolError, match="wire_version"):
            protocol.parse_submit(payload, catalog)

    def test_submit_payload_carries_current_version(self, circuit):
        payload = protocol.submit_payload(circuit, "tokyo")
        assert payload["wire_version"] == protocol.WIRE_VERSION


class TestSubmitRoundTrip:
    def test_builds_job_with_canonical_hash(self, circuit, catalog):
        payload = protocol.submit_payload(circuit, "line4",
                                          router="sabre:seed=3",
                                          name="wire_test")
        job = protocol.parse_submit(payload, catalog)
        assert job.router == "sabre"
        assert job.options["seed"] == 3
        assert job.arch_num_qubits == 4
        assert job.name == "wire_test"

    def test_spec_dict_and_string_forms_hash_identically(self, circuit, catalog):
        spec = RouterSpec.from_string("sabre:seed=3")
        as_string = protocol.parse_submit(
            protocol.submit_payload(circuit, "line4", router="sabre:seed=3"),
            catalog)
        as_dict = protocol.parse_submit(
            protocol.submit_payload(circuit, "line4", router=spec), catalog)
        assert as_string.content_hash() == as_dict.content_hash()

    def test_explicit_architecture_object(self, circuit, catalog):
        arch = line_architecture(5)
        payload = protocol.submit_payload(circuit, arch)
        job = protocol.parse_submit(payload, catalog)
        assert job.arch_num_qubits == 5
        assert len(job.arch_edges) == 4

    def test_time_budget_folds_into_spec(self, circuit, catalog):
        payload = protocol.submit_payload(circuit, "line4", router="sabre",
                                          time_budget=7.0)
        job = protocol.parse_submit(payload, catalog)
        assert job.options["time_budget"] == 7.0

    def test_unknown_architecture_lists_known_names(self, circuit, catalog):
        payload = protocol.submit_payload(circuit, "no-such-arch")
        with pytest.raises(ProtocolError, match="line4"):
            protocol.parse_submit(payload, catalog)

    def test_unknown_router_rejected(self, circuit, catalog):
        payload = protocol.submit_payload(circuit, "line4", router="no-such")
        with pytest.raises(ProtocolError, match="router"):
            protocol.parse_submit(payload, catalog)

    def test_bad_qasm_rejected(self, catalog):
        payload = protocol.submit_payload("this is not qasm", "line4")
        with pytest.raises(ProtocolError, match="OpenQASM"):
            protocol.parse_submit(payload, catalog)

    def test_circuit_wider_than_architecture_rejected(self, catalog):
        wide = random_circuit(6, 6, seed=0)
        payload = protocol.submit_payload(wide, "line4")
        with pytest.raises(ProtocolError, match="qubits"):
            protocol.parse_submit(payload, catalog)

    def test_whitespace_variants_hash_identically(self, circuit, catalog):
        """Formatting differences in the QASM must not split the dedup key."""
        from repro.circuits.qasm import circuit_to_qasm
        text = circuit_to_qasm(circuit)
        sloppy = text.replace("\n", "\n\n")
        one = protocol.parse_submit(
            protocol.submit_payload(text, "line4"), catalog)
        two = protocol.parse_submit(
            protocol.submit_payload(sloppy, "line4"), catalog)
        assert one.content_hash() == two.content_hash()


class TestResultRoundTrip:
    def test_solved_result_round_trips_with_circuit(self, circuit):
        from repro import route
        result = route(circuit, tokyo_architecture(), spec="sabre:seed=0")
        assert result.solved
        wire = protocol.result_to_wire(result)
        rebuilt = protocol.result_from_wire(wire)
        assert rebuilt.solved
        assert rebuilt.swap_count == result.swap_count
        assert rebuilt.routed_circuit is not None
        assert rebuilt.initial_mapping == result.initial_mapping

    def test_unsolved_result_round_trips(self):
        result = RoutingResult(status=RoutingStatus.TIMEOUT,
                               router_name="satmap", circuit_name="c",
                               solve_time=1.5, notes="budget exhausted")
        wire = protocol.result_to_wire(result)
        assert wire["solved"] is False
        rebuilt = protocol.result_from_wire(wire)
        assert rebuilt.status is RoutingStatus.TIMEOUT
        assert not rebuilt.solved
        assert rebuilt.notes == "budget exhausted"

    def test_malformed_result_payload_raises(self):
        with pytest.raises(ProtocolError):
            protocol.result_from_wire({"solved": True, "status": "feasible"})
        with pytest.raises(ProtocolError):
            protocol.result_from_wire({"solved": False})
