"""Shared fixtures: an in-process gateway on a background thread."""

from __future__ import annotations

import pytest

from repro.server import GatewayThread
from repro.service import BatchRoutingService


@pytest.fixture
def gateway_factory():
    """Start gateways on free ports; drain and close them all afterwards."""
    handles: list[tuple[GatewayThread, BatchRoutingService]] = []

    def make(service: BatchRoutingService | None = None,
             **kwargs) -> GatewayThread:
        if service is None:
            service = BatchRoutingService(mode="serial", time_budget=5.0)
        kwargs.setdefault("time_budget", 5.0)
        handle = GatewayThread(service=service, **kwargs).start()
        handles.append((handle, service))
        return handle

    yield make
    for handle, service in handles:
        handle.stop()
        service.close()


@pytest.fixture
def gateway(gateway_factory):
    return gateway_factory()
