"""The operational endpoints: /v1/slo, /v1/events, /v1/admin/profile, and
tail-based trace sampling on the gateway."""

from __future__ import annotations

import pytest

from repro.circuits.random_circuits import random_circuit
from repro.obs import TailSampler, check_exposition
from repro.obs.export import read_traces
from repro.server import RoutingClient, ServerError
from repro.service import BatchRoutingService


@pytest.fixture
def circuit():
    return random_circuit(3, 5, seed=23, name="ops_test")


def solve_one(client: RoutingClient, circuit, router: str = "sabre",
              **kwargs) -> dict:
    ticket = client.submit(circuit, architecture="line8", router=router,
                           **kwargs)
    client.wait(ticket["job_id"], timeout=60)
    return ticket


class TestSloEndpoint:
    def test_finished_jobs_feed_the_slo_window(self, gateway_factory, circuit):
        handle = gateway_factory()
        client = RoutingClient(port=handle.port, client_id="slo")
        solve_one(client, circuit)
        status = client.slo()
        assert set(status["routes"]) >= {"*", "sabre"}
        assert status["routes"]["*"]["requests"] == 1
        entry = status["objectives"][0]
        assert entry["quantile_label"] == "p95"
        assert entry["requests"] == 1
        assert entry["latency"] is not None
        assert status["ok"] is True

    def test_custom_objectives_are_evaluated(self, gateway_factory, circuit):
        handle = gateway_factory(slo=({"route": "sabre", "quantile": 0.5,
                                       "latency_target": 900.0,
                                       "availability_target": 0.5},))
        client = RoutingClient(port=handle.port, client_id="slo")
        solve_one(client, circuit)
        entry = client.slo()["objectives"][0]
        assert entry["route"] == "sabre"
        assert entry["quantile_label"] == "p50"
        assert entry["ok"] is True

    def test_disabled_tracker_404s(self, gateway_factory):
        handle = gateway_factory(slo=False)
        client = RoutingClient(port=handle.port, client_id="slo")
        with pytest.raises(ServerError) as excinfo:
            client.slo()
        assert excinfo.value.status == 404

    def test_metrics_mirror_slo_gauges(self, gateway_factory, circuit):
        handle = gateway_factory()
        client = RoutingClient(port=handle.port, client_id="slo")
        solve_one(client, circuit)
        text = client.metrics_text()
        assert check_exposition(text) == []
        assert 'repro_slo_latency_seconds{route="*",quantile="p95"}' in text
        assert 'repro_slo_ok{route="*"} 1' in text
        assert 'repro_slo_window_requests{route="*"} 1' in text


class TestEventsEndpoint:
    def test_served_events_match_what_the_log_recorded(self, gateway_factory):
        handle = gateway_factory()
        handle.gateway.event_log.emit("worker-restart", level="warning",
                                      shard=3)
        client = RoutingClient(port=handle.port, client_id="events")
        payload = client.events()
        assert payload["counts"] == {"warning": 1}
        (event,) = payload["events"]
        assert event["event"] == "worker-restart"
        assert event["shard"] == 3

    def test_level_and_limit_filters(self, gateway_factory):
        handle = gateway_factory()
        log = handle.gateway.event_log
        for index in range(5):
            log.emit("tick", index=index)
        log.emit("trouble", level="error")
        client = RoutingClient(port=handle.port, client_id="events")
        assert [e["event"] for e in client.events(level="error")["events"]] \
            == ["trouble"]
        assert len(client.events(limit=2)["events"]) == 2

    def test_bad_level_is_a_400(self, gateway_factory):
        handle = gateway_factory()
        client = RoutingClient(port=handle.port, client_id="events")
        with pytest.raises(ServerError) as excinfo:
            client.events(level="severe")
        assert excinfo.value.status == 400

    def test_stats_carry_event_counts_by_level(self, gateway_factory):
        handle = gateway_factory()
        handle.gateway.event_log.emit("trouble", level="error")
        client = RoutingClient(port=handle.port, client_id="events")
        assert client.stats()["events"] == {"error": 1}

    def test_events_persist_to_the_shared_directory(self, gateway_factory,
                                                    tmp_path):
        handle = gateway_factory(events_dir=tmp_path, trace_owner="shard-7")
        handle.gateway.event_log.emit("drain-initiated", level="warning")
        from repro.obs import read_events
        (record,) = read_events(tmp_path)
        assert record["event"] == "drain-initiated"
        assert record["owner"] == "shard-7"


class TestProfileEndpoint:
    def test_profile_returns_collapsed_stacks_of_live_threads(
            self, gateway_factory):
        handle = gateway_factory()
        client = RoutingClient(port=handle.port, client_id="prof")
        report = client.profile(seconds=0.2, interval=0.002)
        assert report["seconds"] == pytest.approx(0.2)
        assert report["samples"] > 0
        assert isinstance(report["collapsed"], dict)
        assert "collapsed_text" in report
        # The gateway's own event loop is a live thread: it must show up.
        assert report["stacks_sampled"] > 0

    def test_profile_names_sat_core_frames_under_load(
            self, gateway_factory):
        handle = gateway_factory(
            service=BatchRoutingService(mode="thread", max_workers=1,
                                        time_budget=5.0, cache=False))
        client = RoutingClient(port=handle.port, client_id="prof")
        ticket = client.submit(random_circuit(6, 30, seed=7, name="hot"),
                               architecture="tokyo8", router="satmap",
                               time_budget=8.0)
        report = client.profile(seconds=1.0, interval=0.002)
        client.wait(ticket["job_id"], timeout=60)
        stacks = report["collapsed_text"]
        assert any(marker in stacks
                   for marker in ("solver.", "encoder.", "maxsat",
                                  "satmap")), stacks[:2000]

    def test_seconds_must_be_numeric(self, gateway_factory):
        handle = gateway_factory()
        client = RoutingClient(port=handle.port, client_id="prof")
        with pytest.raises(ServerError) as excinfo:
            client._request("POST", "/v1/admin/profile?seconds=lots")
        assert excinfo.value.status == 400

    def test_profile_start_is_evented(self, gateway_factory):
        handle = gateway_factory()
        client = RoutingClient(port=handle.port, client_id="prof")
        client.profile(seconds=0.1)
        assert handle.gateway.event_log.tail(event="profile-start")


class TestTailSampling:
    def test_fast_traces_are_dropped_at_rate_zero(self, gateway_factory,
                                                  circuit, tmp_path):
        handle = gateway_factory(sampler=TailSampler(rate=0.0),
                                 trace_dir=tmp_path)
        client = RoutingClient(port=handle.port, client_id="sampler")
        # Distinct circuits: identical submissions would dedup to one job.
        tickets = [solve_one(client, random_circuit(3, 5, seed=30 + index,
                                                    name=f"fast-{index}"))
                   for index in range(3)]
        assert read_traces(tmp_path) == []
        for ticket in tickets:
            with pytest.raises(ServerError) as excinfo:
                client.trace(ticket["job_id"])
            assert excinfo.value.status == 404
        assert handle.gateway.sampler.counts == {"unsampled": 3}
        text = client.metrics_text()
        assert 'repro_trace_sampled_total{reason="unsampled"} 3' in text
        assert check_exposition(text) == []

    def test_slow_traces_are_always_kept(self, gateway_factory, circuit,
                                         tmp_path):
        handle = gateway_factory(
            sampler=TailSampler(rate=0.0, slow_threshold=0.0),
            trace_dir=tmp_path)
        client = RoutingClient(port=handle.port, client_id="sampler")
        ticket = solve_one(client, circuit)
        (trace,) = read_traces(tmp_path)
        assert trace["attributes"]["job"] == ticket["job_id"]
        assert client.trace(ticket["job_id"])["trace"]["name"] == "job"
        assert handle.gateway.sampler.counts == {"slow": 1}

    def test_deadline_overruns_are_always_kept(self, gateway_factory,
                                               tmp_path):
        # fallback=False keeps faithful timeout semantics: an exhausted
        # budget reports status "timeout" instead of rescuing the job.
        handle = gateway_factory(
            service=BatchRoutingService(mode="serial", time_budget=5.0,
                                        fallback=False, cache=False),
            sampler=TailSampler(rate=0.0),
            trace_dir=tmp_path)
        client = RoutingClient(port=handle.port, client_id="sampler")
        big = random_circuit(8, 40, seed=3, name="too_big")
        ticket = client.submit(big, architecture="tokyo8", router="satmap",
                               time_budget=0.05)
        client.wait(ticket["job_id"], timeout=60)
        (trace,) = read_traces(tmp_path)
        assert trace["attributes"]["status"] == "timeout"
        assert handle.gateway.sampler.counts == {"deadline": 1}
        # The failed window also dents availability in the SLO tracker.
        status = client.slo()
        assert status["routes"]["*"]["errors"] == 1

    def test_no_sampler_keeps_every_trace(self, gateway_factory, circuit,
                                          tmp_path):
        handle = gateway_factory(trace_dir=tmp_path)
        client = RoutingClient(port=handle.port, client_id="sampler")
        solve_one(client, circuit)
        assert len(read_traces(tmp_path)) == 1
