"""Token-bucket admission control, driven with a deterministic clock."""

from __future__ import annotations

import pytest

from repro.server.admission import AdmissionController, TokenBucket


class FakeClock:
    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_refusal(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(3)] == [0.0, 0.0, 0.0]
        retry = bucket.try_acquire()
        assert retry == pytest.approx(1.0)

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
        bucket.try_acquire()
        bucket.try_acquire()
        assert bucket.try_acquire() > 0.0
        clock.advance(0.5)  # 2 tokens/s * 0.5s = 1 token back
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0

    def test_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.advance(100.0)
        assert bucket.available == pytest.approx(2.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=-1.0)


class TestAdmissionController:
    def test_per_client_quotas_are_independent(self):
        clock = FakeClock()
        controller = AdmissionController(rate=1.0, burst=2.0, clock=clock)
        assert controller.admit("alice")
        assert controller.admit("alice")
        refused = controller.admit("alice")
        assert not refused and refused.reason == "quota"
        assert refused.retry_after > 0.0
        # bob has a full bucket of his own
        assert controller.admit("bob")

    def test_quota_recovers_over_time(self):
        clock = FakeClock()
        controller = AdmissionController(rate=2.0, burst=1.0, clock=clock)
        assert controller.admit("c")
        assert not controller.admit("c")
        clock.advance(0.6)
        assert controller.admit("c")

    def test_backpressure_hits_every_client(self):
        clock = FakeClock()
        controller = AdmissionController(rate=100.0, burst=100.0,
                                         max_pending=4, clock=clock)
        decision = controller.admit("anyone", pending=4)
        assert not decision and decision.reason == "backpressure"
        assert decision.retry_after > 0.0
        # below the bound, the same client sails through
        assert controller.admit("anyone", pending=3)

    def test_stats_counts_decisions(self):
        clock = FakeClock()
        controller = AdmissionController(rate=1.0, burst=1.0, max_pending=2,
                                         clock=clock)
        controller.admit("a")
        controller.admit("a")             # quota
        controller.admit("b", pending=2)  # backpressure
        stats = controller.stats()
        assert stats["admitted"] == 1
        assert stats["rejected_quota"] == 1
        assert stats["rejected_backpressure"] == 1
        assert stats["clients"] == 1  # backpressure never made a bucket

    def test_prunes_idle_clients_at_cap(self, monkeypatch):
        import repro.server.admission as admission_module
        monkeypatch.setattr(admission_module, "MAX_TRACKED_CLIENTS", 4)
        clock = FakeClock()
        controller = AdmissionController(rate=100.0, burst=2.0, clock=clock)
        for index in range(4):
            controller.admit(f"client-{index}")
        clock.advance(10.0)  # everyone refills to full
        controller.admit("one-more")
        assert len(controller._buckets) <= 2
