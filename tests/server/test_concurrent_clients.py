"""Concurrent submission through :class:`RoutingClient` (ISSUE 4 satellite).

N threads hammer one gateway with identical and distinct jobs.  The
contracts under test:

* identical content hashes collapse into a *single* solve no matter how many
  clients submit them concurrently;
* a burst past the token-bucket quota is refused with 429 + retry-after
  while other clients keep being served;
* a drain initiated while jobs are in flight completes every accepted job
  (best-so-far within its budget) and loses no result.
"""

from __future__ import annotations

import threading

import pytest

from repro.circuits.random_circuits import random_circuit
from repro.server import AdmissionController, QuotaExceededError, RoutingClient
from repro.service import BatchRoutingService


def fan_out(worker, count: int) -> list:
    """Run ``worker(index)`` on ``count`` threads; return results in order."""
    results: list = [None] * count
    errors: list = []

    def run(index: int) -> None:
        try:
            results[index] = worker(index)
        except BaseException as error:  # surfaced to the test below
            errors.append(error)

    threads = [threading.Thread(target=run, args=(index,))
               for index in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    if errors:
        raise errors[0]
    return results


class TestSingleSolveDedup:
    def test_identical_jobs_from_many_threads_solve_once(self, gateway_factory):
        gateway = gateway_factory()
        circuit = random_circuit(4, 10, seed=5, name="shared_work")

        def submit_and_wait(index: int):
            client = RoutingClient(port=gateway.port,
                                   client_id=f"client-{index}")
            ticket = client.submit(circuit, architecture="tokyo6",
                                   router="sabre:seed=1")
            result = client.wait(ticket["job_id"], timeout=60)
            return ticket, result

        outcomes = fan_out(submit_and_wait, 8)
        job_ids = {ticket["job_id"] for ticket, _ in outcomes}
        assert len(job_ids) == 1
        swaps = {result.swap_count for _, result in outcomes}
        assert len(swaps) == 1
        counters = gateway.gateway.counters
        assert counters["submitted"] == 1
        assert counters["deduplicated"] == 7
        # the service really solved it once: one "finished" event, total
        telemetry = gateway.gateway.service.telemetry
        assert telemetry.counters["finished"] == 1

    def test_distinct_jobs_all_solve(self, gateway_factory):
        gateway = gateway_factory()

        def submit_and_wait(index: int):
            client = RoutingClient(port=gateway.port,
                                   client_id=f"client-{index}")
            circuit = random_circuit(4, 8, seed=100 + index,
                                     name=f"distinct_{index}")
            result = client.route(circuit, architecture="tokyo6",
                                  router="sabre:seed=1", timeout=60)
            return result

        results = fan_out(submit_and_wait, 6)
        assert all(result.solved for result in results)
        assert gateway.gateway.counters["submitted"] == 6
        assert gateway.gateway.counters["deduplicated"] == 0

    def test_mixed_identical_and_distinct(self, gateway_factory):
        gateway = gateway_factory()
        shared = random_circuit(4, 10, seed=9, name="mixed_shared")

        def submit_and_wait(index: int):
            client = RoutingClient(port=gateway.port,
                                   client_id=f"client-{index}")
            if index % 2 == 0:
                circuit = shared
            else:
                circuit = random_circuit(4, 8, seed=200 + index,
                                         name=f"mixed_{index}")
            return client.route(circuit, architecture="tokyo6",
                                router="sabre:seed=1", timeout=60)

        results = fan_out(submit_and_wait, 8)
        assert all(result.solved for result in results)
        # 4 even indices share one job; 4 odd ones are unique
        assert gateway.gateway.counters["submitted"] == 5
        assert gateway.gateway.counters["deduplicated"] == 3


class TestQuotaUnderBurst:
    def test_burst_past_bucket_gets_429_with_retry_after(self, gateway_factory):
        admission = AdmissionController(rate=0.5, burst=3.0, max_pending=1000)
        gateway = gateway_factory(admission=admission)
        client = RoutingClient(port=gateway.port, client_id="greedy",
                               retry_quota=0)
        accepted = 0
        refusals: list[QuotaExceededError] = []
        for index in range(8):
            circuit = random_circuit(4, 6, seed=300 + index)
            try:
                client.submit(circuit, architecture="tokyo6", router="sabre")
                accepted += 1
            except QuotaExceededError as error:
                refusals.append(error)
        assert accepted == 3
        assert len(refusals) == 5
        assert all(error.retry_after > 0.0 for error in refusals)
        assert all(error.payload["reason"] == "quota" for error in refusals)
        # a different client id still has its own full bucket
        other = RoutingClient(port=gateway.port, client_id="patient")
        other.submit(random_circuit(4, 6, seed=400),
                     architecture="tokyo6", router="sabre")
        stats = gateway.gateway.admission.stats()
        assert stats["rejected_quota"] == 5

    def test_burst_from_threads_only_quota_violators_refused(self, gateway_factory):
        admission = AdmissionController(rate=1.0, burst=4.0, max_pending=1000)
        gateway = gateway_factory(admission=admission)

        def submit(index: int):
            client = RoutingClient(port=gateway.port, client_id="swarm",
                                   retry_quota=0)
            circuit = random_circuit(4, 6, seed=500 + index)
            try:
                return ("ok", client.submit(circuit, architecture="tokyo6",
                                            router="sabre"))
            except QuotaExceededError as error:
                return ("429", error)

        outcomes = fan_out(submit, 8)
        accepted = [o for kind, o in outcomes if kind == "ok"]
        refused = [o for kind, o in outcomes if kind == "429"]
        assert len(accepted) == 4
        assert len(refused) == 4

    def test_backpressure_surfaces_as_429(self, gateway_factory):
        admission = AdmissionController(rate=1000.0, burst=1000.0,
                                        max_pending=1)
        gateway = gateway_factory(admission=admission)
        client = RoutingClient(port=gateway.port, client_id="pusher",
                               retry_quota=0)
        # First submission occupies the only pending slot (satmap is slow
        # enough on a real circuit that the dispatcher is still busy).
        client.submit(random_circuit(4, 12, seed=600),
                      architecture="tokyo6", router="satmap", time_budget=2.0)
        with pytest.raises(QuotaExceededError) as excinfo:
            client.submit(random_circuit(4, 12, seed=601),
                          architecture="tokyo6", router="satmap",
                          time_budget=2.0)
        assert excinfo.value.payload["reason"] == "backpressure"


class TestGracefulDrainUnderLoad:
    def test_drain_mid_flight_returns_best_so_far(self, gateway_factory):
        service = BatchRoutingService(mode="serial", time_budget=5.0)
        gateway = gateway_factory(service=service, max_batch=2)
        client = RoutingClient(port=gateway.port, client_id="drainer")
        tickets = [client.submit(random_circuit(4, 10, seed=700 + index,
                                                name=f"drain_{index}"),
                                 architecture="tokyo6",
                                 router="satmap", time_budget=1.0)
                   for index in range(4)]

        # Collect results on long-poll threads *before* initiating drain,
        # so the fetches race the shutdown exactly like real clients would.
        def wait_for(index: int):
            waiter = RoutingClient(port=gateway.port,
                                   client_id=f"waiter-{index}")
            return waiter.wait(tickets[index]["job_id"], timeout=60)

        collector: list = []
        threads = [threading.Thread(
            target=lambda i=i: collector.append((i, wait_for(i))))
            for i in range(4)]
        for thread in threads:
            thread.start()
        client.drain()
        for thread in threads:
            thread.join(timeout=120)
        gateway.stop(timeout=120)

        assert len(collector) == 4
        for _, result in collector:
            assert result.solved  # best-so-far within the 1s budget
        records = gateway.gateway.jobs
        assert all(record.status == "done" for record in records.values())
