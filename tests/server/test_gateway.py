"""End-to-end gateway behaviour through the blocking client."""

from __future__ import annotations

import urllib.error
import urllib.request

import pytest

from repro.api.registry import describe_routers
from repro.circuits.random_circuits import random_circuit
from repro.hardware.devices import device_records
from repro.server import RoutingClient, ServerError


@pytest.fixture
def client(gateway):
    return RoutingClient(port=gateway.port, client_id="tester")


@pytest.fixture
def circuit():
    return random_circuit(4, 8, seed=11, name="gateway_test")


class TestInquiries:
    def test_health(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["wire_version"] == 1

    def test_routers_endpoint_matches_registry_serialiser(self, client):
        assert client.routers() == describe_routers()
        noise = client.routers(capability="noise_aware")
        assert [entry["name"] for entry in noise] == ["noise-satmap"]

    def test_devices_endpoint_matches_cli_serialiser(self, client):
        assert client.devices() == device_records()
        assert "tokyo8" in client.architectures()

    def test_unknown_endpoint_404(self, client):
        with pytest.raises(ServerError) as excinfo:
            client._request("GET", "/v1/nope")
        assert excinfo.value.status == 404


class TestJobLifecycle:
    def test_submit_poll_fetch(self, client, circuit):
        ticket = client.submit(circuit, architecture="tokyo6",
                               router="sabre:seed=0", name="gateway_test")
        assert ticket["status"] in ("queued", "running", "done")
        assert ticket["deduplicated"] is False
        assert ticket["spec"] == {"router": "sabre", "options": {"seed": 0}}
        result = client.wait(ticket["job_id"], timeout=30)
        assert result.solved
        assert result.routed_circuit is not None
        status = client.status(ticket["job_id"])
        assert status["status"] == "done"
        assert status["solved"] is True

    def test_long_poll_returns_when_done(self, client, circuit):
        ticket = client.submit(circuit, architecture="tokyo6", router="sabre")
        status = client.status(ticket["job_id"], wait=10.0)
        assert status["status"] == "done"

    def test_identical_submissions_share_one_job(self, client, gateway, circuit):
        first = client.submit(circuit, architecture="tokyo6", router="sabre")
        second = client.submit(circuit, architecture="tokyo6", router="sabre")
        assert second["job_id"] == first["job_id"]
        assert second["deduplicated"] is True
        assert second["submissions"] == 2
        client.wait(first["job_id"], timeout=30)
        assert gateway.gateway.counters["submitted"] == 1
        assert gateway.gateway.counters["deduplicated"] == 1

    def test_different_budgets_are_different_jobs(self, client, circuit):
        one = client.submit(circuit, architecture="tokyo6", router="sabre",
                            time_budget=3.0)
        two = client.submit(circuit, architecture="tokyo6", router="sabre",
                            time_budget=4.0)
        assert one["job_id"] != two["job_id"]

    def test_unknown_job_404(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.status("deadbeef")
        assert excinfo.value.status == 404

    def test_result_before_done_409(self, client, gateway, circuit):
        from repro.hardware.topologies import line_architecture
        from repro.server.app import JobRecord
        from repro.service import RoutingJob

        # Plant a record the dispatcher never saw: still "queued".
        job = RoutingJob.from_circuit(circuit, line_architecture(4),
                                      router="sabre")
        gateway.gateway.jobs["still-queued"] = JobRecord(
            job_id="still-queued", job=job)
        with pytest.raises(ServerError) as excinfo:
            client.result("still-queued")
        assert excinfo.value.status == 409
        del gateway.gateway.jobs["still-queued"]

    def test_result_endpoint_carries_full_payload(self, client, circuit):
        ticket = client.submit(circuit, architecture="tokyo6", router="sabre")
        client.wait(ticket["job_id"], timeout=30)
        payload = client._request("GET", f"/v1/jobs/{ticket['job_id']}/result")
        assert payload["solved"] is True
        assert payload["result"]["solved"] is True
        assert "routed_qasm" in payload["result"]

    def test_jobs_listing(self, client, circuit):
        ticket = client.submit(circuit, architecture="tokyo6", router="sabre")
        client.wait(ticket["job_id"], timeout=30)
        listed = client.jobs()
        assert any(entry["job_id"] == ticket["job_id"] for entry in listed)


class TestBadRequests:
    def test_wrong_wire_version_400(self, client):
        with pytest.raises(ServerError) as excinfo:
            client._request("POST", "/v1/jobs",
                            payload={"wire_version": 99, "qasm": "x"})
        assert excinfo.value.status == 400
        assert "wire_version" in str(excinfo.value)

    def test_non_json_body_400(self, gateway):
        request = urllib.request.Request(
            f"{gateway.url}/v1/jobs", data=b"not json at all",
            headers={"Content-Type": "application/json"}, method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_unknown_architecture_400(self, client, circuit):
        with pytest.raises(ServerError) as excinfo:
            client.submit(circuit, architecture="atlantis", router="sabre")
        assert excinfo.value.status == 400

    def test_malformed_request_line_gets_http_400(self, gateway):
        import socket

        with socket.create_connection(("127.0.0.1", gateway.port),
                                      timeout=10) as sock:
            sock.sendall(b"garbage\r\n\r\n")
            reply = sock.recv(4096)
        assert reply.startswith(b"HTTP/1.1 400")

    def test_oversized_body_gets_http_413(self, gateway):
        import socket

        with socket.create_connection(("127.0.0.1", gateway.port),
                                      timeout=10) as sock:
            sock.sendall(b"POST /v1/jobs HTTP/1.1\r\n"
                         b"Content-Length: 99999999999\r\n\r\n")
            reply = sock.recv(4096)
        assert reply.startswith(b"HTTP/1.1 413")

    def test_negative_content_length_gets_http_400(self, gateway):
        import socket

        with socket.create_connection(("127.0.0.1", gateway.port),
                                      timeout=10) as sock:
            sock.sendall(b"POST /v1/jobs HTTP/1.1\r\n"
                         b"Content-Length: -5\r\n\r\n")
            reply = sock.recv(4096)
        assert reply.startswith(b"HTTP/1.1 400")

    def test_oversized_header_line_gets_http_400(self, gateway):
        import socket

        with socket.create_connection(("127.0.0.1", gateway.port),
                                      timeout=10) as sock:
            sock.sendall(b"GET /healthz HTTP/1.1\r\nX-Bomb: "
                         + b"a" * 100_000 + b"\r\n\r\n")
            reply = sock.recv(4096)
        assert reply.startswith(b"HTTP/1.1 400")

    def test_header_count_is_capped(self, gateway):
        import socket

        with socket.create_connection(("127.0.0.1", gateway.port),
                                      timeout=10) as sock:
            sock.sendall(b"GET /healthz HTTP/1.1\r\n"
                         + b"".join(b"X-H%d: v\r\n" % i for i in range(200))
                         + b"\r\n")
            reply = sock.recv(4096)
        assert reply.startswith(b"HTTP/1.1 400")


class TestMetricsAndStats:
    def test_metrics_expose_job_and_cache_counters(self, client, circuit):
        ticket = client.submit(circuit, architecture="tokyo6", router="sabre")
        client.submit(circuit, architecture="tokyo6", router="sabre")
        client.wait(ticket["job_id"], timeout=30)
        text = client.metrics_text()
        metrics = {}
        for line in text.splitlines():
            if line.startswith("#") or "{" in line.split(" ")[0]:
                continue
            name, _, value = line.partition(" ")
            metrics[name] = float(value)
        assert metrics["repro_server_submitted_total"] == 1
        assert metrics["repro_server_deduplicated_total"] == 1
        assert metrics["repro_server_completed_total"] == 1
        assert 'repro_telemetry_events_total{kind="finished"} 1' in text
        assert "repro_cache_stores_total 1" in text
        assert 'wire_version="1"' in text

    def test_stats_json(self, client, circuit):
        ticket = client.submit(circuit, architecture="tokyo6", router="sabre")
        client.wait(ticket["job_id"], timeout=30)
        stats = client.stats()
        assert stats["gateway"]["submitted"] == 1
        assert stats["telemetry"]["finished"] == 1
        assert stats["cache"]["stores"] == 1
        assert stats["draining"] is False

    def test_metrics_is_plain_text(self, gateway):
        with urllib.request.urlopen(f"{gateway.url}/metrics") as response:
            assert response.headers["Content-Type"].startswith("text/plain")
            body = response.read().decode()
        assert body.startswith("# HELP repro_server_info")


class TestRecordLifecycle:
    def test_failed_record_is_retried_not_deduplicated(self, client, gateway,
                                                       circuit):
        ticket = client.submit(circuit, architecture="tokyo6", router="sabre")
        client.wait(ticket["job_id"], timeout=30)
        # Simulate a crashed attempt: the record finished with an error.
        record = gateway.gateway.jobs[ticket["job_id"]]
        record.error = "worker exploded"
        record.result = None
        with pytest.raises(ServerError):
            client.result(ticket["job_id"])  # error, not a KeyError
        retry = client.submit(circuit, architecture="tokyo6", router="sabre")
        assert retry["job_id"] == ticket["job_id"]
        assert retry["deduplicated"] is False  # rescheduled, not poisoned
        result = client.wait(retry["job_id"], timeout=30)
        assert result.solved

    def test_unsolved_record_is_retried_not_deduplicated(self, client,
                                                         gateway, circuit):
        from repro.core.result import RoutingResult, RoutingStatus

        ticket = client.submit(circuit, architecture="tokyo6", router="sabre")
        client.wait(ticket["job_id"], timeout=30)
        # Simulate a timed-out attempt: done, no error, but unsolved.
        record = gateway.gateway.jobs[ticket["job_id"]]
        record.result = RoutingResult(status=RoutingStatus.TIMEOUT,
                                      router_name="sabre")
        retry = client.submit(circuit, architecture="tokyo6", router="sabre")
        assert retry["deduplicated"] is False  # rescheduled, not pinned
        assert client.wait(retry["job_id"], timeout=30).solved

    def test_finished_records_are_pruned_past_max_records(self,
                                                          gateway_factory):
        gateway = gateway_factory(max_records=2)
        client = RoutingClient(port=gateway.port)
        for seed in range(4):
            ticket = client.submit(random_circuit(4, 6, seed=800 + seed,
                                                  name=f"prune_{seed}"),
                                   architecture="tokyo6", router="sabre")
            client.wait(ticket["job_id"], timeout=30)
        assert len(gateway.gateway.jobs) <= 2
        assert gateway.gateway.counters["records_pruned"] >= 2


class TestDrain:
    def test_drain_completes_queued_jobs_and_closes(self, gateway_factory):
        gateway = gateway_factory()
        client = RoutingClient(port=gateway.port)
        # satmap with a real budget keeps the dispatcher busy long enough
        # that the drain demonstrably overlaps in-flight work.
        tickets = [client.submit(random_circuit(4, 10, seed=seed,
                                                name=f"drain_gw_{seed}"),
                                 architecture="tokyo6", router="satmap",
                                 time_budget=1.0)
                   for seed in range(3)]
        drain = client.drain()
        assert drain["draining"] is True
        # Submissions are refused from now on ...
        with pytest.raises(ServerError) as excinfo:
            client.submit(random_circuit(4, 6, seed=99),
                          architecture="tokyo6", router="sabre")
        assert excinfo.value.status == 503
        # ... but queued jobs still complete and the records hold results.
        gateway.stop(timeout=120)
        records = gateway.gateway.jobs
        assert len(records) == 3
        for ticket in tickets:
            record = records[ticket["job_id"]]
            assert record.status == "done"
            assert record.result is not None and record.result.solved
