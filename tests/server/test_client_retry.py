"""RoutingClient retry behaviour: backoff, jitter, Retry-After, failover.

Satellite of the fleet PR: a burst past the admission bucket used to
surface immediately as :class:`QuotaExceededError`; now the client sleeps
out the server's ``Retry-After`` hint (with capped exponential backoff and
jitter) and the burst succeeds.  A 503 carrying ``Retry-After`` -- the
dispatcher's "shard restarting" answer -- gets the same treatment, while a
plain 503 stays fatal.
"""

from __future__ import annotations

import random

import pytest

from repro.circuits.random_circuits import random_circuit
from repro.server import (AdmissionController, QuotaExceededError,
                          RoutingClient, ServerError)


class TestBackoffSchedule:
    def make(self, **kwargs) -> RoutingClient:
        kwargs.setdefault("_rng", random.Random(0))
        return RoutingClient(**kwargs)

    def test_server_hint_is_the_floor(self):
        client = self.make(backoff_base=0.1, backoff_cap=60.0)
        delay = client._backoff_delay(0, hint=2.0)
        assert 2.0 <= delay <= 2.5  # hint, plus at most 25% jitter

    def test_exponential_when_hint_is_optimistic(self):
        client = self.make(backoff_base=0.5, backoff_cap=60.0)
        # attempt 3: base * 2**3 = 4.0 dominates a 0.1s hint
        delay = client._backoff_delay(3, hint=0.1)
        assert 4.0 <= delay <= 5.0

    def test_cap_bounds_the_stall(self):
        client = self.make(backoff_base=1.0, backoff_cap=3.0)
        delay = client._backoff_delay(10, hint=100.0)
        assert delay <= 3.0 * 1.25

    def test_jitter_desynchronises_clients(self):
        delays = {RoutingClient(_rng=random.Random(seed))._backoff_delay(
            0, hint=1.0) for seed in range(8)}
        assert len(delays) == 8  # every client picks a different sleep

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RoutingClient(retry_quota=-1)
        with pytest.raises(ValueError):
            RoutingClient(backoff_base=0.0)


class TestRetryDecision:
    """Which failures are retried, driven through a scripted transport."""

    def scripted(self, monkeypatch, outcomes, **kwargs):
        kwargs.setdefault("backoff_base", 0.001)
        kwargs.setdefault("backoff_cap", 0.002)
        kwargs.setdefault("_rng", random.Random(1))
        client = RoutingClient(**kwargs)
        calls = []

        def fake_once(method, path, payload=None, timeout=None):
            calls.append(path)
            outcome = outcomes[min(len(calls), len(outcomes)) - 1]
            if isinstance(outcome, BaseException):
                raise outcome
            return outcome

        monkeypatch.setattr(client, "_request_once", fake_once)
        return client, calls

    def test_429_retried_until_success(self, monkeypatch):
        client, calls = self.scripted(monkeypatch, [
            QuotaExceededError(429, {"error": "over quota"}, retry_after=0.001),
            QuotaExceededError(429, {"error": "over quota"}, retry_after=0.001),
            {"ok": True},
        ], retry_quota=2)
        assert client._request("POST", "/v1/jobs") == {"ok": True}
        assert len(calls) == 3
        assert client.retries == 2

    def test_429_exhausts_quota_and_surfaces(self, monkeypatch):
        client, calls = self.scripted(monkeypatch, [
            QuotaExceededError(429, {"error": "over quota"}, retry_after=0.001),
        ], retry_quota=2)
        with pytest.raises(QuotaExceededError):
            client._request("POST", "/v1/jobs")
        assert len(calls) == 3  # initial try + 2 retries

    def test_503_with_retry_after_is_transient(self, monkeypatch):
        client, calls = self.scripted(monkeypatch, [
            ServerError(503, {"error": "shard 1 is restarting"},
                        retry_after=0.001),
            {"ok": True},
        ], retry_quota=2)
        assert client._request("GET", "/v1/jobs/abc") == {"ok": True}
        assert len(calls) == 2

    def test_plain_503_is_final(self, monkeypatch):
        client, calls = self.scripted(monkeypatch, [
            ServerError(503, {"error": "gateway is draining"}),
        ], retry_quota=5)
        with pytest.raises(ServerError):
            client._request("POST", "/v1/jobs")
        assert len(calls) == 1  # no retry without a Retry-After promise

    def test_400_is_never_retried(self, monkeypatch):
        client, calls = self.scripted(monkeypatch, [
            ServerError(400, {"error": "bad qasm"}),
        ], retry_quota=5)
        with pytest.raises(ServerError):
            client._request("POST", "/v1/jobs")
        assert len(calls) == 1

    def test_connection_failure_retried(self, monkeypatch):
        client, calls = self.scripted(monkeypatch, [
            ConnectionRefusedError("worker restarting"),
            {"ok": True},
        ], retry_quota=1)
        assert client._request("GET", "/healthz") == {"ok": True}
        assert len(calls) == 2

    def test_zero_quota_fails_fast(self, monkeypatch):
        client, calls = self.scripted(monkeypatch, [
            QuotaExceededError(429, {"error": "over quota"}, retry_after=0.001),
        ], retry_quota=0)
        with pytest.raises(QuotaExceededError):
            client._request("POST", "/v1/jobs")
        assert len(calls) == 1


class TestBurstAgainstRealGateway:
    def test_burst_past_bucket_succeeds_with_retries(self, gateway_factory):
        """Eight rapid submissions through a 3-token bucket all land.

        The bucket refills at 20 tokens/s, so the server's Retry-After
        hints are tiny; the retrying client absorbs them instead of
        surfacing five 429s (which is what ``retry_quota=0`` sees -- the
        companion assertions in test_concurrent_clients.py).
        """
        admission = AdmissionController(rate=20.0, burst=3.0,
                                        max_pending=1000)
        gateway = gateway_factory(admission=admission)
        client = RoutingClient(port=gateway.port, client_id="bursty",
                               retry_quota=4, backoff_base=0.05,
                               _rng=random.Random(2))
        tickets = []
        for index in range(8):
            circuit = random_circuit(4, 6, seed=800 + index)
            tickets.append(client.submit(circuit, architecture="tokyo6",
                                         router="sabre:seed=1"))
        assert len(tickets) == 8
        assert len({ticket["job_id"] for ticket in tickets}) == 8
        assert client.retries > 0  # the bucket really did push back
        stats = gateway.gateway.admission.stats()
        assert stats["rejected_quota"] > 0
        assert stats["admitted"] == 8
