"""The ``serve`` and ``submit`` CLI subcommands."""

from __future__ import annotations

import json

import pytest

from repro.circuits.qasm import load_qasm
from repro.cli import build_parser, main

QASM = """OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
cx q[0],q[1];
cx q[0],q[2];
cx q[3],q[2];
cx q[0],q[3];
"""


@pytest.fixture
def qasm_file(tmp_path):
    path = tmp_path / "prog.qasm"
    path.write_text(QASM)
    return path


class TestParsers:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8037
        assert args.time_budget == 10.0
        assert args.rate == 20.0
        assert args.max_pending == 256
        assert not args.no_cache

    def test_submit_defaults(self):
        args = build_parser().parse_args(["submit", "x.qasm"])
        assert args.url == "http://127.0.0.1:8037"
        assert args.router == "satmap"
        assert not args.no_wait

    def test_submit_rejects_bad_spec(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "x.qasm",
                                       "--router", "no-such"])

    def test_serve_rejects_bad_budget(self, capsys):
        assert main(["serve", "--time-budget", "-1"]) == 2
        assert "positive" in capsys.readouterr().err


class TestSubmitCommand:
    def test_submit_waits_and_writes_output(self, gateway, qasm_file,
                                            tmp_path, capsys):
        routed = tmp_path / "routed.qasm"
        argv = ["submit", str(qasm_file), "--url", gateway.url,
                "--arch", "tokyo6", "--router", "sabre:seed=0",
                "--output", str(routed), "--client-id", "cli-test"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "SABRE" in out
        assert routed.exists()
        load_qasm(routed)  # parses back

    def test_submit_json_record(self, gateway, qasm_file, capsys):
        argv = ["submit", str(qasm_file), "--url", gateway.url,
                "--arch", "tokyo6", "--router", "sabre:seed=0", "--json"]
        assert main(argv) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["solved"] is True
        assert record["router"] == "SABRE"
        assert record["deduplicated"] is False
        assert record["server"] == gateway.url

    def test_submit_no_wait_prints_ticket(self, gateway, qasm_file, capsys):
        argv = ["submit", str(qasm_file), "--url", gateway.url,
                "--arch", "tokyo6", "--router", "sabre:seed=0",
                "--no-wait", "--json"]
        assert main(argv) == 0
        ticket = json.loads(capsys.readouterr().out)
        assert ticket["status"] in ("queued", "running", "done")
        assert len(ticket["job_id"]) == 64

    def test_submit_against_dead_server_fails_cleanly(self, qasm_file, capsys):
        argv = ["submit", str(qasm_file), "--url", "http://127.0.0.1:1",
                "--arch", "tokyo6"]
        assert main(argv) == 2
        assert "cannot submit" in capsys.readouterr().err
