"""Gateway observability: the trace endpoint, histograms, and trace files."""

from __future__ import annotations

import pytest

from repro.circuits.random_circuits import random_circuit
from repro.obs import check_exposition, find_span, span_names, validate_trace
from repro.obs.export import read_traces
from repro.server import RoutingClient, ServerError

#: Histogram families the gateway's /metrics must always expose.
HISTOGRAM_FAMILIES = (
    "repro_job_seconds",
    "repro_stage_seconds",
    "repro_queue_wait_seconds",
    "repro_solve_conflicts",
    "repro_gateway_job_seconds",
)


@pytest.fixture
def client(gateway):
    return RoutingClient(port=gateway.port, client_id="tracer")


@pytest.fixture
def circuit():
    return random_circuit(3, 5, seed=23, name="obs_test")


class TestTraceEndpoint:
    def test_routed_job_yields_a_complete_trace_tree(self, client, circuit):
        ticket = client.submit(circuit, architecture="line8", router="satmap",
                               time_budget=10.0)
        client.wait(ticket["job_id"], timeout=60)
        payload = client.trace(ticket["job_id"])
        assert payload["job_id"] == ticket["job_id"]
        tree = payload["trace"]
        assert tree["name"] == "job"
        names = span_names(tree)
        for required in ("admit", "queue-wait", "encode", "solve", "extract",
                         "verify"):
            assert required in names, f"{required!r} missing from {names}"
        assert validate_trace(tree) == []
        solve = find_span(tree, "solve")
        assert "conflicts" in solve["attributes"]
        assert "propagations" in solve["attributes"]
        # The rendered form is the same tree `repro trace` prints.
        assert "queue-wait" in payload["rendered"]

    def test_unknown_job_404(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.trace("no-such-job")
        assert excinfo.value.status == 404

    def test_heuristic_job_still_traces_queue_and_verify(self, client, circuit):
        ticket = client.submit(circuit, architecture="tokyo6", router="sabre")
        client.wait(ticket["job_id"], timeout=30)
        tree = client.trace(ticket["job_id"])["trace"]
        names = span_names(tree)
        assert "queue-wait" in names and "verify" in names
        assert validate_trace(tree) == []


class TestMetricsHistograms:
    def test_metrics_exposes_checked_histogram_families(self, client, circuit):
        ticket = client.submit(circuit, architecture="line8", router="satmap",
                               time_budget=10.0)
        client.wait(ticket["job_id"], timeout=60)
        text = client.metrics_text()
        assert check_exposition(text) == []
        for family in HISTOGRAM_FAMILIES:
            assert f"# TYPE {family} histogram" in text
        # A finished solve populated the latency and depth histograms.
        assert "repro_job_seconds_count 1" in text
        assert 'repro_stage_seconds_bucket{stage="solve",le="+Inf"}' in text
        assert "repro_queue_wait_seconds_count 1" in text
        assert "repro_gateway_job_seconds_count 1" in text


class TestTraceDir:
    def test_gateway_appends_finished_traces_as_jsonl(
            self, gateway_factory, circuit, tmp_path):
        handle = gateway_factory(trace_dir=tmp_path)
        client = RoutingClient(port=handle.port, client_id="tracer")
        ticket = client.submit(circuit, architecture="line8", router="satmap",
                               time_budget=10.0)
        client.wait(ticket["job_id"], timeout=60)
        traces = read_traces(tmp_path)
        assert len(traces) == 1
        assert traces[0]["name"] == "job"
        assert traces[0]["attributes"]["job"] == ticket["job_id"]
        assert validate_trace(traces[0]) == []
