"""Shared helpers for the benchmark suite.

Each ``bench_*.py`` file regenerates one table or figure from the paper's
evaluation (Section VII) on the scaled suites described in
``repro.analysis.suite``.  Results are printed and also written to
``benchmarks/results/<name>.txt`` so they survive pytest's output capture; the
numbers referenced in EXPERIMENTS.md come from those files.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: Per-instance time budget (seconds) for constraint-based tools.  The paper
#: uses 1800 s per instance on a cluster; the scaled experiments use a few
#: seconds per instance so the full harness stays laptop-sized.
CONSTRAINT_BUDGET = 5.0
#: Budget for the anytime SATMAP configurations.
SATMAP_BUDGET = 5.0
#: Budget for heuristic tools (they are far from the limit in practice).
HEURISTIC_BUDGET = 30.0


def save_report(name: str, text: str) -> None:
    """Print a report and persist it under ``benchmarks/results``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


def run_once(benchmark, function):
    """Run ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, rounds=1, iterations=1)
