"""Intra-job parallelism: serial vs cube-and-conquer vs pipelined slicing.

Measures the two ``repro.parallel`` schemes on a Fig. 15/16-class
scalability instance (a random circuit on the 20-qubit Tokyo architecture):

* **cube-and-conquer** (``cube_workers=N``): the monolithic solve is split
  into disjoint initial-mapping cubes racing around a shared incumbent
  bound, measured at 1, 2, and 4 workers against the serial solve;
* **pipelined slicing** (``pipeline_slices=true``): the sliced solve with
  slice ``k+1``'s encoding pre-built in a worker while slice ``k`` solves,
  measured against the plain sliced solve.

Correctness is asserted, not assumed: every cube arm must reproduce the
serial SWAP count (completed races are cost-identical by construction), the
pipelined route must reproduce the serial sliced result exactly, and every
routing is re-checked with the independent verifier.  The full run
additionally requires the 4-worker cube race to beat the serial solve by at
least ``MIN_SPEEDUP``x wall-clock.

Results go to ``benchmarks/results/BENCH_parallel.json``.  ``--smoke`` runs
a small instance with correctness checks only (timings on shared CI runners
are too noisy to gate on).

Usage::

    PYTHONPATH=src python benchmarks/bench_intrajob_parallel.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

_HERE = Path(__file__).resolve().parent
if str(_HERE) not in sys.path:  # direct invocation from any cwd
    sys.path.insert(0, str(_HERE))
_SRC = _HERE.parent / "src"
try:  # fall back to the in-repo tree when repro is not installed
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - environment dependent
    sys.path.insert(0, str(_SRC))

from _harness import RESULTS_DIR  # noqa: E402

from repro.circuits.random_circuits import random_circuit  # noqa: E402
from repro.core import SatMapRouter, verify_routing  # noqa: E402
from repro.hardware.topologies import ring_architecture, tokyo_architecture  # noqa: E402

#: Required wall-clock advantage of the 4-worker cube race (full mode).
MIN_SPEEDUP = 1.8
WORKER_COUNTS = (1, 2, 4)


def _instance(smoke: bool):
    if smoke:
        return random_circuit(4, 8, seed=3), ring_architecture(5), 60.0, 4
    # Chosen so the serial proof takes seconds (the regime the paper's
    # Fig. 15/16 budget sweep probes) but the optimum is reached quickly --
    # exactly where the whole-space UNSAT proof dominates and cube
    # decomposition pays.
    return random_circuit(8, 14, seed=3), tokyo_architecture(), 120.0, 6


def _timed_route(router, circuit, architecture) -> tuple:
    start = time.monotonic()
    result = router.route(circuit, architecture)
    return result, time.monotonic() - start


def _cube_pass(circuit, architecture, budget: float) -> tuple[dict, list[str]]:
    failures: list[str] = []
    serial, serial_s = _timed_route(
        SatMapRouter(time_budget=budget), circuit, architecture)
    if not serial.solved:
        return {}, [f"serial solve failed within {budget}s"]
    verify_routing(circuit, serial.routed_circuit, serial.initial_mapping,
                   architecture)
    arms = {"serial": {"elapsed_s": round(serial_s, 6),
                       "swaps": serial.swap_count,
                       "status": serial.status.value}}
    for workers in WORKER_COUNTS:
        result, elapsed = _timed_route(
            SatMapRouter(time_budget=budget, cube_workers=workers),
            circuit, architecture)
        if not result.solved:
            failures.append(f"cube race (workers={workers}) failed to solve")
            continue
        verify_routing(circuit, result.routed_circuit, result.initial_mapping,
                       architecture)
        if result.swap_count != serial.swap_count:
            failures.append(
                f"cube race (workers={workers}) cost {result.swap_count} "
                f"!= serial {serial.swap_count}")
        arms[f"cube_w{workers}"] = {
            "elapsed_s": round(elapsed, 6),
            "swaps": result.swap_count,
            "status": result.status.value,
            "speedup": round(serial_s / elapsed, 3) if elapsed > 0 else None,
            "cubes": result.solver_stats.get("cubes"),
            "cubes_pruned": result.solver_stats.get("cubes_pruned"),
        }
    return arms, failures


def _pipeline_pass(circuit, architecture, budget: float,
                   slice_size: int) -> tuple[dict, list[str]]:
    failures: list[str] = []
    serial, serial_s = _timed_route(
        SatMapRouter(time_budget=budget, slice_size=slice_size),
        circuit, architecture)
    piped, piped_s = _timed_route(
        SatMapRouter(time_budget=budget, slice_size=slice_size,
                     pipeline_slices=True),
        circuit, architecture)
    if not (serial.solved and piped.solved):
        return {}, [f"a sliced arm failed to solve within {budget}s"]
    for result in (serial, piped):
        verify_routing(circuit, result.routed_circuit, result.initial_mapping,
                       architecture)
    if piped.swap_count != serial.swap_count:
        failures.append(f"pipelined cost {piped.swap_count} != sliced serial "
                        f"{serial.swap_count}")
    arms = {
        "sliced_serial": {"elapsed_s": round(serial_s, 6),
                          "swaps": serial.swap_count,
                          "slices": serial.num_slices},
        "sliced_pipelined": {
            "elapsed_s": round(piped_s, 6),
            "swaps": piped.swap_count,
            "slices": piped.num_slices,
            "prebuilt": piped.solver_stats.get("pipeline_prebuilt"),
            "invalidated": piped.solver_stats.get("pipeline_invalidated"),
        },
    }
    return arms, failures


def run(smoke: bool, output: Path) -> int:
    circuit, architecture, budget, slice_size = _instance(smoke)
    # Correctness failures are fatal immediately; a timing shortfall gets
    # fresh measurement passes before the run is declared a regression
    # (shared runners are noisy).
    attempts = 0
    while True:
        attempts += 1
        cubes, failures = _cube_pass(circuit, architecture, budget)
        speedup = (cubes.get("cube_w4", {}).get("speedup") or 0.0) if cubes else 0.0
        if failures or speedup >= MIN_SPEEDUP or attempts >= 3:
            break
        print(f"speedup only {speedup:.2f}x on attempt {attempts}; "
              "re-measuring", file=sys.stderr)
    pipeline, pipeline_failures = _pipeline_pass(circuit, architecture,
                                                 budget, slice_size)
    failures.extend(pipeline_failures)

    if speedup < MIN_SPEEDUP:
        message = (f"4-worker cube race reached only {speedup:.2f}x over "
                   f"serial (required {MIN_SPEEDUP}x) in {attempts} passes")
        if smoke:
            # Correctness stays fatal in smoke mode; wall-clock does not
            # gate CI -- the smoke instance is deliberately tiny and the
            # runner is shared.
            print(f"WARNING: {message}", file=sys.stderr)
        else:
            failures.append(message)

    report = {
        "benchmark": "intrajob_parallel",
        "mode": "smoke" if smoke else "full",
        "instance": {"circuit": circuit.name,
                     "architecture": architecture.name,
                     "budget_s": budget,
                     "slice_size": slice_size},
        "min_speedup": MIN_SPEEDUP,
        "cube": cubes,
        "pipeline": pipeline,
        "failures": failures,
    }
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")

    print(f"{'arm':<18} {'elapsed (s)':>12} {'swaps':>6} {'speedup':>8}")
    print("-" * 48)
    for name, arm in {**cubes, **pipeline}.items():
        print(f"{name:<18} {arm['elapsed_s']:>12.3f} {arm['swaps']:>6} "
              f"{arm.get('speedup', '-'):>8}")
    print(f"\nreport written to {output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK: cost-identical arms, verified routings"
          + ("" if smoke else f", 4-worker speedup >= {MIN_SPEEDUP}x"))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small instance, correctness checks only")
    parser.add_argument("--output", type=Path,
                        default=RESULTS_DIR / "BENCH_parallel.json")
    args = parser.parse_args(argv)
    return run(args.smoke, args.output)


if __name__ == "__main__":
    raise SystemExit(main())
