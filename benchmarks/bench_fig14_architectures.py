"""E7 -- Fig. 14: sensitivity of heuristic quality to the connectivity graph.

Paper result: TKET is close to SATMAP on the sparse Tokyo- graph (mean cost
ratio 1.08) but much worse on Tokyo (3.66) and Tokyo+ (5.77) -- heuristics are
not robust to denser, less uniform connectivity.  The reproduced claim: on the
scaled Tokyo-like family, the TKET-style router's mean cost ratio versus
SATMAP on the sparse variant is no larger than on the dense variant.
"""

from _harness import HEURISTIC_BUDGET, SATMAP_BUDGET, run_once, save_report

from repro.analysis.experiments import run_many_routers
from repro.analysis.metrics import mean_cost_ratio
from repro.analysis.reporting import render_table
from repro.analysis.suite import mini_tokyo_family, tiny_suite
from repro.baselines import TketLikeRouter
from repro.core import SatMapRouter


def run_experiment():
    suite = tiny_suite()
    sparse, medium, dense = mini_tokyo_family(rows=2, columns=4)
    ratios = {}
    for architecture in (sparse, medium, dense):
        comparison = run_many_routers(
            {
                "SATMAP": lambda: SatMapRouter(slice_size=25, time_budget=SATMAP_BUDGET),
                "TKET-like": lambda: TketLikeRouter(time_budget=HEURISTIC_BUDGET),
            },
            suite, architecture)
        ratios[architecture.name] = comparison.cost_ratios("TKET-like", "SATMAP")
    return sparse.name, medium.name, dense.name, ratios


def test_fig14_architecture_variation(benchmark):
    sparse_name, medium_name, dense_name, ratios = run_once(benchmark, run_experiment)
    rows = [[name, len(values), mean_cost_ratio(values),
             sum(1 for value in values if value is None)]
            for name, values in ratios.items()]
    report = render_table(
        ["architecture", "# compared", "mean TKET-like/SATMAP cost ratio",
         "# SATMAP zero-cost wins"],
        rows, title="Fig. 14 (scaled): cost ratio across the Tokyo-like family")
    save_report("fig14_architectures", report)

    sparse_mean = mean_cost_ratio(ratios[sparse_name])
    dense_mean = mean_cost_ratio(ratios[dense_name])
    import math

    if not (math.isnan(sparse_mean) or math.isnan(dense_mean)):
        assert sparse_mean <= dense_mean + 0.75, (
            "heuristics should degrade (relative to SATMAP) as connectivity grows")
