"""Ablation: MaxSAT strategy behind SATMAP (linear vs Fu-Malik vs OLL/RC2).

The paper fixes the MaxSAT engine (Open-WBO-Inc-MCS, an anytime linear
search).  DESIGN.md calls out the engine strategy as a design choice worth
ablating: the repository provides three interchangeable strategies, and this
benchmark measures whether the choice affects (a) how many instances are
solved within the budget, (b) solution cost where several strategies prove
optimality, and (c) runtime.

Expected shape: on instances every strategy solves to optimality the costs
agree exactly (they are all exact algorithms); the anytime linear search is
the only one that still reports a usable solution when interrupted, which is
why it is the default.
"""

from _harness import run_once, save_report

from repro.analysis.reporting import render_table
from repro.analysis.suite import default_architecture, tiny_suite
from repro.core import SatMapRouter

BUDGET = 6.0
STRATEGIES = ("linear", "core-guided", "rc2")


def run_experiment():
    suite = tiny_suite()[:8]
    architecture = default_architecture(6)
    records = {strategy: [] for strategy in STRATEGIES}
    for bench in suite:
        for strategy in STRATEGIES:
            router = SatMapRouter(slice_size=10, time_budget=BUDGET, strategy=strategy,
                                  name=f"SATMAP[{strategy}]")
            records[strategy].append(router.route(bench.circuit, architecture))
    return suite, records


def test_ablation_maxsat_strategy(benchmark):
    suite, records = run_once(benchmark, run_experiment)

    rows = []
    for strategy in STRATEGIES:
        solved = [result for result in records[strategy] if result.solved]
        optimal = [result for result in solved if result.optimal]
        mean_time = (sum(result.solve_time for result in solved) / len(solved)
                     if solved else float("nan"))
        mean_swaps = (sum(result.swap_count for result in solved) / len(solved)
                      if solved else float("nan"))
        rows.append([strategy, f"{len(solved)}/{len(suite)}", len(optimal),
                     round(mean_swaps, 2), round(mean_time, 2)])
    report = render_table(
        ["strategy", "# solved", "# proven optimal", "mean swaps", "mean time (s)"],
        rows, title="Ablation: MaxSAT strategy behind SATMAP (scaled suite)")

    # Where two strategies both prove optimality on the same instance, their
    # swap counts must agree -- they are exact algorithms for the same objective.
    disagreements = []
    for index, bench in enumerate(suite):
        optimal_costs = {records[strategy][index].swap_count
                         for strategy in STRATEGIES
                         if records[strategy][index].solved
                         and records[strategy][index].optimal}
        if len(optimal_costs) > 1:
            disagreements.append(bench.name)
    report += f"\n\noptimal-cost disagreements: {disagreements or 'none'}"
    save_report("ablation_maxsat_strategy", report)

    assert not disagreements
    # The anytime default must solve at least as many instances as any other
    # strategy under the same budget.
    linear_solved = sum(1 for result in records["linear"] if result.solved)
    for strategy in STRATEGIES:
        assert linear_solved >= sum(1 for result in records[strategy] if result.solved)
    assert linear_solved >= len(suite) - 1
