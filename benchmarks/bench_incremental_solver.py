"""From-scratch vs. session-reuse solving on the Fig. 10/11 circuit set.

For every circuit of the commonly-solved benchmark set the script runs both
solve-path configurations of :class:`repro.core.SatMapRouter`:

* **from-scratch** (``incremental=False``): every MaxSAT call builds a fresh
  CDCL solver and replays all hard clauses -- the pre-session behaviour;
* **session-reuse** (``incremental=True``): the encoding streams into one
  persistent :class:`repro.sat.SatSession`, and the follow-up solve reuses
  the live solver through the returned :class:`~repro.core.satmap.SliceContext`.

Each arm performs two solves per circuit: the initial solve, then the exact
operation slicing performs on a backtrack -- re-solving with the previous
final mapping excluded.  Both arms must agree on SWAP counts (the optima are
unique values) and every produced routing is re-checked with the independent
verifier; the session arm must be strictly faster in total.

Results are printed as a table and written as JSON under
``benchmarks/results/bench_incremental_solver.json``.  ``--smoke`` runs a
three-circuit subset with a small budget for CI.

Usage::

    PYTHONPATH=src python benchmarks/bench_incremental_solver.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

_HERE = Path(__file__).resolve().parent
if str(_HERE) not in sys.path:  # direct invocation from any cwd
    sys.path.insert(0, str(_HERE))
_SRC = _HERE.parent / "src"
try:  # fall back to the in-repo tree when repro is not installed
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - environment dependent
    sys.path.insert(0, str(_SRC))

from _harness import RESULTS_DIR, SATMAP_BUDGET  # noqa: E402

from repro.analysis.suite import default_architecture, tiny_suite  # noqa: E402
from repro.core import SatMapRouter, verify_routing  # noqa: E402
from repro.sat.backends import native_available  # noqa: E402


def _run_arm(circuit, architecture, budget: float, incremental: bool,
             solver_backend: str | None = None) -> dict:
    """One arm: initial solve + exclusion re-solve (the backtrack operation)."""
    router = SatMapRouter(time_budget=budget, incremental=incremental,
                          solver_backend=solver_backend)
    start = time.monotonic()
    first = router.solve_monolithic(circuit, architecture, budget)
    if not first.result.solved:
        return {"solved": False, "elapsed": time.monotonic() - start}
    second = router.solve_monolithic(
        circuit, architecture, budget,
        excluded_final_mappings=[dict(first.result.final_mapping)],
        context=first.context)
    elapsed = time.monotonic() - start
    if not second.result.solved:
        return {"solved": False, "elapsed": elapsed}
    for outcome in (first, second):
        verify_routing(circuit, outcome.result.routed_circuit,
                       outcome.result.initial_mapping, architecture)
    return {
        "solved": True,
        "elapsed": elapsed,
        "swaps_first": first.result.swap_count,
        "swaps_resolve": second.result.swap_count,
        "optimal": first.result.optimal and second.result.optimal,
        "sat_calls": first.result.sat_calls + second.result.sat_calls,
        "stage_timings": {
            stage: round(first.result.stage_timings.get(stage, 0.0)
                         + second.result.stage_timings.get(stage, 0.0), 6)
            for stage in ("encode", "solve", "extract")},
        "clauses_streamed": second.result.clauses_streamed,
        "learnt_retained": second.result.learnt_clauses_retained,
        "context_reused": second.context is first.context,
    }


def _measure_suite(suite, architecture, budget: float
                   ) -> tuple[list[dict], list[str], float, float]:
    """One timed pass over the whole suite: rows, failures, arm totals."""
    rows = []
    failures = []
    scratch_total = 0.0
    session_total = 0.0
    for bench in suite:
        scratch = _run_arm(bench.circuit, architecture, budget, incremental=False)
        session = _run_arm(bench.circuit, architecture, budget, incremental=True)
        row = {"circuit": bench.name, "scratch": scratch, "session": session}
        rows.append(row)
        if not (scratch.get("solved") and session.get("solved")):
            failures.append(f"{bench.name}: an arm failed to solve within {budget}s")
            continue
        scratch_total += scratch["elapsed"]
        session_total += session["elapsed"]
        for phase in ("swaps_first", "swaps_resolve"):
            if scratch[phase] != session[phase]:
                failures.append(
                    f"{bench.name}: SWAP count mismatch on {phase}: "
                    f"from-scratch={scratch[phase]} session={session[phase]}")
        if not session["context_reused"]:
            failures.append(f"{bench.name}: session arm did not reuse its context")
    return rows, failures, scratch_total, session_total


def _geomean(values: list[float]) -> float:
    if not values:
        return float("nan")
    return math.exp(sum(math.log(v) for v in values) / len(values))


#: Full runs require the compiled core to beat the reference by this factor
#: (geometric mean over per-circuit solve-stage times).
NATIVE_SPEEDUP_GATE = 10.0


def _measure_backends(suite, architecture, budget: float
                      ) -> tuple[list[dict], list[str], float]:
    """Python-vs-native comparison on the session-reuse workload.

    Both backends run the exact incremental operation the session arm times
    (initial solve + exclusion re-solve through one live session); the
    speedup is the geometric mean of per-circuit **solve-stage** ratios, so
    encoding and extraction (identical Python in both arms) do not dilute
    the solver comparison.
    """
    rows = []
    failures = []
    ratios = []
    for bench in suite:
        arms = {}
        for backend in ("python", "native"):
            arms[backend] = _run_arm(bench.circuit, architecture, budget,
                                     incremental=True, solver_backend=backend)
        python_arm, native_arm = arms["python"], arms["native"]
        row = {"circuit": bench.name, "python": python_arm, "native": native_arm}
        rows.append(row)
        if not (python_arm.get("solved") and native_arm.get("solved")):
            failures.append(
                f"{bench.name}: a backend arm failed to solve within {budget}s")
            continue
        for phase in ("swaps_first", "swaps_resolve"):
            if python_arm[phase] != native_arm[phase]:
                failures.append(
                    f"{bench.name}: SWAP count diverged between backends on "
                    f"{phase}: python={python_arm[phase]} "
                    f"native={native_arm[phase]}")
        python_solve = python_arm["stage_timings"]["solve"]
        native_solve = native_arm["stage_timings"]["solve"]
        if native_solve > 0:
            ratio = python_solve / native_solve
            ratios.append(ratio)
            row["solve_speedup"] = round(ratio, 3)
    return rows, failures, _geomean(ratios)


def run(smoke: bool, budget: float, output: Path) -> int:
    suite = tiny_suite()[:3 if smoke else 8]
    architecture = default_architecture(8)
    # Timing on shared CI runners is noisy; a correctness failure (SWAP drift,
    # verifier, no reuse) is fatal immediately, but a timing inversion gets
    # fresh measurement passes before the run is declared a regression.
    attempts = 0
    while True:
        attempts += 1
        rows, failures, scratch_total, session_total = _measure_suite(
            suite, architecture, budget)
        if failures or session_total < scratch_total or attempts >= 3:
            break
        print(f"timing inversion on attempt {attempts} "
              f"(scratch {scratch_total:.3f}s vs session {session_total:.3f}s); "
              "re-measuring", file=sys.stderr)

    speedup = scratch_total / session_total if session_total > 0 else float("inf")
    if session_total >= scratch_total:
        message = (
            f"session-reuse ({session_total:.3f}s) was not strictly faster than "
            f"from-scratch ({scratch_total:.3f}s) in {attempts} measurement passes")
        if smoke:
            # Smoke runs gate CI: correctness checks (SWAP drift, verifier,
            # reuse) stay fatal, but sub-second timings on shared runners are
            # too noisy to fail a build over -- warn instead.  The full run
            # keeps the strict wall-clock requirement.
            print(f"WARNING: {message}", file=sys.stderr)
        else:
            failures.append(message)
    # ---- python vs native solve core, on the same session-reuse workload
    backends = None
    if native_available():
        attempts = 0
        while True:
            attempts += 1
            backend_rows, backend_failures, native_speedup = _measure_backends(
                suite, architecture, budget)
            if (backend_failures or attempts >= 3
                    or native_speedup >= NATIVE_SPEEDUP_GATE):
                break
            print(f"native speedup {native_speedup:.2f}x below the "
                  f"{NATIVE_SPEEDUP_GATE:.0f}x gate on attempt {attempts}; "
                  "re-measuring", file=sys.stderr)
        failures.extend(backend_failures)
        if not (native_speedup >= NATIVE_SPEEDUP_GATE):
            message = (
                f"native solve-stage speedup {native_speedup:.2f}x is below "
                f"the {NATIVE_SPEEDUP_GATE:.0f}x gate in {attempts} "
                "measurement passes")
            if smoke:
                # Sub-second smoke timings on shared runners are too noisy
                # to fail a build over; the full run keeps the hard gate.
                print(f"WARNING: {message}", file=sys.stderr)
            else:
                failures.append(message)
        backends = {
            "circuits": backend_rows,
            "solve_speedup_geomean": (round(native_speedup, 3)
                                      if math.isfinite(native_speedup)
                                      else None),
            "gate": NATIVE_SPEEDUP_GATE,
            "gate_enforced": not smoke,
        }
    else:
        print("WARNING: compiled solve core unavailable; skipping the "
              "python-vs-native comparison", file=sys.stderr)

    report = {
        "benchmark": "incremental_solver",
        "mode": "smoke" if smoke else "full",
        "budget_per_solve": budget,
        "circuits": rows,
        "totals": {
            "from_scratch_s": round(scratch_total, 6),
            "session_reuse_s": round(session_total, 6),
            "speedup": round(speedup, 3),
        },
        "backends": backends,
        "failures": failures,
    }
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    if backends is not None:
        native_report = {
            "benchmark": "native_solver",
            "mode": report["mode"],
            "budget_per_solve": budget,
            **backends,
            "failures": failures,
        }
        native_output = output.parent / "BENCH_native.json"
        native_output.write_text(
            json.dumps(native_report, indent=1, sort_keys=True) + "\n")

    header = f"{'circuit':<18} {'scratch (s)':>12} {'session (s)':>12} {'swaps':>6} {'reuse':>6}"
    print(header)
    print("-" * len(header))
    for row in rows:
        scratch, session = row["scratch"], row["session"]
        if scratch.get("solved") and session.get("solved"):
            swaps = f"{session['swaps_first']}/{session['swaps_resolve']}"
            reused = "yes" if session["context_reused"] else "NO"
            print(f"{row['circuit']:<18} {scratch['elapsed']:>12.3f} "
                  f"{session['elapsed']:>12.3f} {swaps:>6} {reused:>6}")
        else:
            print(f"{row['circuit']:<18} {'-':>12} {'-':>12} {'-':>6} {'-':>6}")
    print(f"\ntotals: from-scratch {scratch_total:.3f}s, "
          f"session-reuse {session_total:.3f}s  (speedup {speedup:.2f}x)")

    if backends is not None:
        header = (f"{'circuit':<18} {'py solve (s)':>13} {'nat solve (s)':>14} "
                  f"{'speedup':>8}")
        print(f"\nsolve core comparison (session-reuse workload)")
        print(header)
        print("-" * len(header))
        for row in backends["circuits"]:
            python_arm, native_arm = row["python"], row["native"]
            if python_arm.get("solved") and native_arm.get("solved"):
                print(f"{row['circuit']:<18} "
                      f"{python_arm['stage_timings']['solve']:>13.3f} "
                      f"{native_arm['stage_timings']['solve']:>14.3f} "
                      f"{row.get('solve_speedup', float('nan')):>7.2f}x")
            else:
                print(f"{row['circuit']:<18} {'-':>13} {'-':>14} {'-':>8}")
        geomean = backends["solve_speedup_geomean"]
        print(f"geomean solve-stage speedup: "
              f"{geomean if geomean is not None else float('nan'):.2f}x "
              f"(gate {NATIVE_SPEEDUP_GATE:.0f}x, "
              f"{'enforced' if backends['gate_enforced'] else 'warn-only'})")

    print(f"report written to {output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK: identical SWAP counts, verified routings, session-reuse faster")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="3-circuit subset with a small budget (CI)")
    parser.add_argument("--budget", type=float, default=None,
                        help=f"per-solve budget in seconds (default {SATMAP_BUDGET}, "
                             "smoke: 3.0)")
    parser.add_argument("--output", type=Path,
                        default=RESULTS_DIR / "bench_incremental_solver.json")
    args = parser.parse_args(argv)
    budget = args.budget if args.budget is not None else (3.0 if args.smoke
                                                          else SATMAP_BUDGET)
    return run(args.smoke, budget, args.output)


if __name__ == "__main__":
    sys.exit(main())
