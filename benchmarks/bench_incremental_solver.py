"""From-scratch vs. session-reuse solving on the Fig. 10/11 circuit set.

For every circuit of the commonly-solved benchmark set the script runs both
solve-path configurations of :class:`repro.core.SatMapRouter`:

* **from-scratch** (``incremental=False``): every MaxSAT call builds a fresh
  CDCL solver and replays all hard clauses -- the pre-session behaviour;
* **session-reuse** (``incremental=True``): the encoding streams into one
  persistent :class:`repro.sat.SatSession`, and the follow-up solve reuses
  the live solver through the returned :class:`~repro.core.satmap.SliceContext`.

Each arm performs two solves per circuit: the initial solve, then the exact
operation slicing performs on a backtrack -- re-solving with the previous
final mapping excluded.  Both arms must agree on SWAP counts (the optima are
unique values) and every produced routing is re-checked with the independent
verifier; the session arm must be strictly faster in total.

Results are printed as a table and written as JSON under
``benchmarks/results/bench_incremental_solver.json``.  ``--smoke`` runs a
three-circuit subset with a small budget for CI.

Usage::

    PYTHONPATH=src python benchmarks/bench_incremental_solver.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

_HERE = Path(__file__).resolve().parent
if str(_HERE) not in sys.path:  # direct invocation from any cwd
    sys.path.insert(0, str(_HERE))
_SRC = _HERE.parent / "src"
try:  # fall back to the in-repo tree when repro is not installed
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - environment dependent
    sys.path.insert(0, str(_SRC))

from _harness import RESULTS_DIR, SATMAP_BUDGET  # noqa: E402

from repro.analysis.suite import default_architecture, tiny_suite  # noqa: E402
from repro.core import SatMapRouter, verify_routing  # noqa: E402


def _run_arm(circuit, architecture, budget: float, incremental: bool) -> dict:
    """One arm: initial solve + exclusion re-solve (the backtrack operation)."""
    router = SatMapRouter(time_budget=budget, incremental=incremental)
    start = time.monotonic()
    first = router.solve_monolithic(circuit, architecture, budget)
    if not first.result.solved:
        return {"solved": False, "elapsed": time.monotonic() - start}
    second = router.solve_monolithic(
        circuit, architecture, budget,
        excluded_final_mappings=[dict(first.result.final_mapping)],
        context=first.context)
    elapsed = time.monotonic() - start
    if not second.result.solved:
        return {"solved": False, "elapsed": elapsed}
    for outcome in (first, second):
        verify_routing(circuit, outcome.result.routed_circuit,
                       outcome.result.initial_mapping, architecture)
    return {
        "solved": True,
        "elapsed": elapsed,
        "swaps_first": first.result.swap_count,
        "swaps_resolve": second.result.swap_count,
        "optimal": first.result.optimal and second.result.optimal,
        "sat_calls": first.result.sat_calls + second.result.sat_calls,
        "stage_timings": {
            stage: round(first.result.stage_timings.get(stage, 0.0)
                         + second.result.stage_timings.get(stage, 0.0), 6)
            for stage in ("encode", "solve", "extract")},
        "clauses_streamed": second.result.clauses_streamed,
        "learnt_retained": second.result.learnt_clauses_retained,
        "context_reused": second.context is first.context,
    }


def _measure_suite(suite, architecture, budget: float
                   ) -> tuple[list[dict], list[str], float, float]:
    """One timed pass over the whole suite: rows, failures, arm totals."""
    rows = []
    failures = []
    scratch_total = 0.0
    session_total = 0.0
    for bench in suite:
        scratch = _run_arm(bench.circuit, architecture, budget, incremental=False)
        session = _run_arm(bench.circuit, architecture, budget, incremental=True)
        row = {"circuit": bench.name, "scratch": scratch, "session": session}
        rows.append(row)
        if not (scratch.get("solved") and session.get("solved")):
            failures.append(f"{bench.name}: an arm failed to solve within {budget}s")
            continue
        scratch_total += scratch["elapsed"]
        session_total += session["elapsed"]
        for phase in ("swaps_first", "swaps_resolve"):
            if scratch[phase] != session[phase]:
                failures.append(
                    f"{bench.name}: SWAP count mismatch on {phase}: "
                    f"from-scratch={scratch[phase]} session={session[phase]}")
        if not session["context_reused"]:
            failures.append(f"{bench.name}: session arm did not reuse its context")
    return rows, failures, scratch_total, session_total


def run(smoke: bool, budget: float, output: Path) -> int:
    suite = tiny_suite()[:3 if smoke else 8]
    architecture = default_architecture(8)
    # Timing on shared CI runners is noisy; a correctness failure (SWAP drift,
    # verifier, no reuse) is fatal immediately, but a timing inversion gets
    # fresh measurement passes before the run is declared a regression.
    attempts = 0
    while True:
        attempts += 1
        rows, failures, scratch_total, session_total = _measure_suite(
            suite, architecture, budget)
        if failures or session_total < scratch_total or attempts >= 3:
            break
        print(f"timing inversion on attempt {attempts} "
              f"(scratch {scratch_total:.3f}s vs session {session_total:.3f}s); "
              "re-measuring", file=sys.stderr)

    speedup = scratch_total / session_total if session_total > 0 else float("inf")
    if session_total >= scratch_total:
        message = (
            f"session-reuse ({session_total:.3f}s) was not strictly faster than "
            f"from-scratch ({scratch_total:.3f}s) in {attempts} measurement passes")
        if smoke:
            # Smoke runs gate CI: correctness checks (SWAP drift, verifier,
            # reuse) stay fatal, but sub-second timings on shared runners are
            # too noisy to fail a build over -- warn instead.  The full run
            # keeps the strict wall-clock requirement.
            print(f"WARNING: {message}", file=sys.stderr)
        else:
            failures.append(message)
    report = {
        "benchmark": "incremental_solver",
        "mode": "smoke" if smoke else "full",
        "budget_per_solve": budget,
        "circuits": rows,
        "totals": {
            "from_scratch_s": round(scratch_total, 6),
            "session_reuse_s": round(session_total, 6),
            "speedup": round(speedup, 3),
        },
        "failures": failures,
    }
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")

    header = f"{'circuit':<18} {'scratch (s)':>12} {'session (s)':>12} {'swaps':>6} {'reuse':>6}"
    print(header)
    print("-" * len(header))
    for row in rows:
        scratch, session = row["scratch"], row["session"]
        if scratch.get("solved") and session.get("solved"):
            swaps = f"{session['swaps_first']}/{session['swaps_resolve']}"
            reused = "yes" if session["context_reused"] else "NO"
            print(f"{row['circuit']:<18} {scratch['elapsed']:>12.3f} "
                  f"{session['elapsed']:>12.3f} {swaps:>6} {reused:>6}")
        else:
            print(f"{row['circuit']:<18} {'-':>12} {'-':>12} {'-':>6} {'-':>6}")
    print(f"\ntotals: from-scratch {scratch_total:.3f}s, "
          f"session-reuse {session_total:.3f}s  (speedup {speedup:.2f}x)")
    print(f"report written to {output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK: identical SWAP counts, verified routings, session-reuse faster")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="3-circuit subset with a small budget (CI)")
    parser.add_argument("--budget", type=float, default=None,
                        help=f"per-solve budget in seconds (default {SATMAP_BUDGET}, "
                             "smoke: 3.0)")
    parser.add_argument("--output", type=Path,
                        default=RESULTS_DIR / "bench_incremental_solver.json")
    args = parser.parse_args(argv)
    budget = args.budget if args.budget is not None else (3.0 if args.smoke
                                                          else SATMAP_BUDGET)
    return run(args.smoke, budget, args.output)


if __name__ == "__main__":
    sys.exit(main())
