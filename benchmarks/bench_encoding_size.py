"""E11 -- encoding-size ablation (Section IV "Encoding size").

The paper argues the encoding needs O(|Phys| x |Logic| x |C|) constraints when
the number of SWAP slots per gate is held constant, thanks to the "only-one"
encoding, and that growing ``n`` (slots per gate) is what blows the encoding
up.  This bench measures variable and clause counts across circuit sizes,
architecture sizes, and ``n``, and checks the linear-in-|C| scaling.
"""

from _harness import run_once, save_report

from repro.analysis.reporting import render_table
from repro.circuits.random_circuits import random_circuit
from repro.core.encoder import EncodingOptions, QmrEncoder
from repro.hardware.topologies import reduced_tokyo_architecture, tokyo_architecture


def run_experiment():
    rows = []
    measurements = {}
    for num_gates in (10, 20, 40, 80):
        circuit = random_circuit(8, num_gates, seed=1, single_qubit_ratio=0.0)
        for arch in (reduced_tokyo_architecture(10), tokyo_architecture()):
            for swaps_per_gate in (1, 2):
                encoder = QmrEncoder(arch, EncodingOptions(
                    swaps_per_gate=swaps_per_gate, collapse_repeated_pairs=False))
                encoding = encoder.encode(circuit)
                rows.append([num_gates, arch.name, swaps_per_gate,
                             encoding.num_variables, encoding.num_hard_clauses,
                             encoding.num_soft_clauses])
                measurements[(num_gates, arch.name, swaps_per_gate)] = (
                    encoding.num_variables, encoding.num_hard_clauses)
    return rows, measurements


def test_encoding_size_scaling(benchmark):
    rows, measurements = run_once(benchmark, run_experiment)
    report = render_table(
        ["2q gates", "architecture", "n (slots/gate)", "variables", "hard clauses",
         "soft clauses"],
        rows, title="Encoding size across circuit size, architecture, and n")
    save_report("encoding_size", report)

    # Linear in |C|: doubling the gate count should roughly double the clause
    # count (within 2.6x, allowing for the fixed per-circuit overhead).
    for arch_name in ("tokyo-10", "tokyo"):
        small = measurements[(20, arch_name, 1)][1]
        large = measurements[(40, arch_name, 1)][1]
        assert large < 2.6 * small
        assert large > 1.5 * small
    # Growing n grows the encoding.
    for num_gates in (10, 20, 40, 80):
        one = measurements[(num_gates, "tokyo", 1)][1]
        two = measurements[(num_gates, "tokyo", 2)][1]
        assert two > one
