"""Gateway throughput: requests/sec at 1, 8, and 32 concurrent clients.

Measures the network serving layer end to end: a real
:class:`~repro.server.app.RoutingGateway` on a background thread, hit by N
threads each owning a blocking :class:`~repro.server.client.RoutingClient`.
Every request is a full submit -> long-poll -> result round trip over HTTP.

Two phases per concurrency level:

* **cold** -- every client submits *distinct* circuits: each one is a real
  solve through the worker pool;
* **warm** -- the identical payloads again: the gateway answers from its
  job records / the verified result cache, so this isolates the serving
  overhead (HTTP + protocol + dedup) from solver time.

Hard claims (enforced in both modes, they are correctness not timing):

* every request completes and every result verifies as solved;
* the warm phase performs **zero** new solves -- all repeats are served by
  dedup or the cache;
* no request is refused (admission is configured wide open here; quota
  behaviour has its own tests).

Timing inversions (warm slower than cold, throughput not scaling) only
warn in ``--smoke`` mode -- shared CI runners are too noisy -- but the
numbers are printed and written as JSON under ``benchmarks/results/`` for
inspection.

Usage::

    PYTHONPATH=src python benchmarks/bench_server_throughput.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

_HERE = Path(__file__).resolve().parent
if str(_HERE) not in sys.path:  # direct invocation from any cwd
    sys.path.insert(0, str(_HERE))
_SRC = _HERE.parent / "src"
try:  # fall back to the in-repo tree when repro is not installed
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - environment dependent
    sys.path.insert(0, str(_SRC))

from _harness import RESULTS_DIR  # noqa: E402

from repro.analysis.reporting import render_table  # noqa: E402
from repro.circuits.random_circuits import random_circuit  # noqa: E402
from repro.server import AdmissionController, GatewayThread, RoutingClient  # noqa: E402
from repro.service import BatchRoutingService  # noqa: E402

LEVELS = (1, 8, 32)
ROUTER = "sabre:seed=0"
ARCH = "tokyo8"


def make_workload(level: int, jobs_per_client: int) -> list[list]:
    """Distinct circuits, one batch per client (stable across phases)."""
    return [[random_circuit(4, 8 + (index % 4),
                            seed=10_000 + level * 1000 + client * 100 + index,
                            name=f"bench_l{level}_c{client}_{index}")
             for index in range(jobs_per_client)]
            for client in range(level)]


def run_phase(port: int, workload: list[list], timeout: float) -> dict:
    """All clients submit-and-wait their batch concurrently; returns metrics."""
    errors: list[BaseException] = []
    solved = [0] * len(workload)

    def client_loop(client_index: int) -> None:
        client = RoutingClient(port=port,
                               client_id=f"bench-client-{client_index}",
                               timeout=timeout)
        try:
            for circuit in workload[client_index]:
                result = client.route(circuit, architecture=ARCH,
                                      router=ROUTER, timeout=timeout)
                if result.solved:
                    solved[client_index] += 1
        except BaseException as error:
            errors.append(error)

    threads = [threading.Thread(target=client_loop, args=(index,))
               for index in range(len(workload))]
    start = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout + 30)
    elapsed = time.monotonic() - start
    if errors:
        raise errors[0]
    requests = sum(len(batch) for batch in workload)
    return {
        "requests": requests,
        "solved": sum(solved),
        "time": round(elapsed, 4),
        "requests_per_sec": round(requests / max(elapsed, 1e-9), 2),
    }


def run_level(level: int, jobs_per_client: int, timeout: float) -> dict:
    """One gateway per level, so counters are clean and ports never clash."""
    service = BatchRoutingService(mode="thread", time_budget=5.0)
    admission = AdmissionController(rate=10_000.0, burst=10_000.0,
                                    max_pending=10_000)
    with GatewayThread(service=service, admission=admission,
                       time_budget=5.0, max_batch=64) as gateway:
        workload = make_workload(level, jobs_per_client)
        cold = run_phase(gateway.port, workload, timeout)
        finished_after_cold = service.telemetry.counters["finished"]
        warm = run_phase(gateway.port, workload, timeout)
        finished_after_warm = service.telemetry.counters["finished"]
        counters = dict(gateway.gateway.counters)
        admission_stats = gateway.gateway.admission.stats()
    service.close()
    return {
        "clients": level,
        "jobs_per_client": jobs_per_client,
        "cold": cold,
        "warm": warm,
        "solves_cold": finished_after_cold,
        "new_solves_warm": finished_after_warm - finished_after_cold,
        "deduplicated": counters["deduplicated"],
        "rejected_quota": admission_stats["rejected_quota"],
        "rejected_backpressure": admission_stats["rejected_backpressure"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small CI configuration; timing claims only warn")
    parser.add_argument("--jobs-per-client", type=int, default=None,
                        help="override requests per client (default: 1 smoke, "
                             "4 full)")
    args = parser.parse_args(argv)
    jobs_per_client = (args.jobs_per_client if args.jobs_per_client is not None
                       else (1 if args.smoke else 4))
    timeout = 120.0

    report_rows = []
    records = []
    failures = []
    warnings = []
    for level in LEVELS:
        record = run_level(level, jobs_per_client, timeout)
        records.append(record)
        report_rows.append([
            level, record["cold"]["requests"],
            record["cold"]["time"], record["cold"]["requests_per_sec"],
            record["warm"]["time"], record["warm"]["requests_per_sec"],
        ])

        requests = record["cold"]["requests"]
        if record["cold"]["solved"] != requests:
            failures.append(f"{level} clients: cold phase solved "
                            f"{record['cold']['solved']}/{requests}")
        if record["warm"]["solved"] != requests:
            failures.append(f"{level} clients: warm phase solved "
                            f"{record['warm']['solved']}/{requests}")
        if record["new_solves_warm"] != 0:
            failures.append(f"{level} clients: warm phase re-solved "
                            f"{record['new_solves_warm']} jobs (dedup/cache "
                            f"must serve all repeats)")
        if record["rejected_quota"] or record["rejected_backpressure"]:
            failures.append(f"{level} clients: admission refused requests "
                            f"under a wide-open configuration")
        if record["warm"]["time"] > record["cold"]["time"]:
            warnings.append(f"{level} clients: warm phase ({record['warm']['time']}s) "
                            f"slower than cold ({record['cold']['time']}s)")

    table = render_table(
        ["clients", "requests", "cold (s)", "cold req/s", "warm (s)",
         "warm req/s"],
        report_rows,
        title=f"Gateway throughput ({jobs_per_client} jobs/client, "
              f"router {ROUTER})")
    print()
    print(table)

    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / "bench_server_throughput.json"
    out_path.write_text(json.dumps({
        "smoke": args.smoke,
        "router": ROUTER,
        "architecture": ARCH,
        "levels": records,
        "failures": failures,
        "warnings": warnings,
    }, indent=2, sort_keys=True))
    print(f"\nresults written to {out_path}")

    for warning in warnings:
        print(f"WARNING: {warning}")
    if not args.smoke and warnings:
        failures.extend(warnings)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK: all requests served, warm phase solver-free, no refusals")
    return 0


if __name__ == "__main__":
    sys.exit(main())
