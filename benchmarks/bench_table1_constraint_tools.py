"""E1 -- Table I / Fig. 1: SATMAP vs constraint-based tools.

Paper result: SATMAP solves 109/160 benchmarks (largest 598 two-qubit gates),
TB-OLSQ 38/160 (largest 90), EX-MQT 4/160 (largest 23) under a fixed
per-instance budget.  The reproduced claim is the *ordering*: under the same
scaled budget SATMAP solves at least as many instances as the TB-OLSQ-style
baseline, which solves at least as many as the EX-MQT-style baseline, and the
largest circuit solved follows the same ordering.
"""

from _harness import CONSTRAINT_BUDGET, SATMAP_BUDGET, run_once, save_report

from repro.analysis.experiments import run_many_routers
from repro.analysis.reporting import render_solve_rate_table
from repro.analysis.suite import default_architecture, small_suite
from repro.baselines import ExhaustiveOptimalRouter, OlsqStyleRouter
from repro.core import SatMapRouter


def run_experiment():
    suite = small_suite()
    architecture = default_architecture(8)
    routers = {
        "SATMAP": lambda: SatMapRouter(slice_size=10, time_budget=SATMAP_BUDGET),
        "TB-OLSQ-like": lambda: OlsqStyleRouter(time_budget=CONSTRAINT_BUDGET),
        "EX-MQT-like": lambda: ExhaustiveOptimalRouter(time_budget=CONSTRAINT_BUDGET,
                                                       expansion_limit=60_000),
    }
    comparison = run_many_routers(routers, suite, architecture)
    return comparison, len(suite)


def test_table1_constraint_tool_comparison(benchmark):
    comparison, total = run_once(benchmark, run_experiment)
    report = render_solve_rate_table(
        comparison, total,
        title="Table I (scaled): constraint-based tools, # solved and largest circuit")
    save_report("table1_constraint_tools", report)

    satmap_solved = comparison.solved_count("SATMAP")
    olsq_solved = comparison.solved_count("TB-OLSQ-like")
    exmqt_solved = comparison.solved_count("EX-MQT-like")
    # Paper shape: SATMAP >= TB-OLSQ >= EX-MQT in instances solved.
    assert satmap_solved >= olsq_solved
    assert satmap_solved >= exmqt_solved
    assert comparison.largest_solved("SATMAP") >= comparison.largest_solved("EX-MQT-like")
