"""Full observability stack overhead on the serving path.

Routes the same batch through two in-process gateways end to end
(client -> HTTP -> gateway -> service), with the gateway's ``/metrics``
scraped as it would be in production:

* **baseline** -- tracing only: the span tree the service has recorded
  since PR 7, SLO tracking and tail sampling off, no persistence;
* **full** -- the whole operational stack: rolling-window SLO tracking,
  structured event logging to a JSONL sink, tail-based trace sampling,
  and trace persistence, with ``/v1/slo`` polled alongside ``/metrics``.

Correctness is fatal in any mode: every job must solve in both arms, every
scrape must pass the exposition checker, the SLO window must have counted
every request, and the tail sampler must have classified every trace.  The
timing gate -- the full stack must cost **less than 5%** wall clock over
tracing alone -- warns in ``--smoke`` mode (shared CI runners are too noisy
for sub-second deltas) and fails the full run::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

_HERE = Path(__file__).resolve().parent
if str(_HERE) not in sys.path:  # direct invocation from any cwd
    sys.path.insert(0, str(_HERE))
try:  # fall back to the in-repo tree when repro is not installed
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - environment dependent
    sys.path.insert(0, str(_HERE.parent / "src"))

from _harness import RESULTS_DIR

from repro.circuits.random_circuits import random_circuit

OVERHEAD_LIMIT = 0.05
ROUTER = "sabre:seed=0"
ARCH = "tokyo8"
#: Scrape /metrics (and /v1/slo on the full arm) every N jobs, so the
#: measured overhead includes the render path operators actually pay for.
SCRAPE_EVERY = 4


def batch_circuits(count: int):
    return [random_circuit(4 + index % 2, 10 + index % 5, seed=2000 + index,
                           name=f"obs_bench_{index:02d}")
            for index in range(count)]


def run_arm(full: bool, circuits, budget: float) -> dict:
    """One gateway round-trip pass; returns timing plus correctness data."""
    from repro.obs import check_exposition, read_traces
    from repro.obs.sampling import TailSampler
    from repro.server import GatewayThread, RoutingClient
    from repro.service import BatchRoutingService

    service = BatchRoutingService(mode="serial", cache=False,
                                  time_budget=budget)
    scratch = None
    if full:
        scratch = Path(tempfile.mkdtemp(prefix="repro-obs-bench-"))
        kwargs = {"trace_dir": scratch, "events_dir": scratch,
                  "sampler": TailSampler(rate=0.1, slow_threshold=1.0)}
    else:
        kwargs = {"slo": False, "sampler": None}

    problems: list[str] = []
    try:
        with GatewayThread(service=service, time_budget=budget,
                           **kwargs) as handle:
            client = RoutingClient(port=handle.port, client_id="obs-bench")
            solved = 0
            start = time.monotonic()
            for index, circuit in enumerate(circuits):
                ticket = client.submit(circuit, architecture=ARCH,
                                       router=ROUTER)
                result = client.wait(ticket["job_id"], timeout=60)
                solved += int(result.solved)
                if index % SCRAPE_EVERY == 0:
                    text = client.metrics_text()
                    if full:
                        client.slo()
                    if check_exposition(text):
                        problems.append(
                            f"scrape {index} failed the exposition check")
            elapsed = time.monotonic() - start

            if solved != len(circuits):
                problems.append(f"{len(circuits) - solved} jobs unsolved")
            if full:
                status = client.slo()
                if status["routes"]["*"]["requests"] != len(circuits):
                    problems.append(
                        "SLO window missed requests: "
                        f"{status['routes']['*']['requests']} "
                        f"of {len(circuits)}")
                counts = handle.gateway.sampler.counts
                if sum(counts.values()) != len(circuits):
                    problems.append(f"sampler classified {counts}, "
                                    f"expected {len(circuits)} decisions")
                kept = sum(count for reason, count in counts.items()
                           if reason != "unsampled")
                if len(read_traces(scratch)) != kept:
                    problems.append("trace files disagree with the sampler")
                events = client.events()
                if "counts" not in events or "events" not in events:
                    problems.append("/v1/events is not answering properly")
    finally:
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)
    return {"elapsed": elapsed, "solved": solved, "problems": problems}


def run_bench(smoke: bool, budget: float, output: Path) -> int:
    circuits = batch_circuits(8 if smoke else 24)

    # Correctness problems are fatal on the first pass; a noisy timing
    # excursion gets fresh measurement passes before being declared real.
    attempts = 0
    while True:
        attempts += 1
        baseline = run_arm(False, circuits, budget)
        full = run_arm(True, circuits, budget)
        failures = baseline["problems"] + full["problems"]
        overhead = ((full["elapsed"] - baseline["elapsed"])
                    / max(baseline["elapsed"], 1e-9))
        if failures or overhead <= OVERHEAD_LIMIT or attempts >= 3:
            break
        print(f"overhead {overhead * 100.0:.1f}% on attempt {attempts}; "
              "re-measuring", file=sys.stderr)

    if overhead > OVERHEAD_LIMIT:
        message = (f"observability overhead {overhead * 100.0:.1f}% above "
                   f"{OVERHEAD_LIMIT * 100.0:.0f}% in {attempts} passes "
                   f"(baseline {baseline['elapsed']:.3f}s, "
                   f"full {full['elapsed']:.3f}s)")
        if smoke:
            # Sub-second smoke timings on shared runners are too noisy to
            # fail a build over; the full run keeps the strict gate.
            print(f"WARNING: {message}", file=sys.stderr)
        else:
            failures.append(message)

    report = {
        "benchmark": "obs_stack_overhead",
        "mode": "smoke" if smoke else "full",
        "jobs": len(circuits),
        "router": ROUTER,
        "architecture": ARCH,
        "scrape_every": SCRAPE_EVERY,
        "baseline_s": round(baseline["elapsed"], 6),
        "full_stack_s": round(full["elapsed"], 6),
        "overhead": round(overhead, 4),
        "measurement_passes": attempts,
        "failures": failures,
    }
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")

    print(f"{len(circuits)} jobs x {ROUTER} on {ARCH}, scrape every "
          f"{SCRAPE_EVERY} jobs")
    print(f"tracing only: {baseline['elapsed']:.3f}s   "
          f"full stack: {full['elapsed']:.3f}s   "
          f"overhead: {overhead * 100.0:+.1f}%")
    print(f"report written to {output}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK: SLO window complete, every trace classified, "
          "observability effectively free")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure the full observability stack's serving overhead")
    parser.add_argument("--smoke", action="store_true",
                        help="8-job subset (CI)")
    parser.add_argument("--budget", type=float, default=5.0,
                        help="per-job budget in seconds (default 5.0)")
    parser.add_argument("--output", type=Path,
                        default=RESULTS_DIR / "bench_obs_overhead.json")
    args = parser.parse_args(argv)
    return run_bench(args.smoke, args.budget, args.output)


if __name__ == "__main__":
    sys.exit(main())
