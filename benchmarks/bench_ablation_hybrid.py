"""Ablation: the hybrid mapper sketched in the paper's discussion (Section IX).

The paper suggests scaling the MaxSAT approach by solving only the *mapping*
constraints optimally and leaving routing to a heuristic.  The repository
implements that design as :class:`repro.core.hybrid.HybridSatMapRouter`; this
benchmark positions it between full SATMAP and pure SABRE on the scaled suite.

Expected shape: the hybrid's cost sits between SABRE's and SATMAP's (closer to
SABRE, since routing is heuristic again), while its placement instance stays
small -- one map step regardless of circuit length -- so it never times out on
circuits where full SATMAP does.
"""

from _harness import SATMAP_BUDGET, run_once, save_report

from repro.analysis.reporting import render_table
from repro.analysis.suite import default_architecture, small_suite
from repro.baselines import SabreRouter
from repro.core import HybridSatMapRouter, SatMapRouter

ROUTERS = ("SATMAP", "HYBRID", "SABRE")


def run_experiment():
    suite = small_suite()[:12]
    architecture = default_architecture(8)
    records = {name: [] for name in ROUTERS}
    for bench in suite:
        records["SATMAP"].append(
            SatMapRouter(slice_size=10, time_budget=SATMAP_BUDGET).route(
                bench.circuit, architecture))
        records["HYBRID"].append(
            HybridSatMapRouter(time_budget=SATMAP_BUDGET).route(
                bench.circuit, architecture))
        records["SABRE"].append(SabreRouter().route(bench.circuit, architecture))
    return suite, records


def test_ablation_hybrid_router(benchmark):
    suite, records = run_once(benchmark, run_experiment)

    rows = []
    for name in ROUTERS:
        solved = [result for result in records[name] if result.solved]
        total_swaps = sum(result.swap_count for result in solved)
        mean_time = (sum(result.solve_time for result in solved) / len(solved)
                     if solved else float("nan"))
        rows.append([name, f"{len(solved)}/{len(suite)}", total_swaps,
                     round(mean_time, 2)])
    report = render_table(
        ["router", "# solved", "total swaps (solved)", "mean time (s)"],
        rows, title="Ablation: hybrid placement+heuristic routing (Section IX)")

    per_circuit = []
    for index, bench in enumerate(suite):
        row = [bench.name, bench.num_two_qubit_gates]
        for name in ROUTERS:
            result = records[name][index]
            row.append(result.swap_count if result.solved else "-")
        per_circuit.append(row)
    report += "\n\n" + render_table(
        ["circuit", "2q gates"] + [f"{name} swaps" for name in ROUTERS], per_circuit,
        title="Per-circuit swap counts")
    save_report("ablation_hybrid", report)

    # The hybrid router's placement instance is circuit-length independent, so
    # it must solve everything the heuristics solve.
    hybrid_solved = sum(1 for result in records["HYBRID"] if result.solved)
    assert hybrid_solved == len(suite)

    # Aggregate quality ordering on commonly-solved instances:
    # SATMAP <= HYBRID (hybrid gives up optimal routing) and the hybrid stays
    # within a reasonable factor of SABRE.
    common = [index for index in range(len(suite))
              if all(records[name][index].solved for name in ROUTERS)]
    satmap_total = sum(records["SATMAP"][index].swap_count for index in common)
    hybrid_total = sum(records["HYBRID"][index].swap_count for index in common)
    sabre_total = sum(records["SABRE"][index].swap_count for index in common)
    assert satmap_total <= hybrid_total + 2
    assert hybrid_total <= 2 * sabre_total + 10
