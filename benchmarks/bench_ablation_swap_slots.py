"""Ablation: the number of SWAP slots per two-qubit gate (the paper's ``n``).

Section IV proves optimality only when ``n`` reaches the connectivity-graph
diameter, but Section VII sets ``n = 1`` after "experimentally determining it
is sufficient for near-optimal solutions".  This benchmark reproduces that
determination on the scaled suite: it routes the same circuits with ``n = 1``
and ``n = 2`` and reports solution cost and encoding size.

Expected shape: costs are identical (or within one SWAP) while the encoding
-- and therefore solve time -- grows markedly with ``n``, which is the
paper's justification for defaulting to 1.
"""

from _harness import run_once, save_report

from repro.analysis.reporting import render_table
from repro.analysis.suite import default_architecture, tiny_suite
from repro.core import SatMapRouter

BUDGET = 8.0
SLOT_COUNTS = (1, 2)


def run_experiment():
    suite = [bench for bench in tiny_suite() if bench.num_two_qubit_gates <= 14][:6]
    architecture = default_architecture(6)
    records = {slots: [] for slots in SLOT_COUNTS}
    for bench in suite:
        for slots in SLOT_COUNTS:
            router = SatMapRouter(slice_size=None, swaps_per_gate=slots,
                                  time_budget=BUDGET, name=f"NL-SATMAP[n={slots}]")
            records[slots].append(router.route(bench.circuit, architecture))
    return suite, records


def test_ablation_swap_slots(benchmark):
    suite, records = run_once(benchmark, run_experiment)

    rows = []
    for slots in SLOT_COUNTS:
        solved = [result for result in records[slots] if result.solved]
        mean_vars = (sum(result.num_variables for result in solved) / len(solved)
                     if solved else 0)
        mean_clauses = (sum(result.num_hard_clauses for result in solved) / len(solved)
                        if solved else 0)
        mean_swaps = (sum(result.swap_count for result in solved) / len(solved)
                      if solved else float("nan"))
        mean_time = (sum(result.solve_time for result in solved) / len(solved)
                     if solved else float("nan"))
        rows.append([f"n={slots}", f"{len(solved)}/{len(suite)}", round(mean_vars),
                     round(mean_clauses), round(mean_swaps, 2), round(mean_time, 2)])
    report = render_table(
        ["slots per gate", "# solved", "mean #vars", "mean #hard clauses",
         "mean swaps", "mean time (s)"],
        rows, title="Ablation: SWAP slots per two-qubit gate (NL-SATMAP, scaled suite)")

    per_circuit = []
    for index, bench in enumerate(suite):
        row = [bench.name]
        for slots in SLOT_COUNTS:
            result = records[slots][index]
            row.append(result.swap_count if result.solved else "-")
        per_circuit.append(row)
    report += "\n\n" + render_table(
        ["circuit"] + [f"swaps (n={slots})" for slots in SLOT_COUNTS], per_circuit,
        title="Per-circuit swap counts")
    save_report("ablation_swap_slots", report)

    solved_n1 = sum(1 for result in records[1] if result.solved)
    assert solved_n1 >= len(suite) - 1

    # Encoding size must grow with n (that is the cost the paper avoids).
    vars_n1 = sum(result.num_variables for result in records[1])
    vars_n2 = sum(result.num_variables for result in records[2])
    assert vars_n2 > vars_n1

    # Where both n=1 and n=2 are solved optimally, n=1 must not be worse by
    # more than one SWAP per circuit (the paper's "near-optimal" claim).
    for index in range(len(suite)):
        first = records[1][index]
        second = records[2][index]
        if first.solved and second.solved and first.optimal and second.optimal:
            assert first.swap_count <= second.swap_count + 1
