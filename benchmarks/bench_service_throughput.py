"""Service throughput: serial vs. pooled vs. warm-cache on a 20-job batch.

Measures what the batch routing service buys over one-at-a-time routing:

* **serial** -- the reference: one worker, cache disabled; equivalent to the
  pre-service ``run_router_on_suite`` loop.
* **pooled** -- the worker pool in its auto-selected mode with a cold cache.
  On a multi-core machine the pool fans jobs out across processes; on a
  single visible CPU the pool degrades to serial and the numbers show the
  service layer's overhead is negligible rather than a speedup.
* **warm cache** -- the same batch again on the same service: every job is
  served from the content-addressed cache (after re-verification).

The hard claim is the cache one: a warm identical batch must be served at
least 5x faster than the serial baseline.  The pooled-vs-serial claim is
asserted only when real parallelism exists (>1 CPU and a process pool),
otherwise it is reported for inspection only.
"""

from __future__ import annotations

import os
import time

from _harness import SATMAP_BUDGET, run_once, save_report

from repro.analysis.reporting import render_table
from repro.analysis.suite import default_architecture, tiny_suite
from repro.circuits.random_circuits import random_circuit
from repro.service import BatchRoutingService, RoutingJob

NUM_JOBS = 20
ROUTER = "satmap"


def twenty_job_batch(architecture) -> list[RoutingJob]:
    """The tiny suite (12 circuits) plus 8 extra random ones: 20 distinct jobs."""
    benches = tiny_suite()
    circuits = [bench.circuit for bench in benches]
    for extra in range(NUM_JOBS - len(circuits)):
        circuits.append(random_circuit(4 + extra % 2, 12 + extra,
                                       seed=1000 + extra,
                                       name=f"throughput_extra_{extra:02d}"))
    return [RoutingJob.from_circuit(circuit, architecture, router=ROUTER,
                                    name=circuit.name)
            for circuit in circuits[:NUM_JOBS]]


def run_experiment():
    architecture = default_architecture(8)

    def timed_batch(service: BatchRoutingService) -> dict:
        jobs = twenty_job_batch(architecture)
        start = time.monotonic()
        results = service.route_batch(jobs, time_budget=SATMAP_BUDGET)
        elapsed = time.monotonic() - start
        return {
            "time": elapsed,
            "throughput": len(jobs) / max(elapsed, 1e-9),
            "solved": sum(1 for result in results if result.solved),
            "cache_hits": service.cache.hits if service.cache is not None else 0,
        }

    with BatchRoutingService(max_workers=1, mode="serial", cache=False) as service:
        serial = timed_batch(service)
    with BatchRoutingService(mode="auto") as service:
        pooled = timed_batch(service)
        warm = timed_batch(service)
        pool_mode = service.pool.mode
        workers = service.pool.max_workers
    return serial, pooled, warm, pool_mode, workers


def test_service_throughput(benchmark):
    serial, pooled, warm, pool_mode, workers = run_once(benchmark, run_experiment)

    rows = [
        ["serial (no cache)", round(serial["time"], 3),
         round(serial["throughput"], 2), serial["solved"]],
        [f"pooled ({pool_mode}, {workers} workers, cold)", round(pooled["time"], 3),
         round(pooled["throughput"], 2), pooled["solved"]],
        ["pooled (warm cache)", round(warm["time"], 3),
         round(warm["throughput"], 2), warm["solved"]],
    ]
    summary = render_table(
        ["configuration", "time (s)", "jobs/s", "solved"], rows,
        title=f"Service throughput: {NUM_JOBS} x {ROUTER} jobs")
    summary += (f"\nwarm-cache speedup over serial: "
                f"{serial['time'] / max(warm['time'], 1e-9):.1f}x"
                f"\npooled speedup over serial:     "
                f"{serial['time'] / max(pooled['time'], 1e-9):.2f}x")
    save_report("service_throughput", summary)

    assert serial["solved"] == NUM_JOBS
    assert pooled["solved"] == NUM_JOBS
    assert warm["solved"] == NUM_JOBS
    # Warm batch is all cache hits and at least 5x faster than serial routing.
    assert warm["cache_hits"] >= NUM_JOBS
    assert serial["time"] >= 5.0 * warm["time"], (
        f"warm cache not >=5x faster: serial {serial['time']:.3f}s vs "
        f"warm {warm['time']:.3f}s")
    # True parallel speedup is only claimable with >1 CPU and a process pool.
    if pool_mode == "process" and (os.cpu_count() or 1) > 1 and workers > 1:
        assert pooled["throughput"] > serial["throughput"], (
            f"pooled {pooled['throughput']:.2f} jobs/s not above serial "
            f"{serial['throughput']:.2f} jobs/s")
