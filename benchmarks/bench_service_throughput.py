"""Service throughput: serial vs. pooled vs. warm-cache on a 20-job batch.

Measures what the batch routing service buys over one-at-a-time routing:

* **serial** -- the reference: one worker, cache disabled; equivalent to the
  pre-service ``run_router_on_suite`` loop.
* **pooled** -- the worker pool in its auto-selected mode with a cold cache.
  On a multi-core machine the pool fans jobs out across processes; on a
  single visible CPU the pool degrades to serial and the numbers show the
  service layer's overhead is negligible rather than a speedup.
* **warm cache** -- the same batch again on the same service: every job is
  served from the content-addressed cache (after re-verification).

The hard claim is the cache one: a warm identical batch must be served at
least 5x faster than the serial baseline.  The pooled-vs-serial claim is
asserted only when real parallelism exists (>1 CPU and a process pool),
otherwise it is reported for inspection only.

Run directly, the script measures **tracing overhead** instead: the same
batch with spans disabled versus enabled, asserting every traced job carries
a complete span tree and that tracing costs less than 5% wall clock::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

_HERE = Path(__file__).resolve().parent
if str(_HERE) not in sys.path:  # direct invocation from any cwd
    sys.path.insert(0, str(_HERE))
try:  # fall back to the in-repo tree when repro is not installed
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - environment dependent
    sys.path.insert(0, str(_HERE.parent / "src"))

from _harness import RESULTS_DIR, SATMAP_BUDGET, run_once, save_report

from repro.analysis.reporting import render_table
from repro.analysis.suite import default_architecture, tiny_suite
from repro.circuits.random_circuits import random_circuit
from repro.service import BatchRoutingService, RoutingJob

NUM_JOBS = 20
ROUTER = "satmap"


def twenty_job_batch(architecture) -> list[RoutingJob]:
    """The tiny suite (12 circuits) plus 8 extra random ones: 20 distinct jobs."""
    benches = tiny_suite()
    circuits = [bench.circuit for bench in benches]
    for extra in range(NUM_JOBS - len(circuits)):
        circuits.append(random_circuit(4 + extra % 2, 12 + extra,
                                       seed=1000 + extra,
                                       name=f"throughput_extra_{extra:02d}"))
    return [RoutingJob.from_circuit(circuit, architecture, router=ROUTER,
                                    name=circuit.name)
            for circuit in circuits[:NUM_JOBS]]


def run_experiment():
    architecture = default_architecture(8)

    def timed_batch(service: BatchRoutingService) -> dict:
        jobs = twenty_job_batch(architecture)
        start = time.monotonic()
        results = service.route_batch(jobs, time_budget=SATMAP_BUDGET)
        elapsed = time.monotonic() - start
        return {
            "time": elapsed,
            "throughput": len(jobs) / max(elapsed, 1e-9),
            "solved": sum(1 for result in results if result.solved),
            "cache_hits": service.cache.hits if service.cache is not None else 0,
        }

    with BatchRoutingService(max_workers=1, mode="serial", cache=False) as service:
        serial = timed_batch(service)
    with BatchRoutingService(mode="auto") as service:
        pooled = timed_batch(service)
        warm = timed_batch(service)
        pool_mode = service.pool.mode
        workers = service.pool.max_workers
    return serial, pooled, warm, pool_mode, workers


def test_service_throughput(benchmark):
    serial, pooled, warm, pool_mode, workers = run_once(benchmark, run_experiment)

    rows = [
        ["serial (no cache)", round(serial["time"], 3),
         round(serial["throughput"], 2), serial["solved"]],
        [f"pooled ({pool_mode}, {workers} workers, cold)", round(pooled["time"], 3),
         round(pooled["throughput"], 2), pooled["solved"]],
        ["pooled (warm cache)", round(warm["time"], 3),
         round(warm["throughput"], 2), warm["solved"]],
    ]
    summary = render_table(
        ["configuration", "time (s)", "jobs/s", "solved"], rows,
        title=f"Service throughput: {NUM_JOBS} x {ROUTER} jobs")
    summary += (f"\nwarm-cache speedup over serial: "
                f"{serial['time'] / max(warm['time'], 1e-9):.1f}x"
                f"\npooled speedup over serial:     "
                f"{serial['time'] / max(pooled['time'], 1e-9):.2f}x")
    save_report("service_throughput", summary)

    assert serial["solved"] == NUM_JOBS
    assert pooled["solved"] == NUM_JOBS
    assert warm["solved"] == NUM_JOBS
    # Warm batch is all cache hits and at least 5x faster than serial routing.
    assert warm["cache_hits"] >= NUM_JOBS
    assert serial["time"] >= 5.0 * warm["time"], (
        f"warm cache not >=5x faster: serial {serial['time']:.3f}s vs "
        f"warm {warm['time']:.3f}s")
    # True parallel speedup is only claimable with >1 CPU and a process pool.
    if pool_mode == "process" and (os.cpu_count() or 1) > 1 and workers > 1:
        assert pooled["throughput"] > serial["throughput"], (
            f"pooled {pooled['throughput']:.2f} jobs/s not above serial "
            f"{serial['throughput']:.2f} jobs/s")


# --------------------------------------------------------- tracing overhead
#
# The standalone entry point below is the observability gate: span recording
# across service -> pool -> SAT core must stay effectively free (<5% wall
# clock) and must not change what gets solved.

OVERHEAD_LIMIT = 0.05
REQUIRED_SPANS = ("queue-wait", "encode", "solve", "extract")


def _timed_batch(jobs, budget: float, traced: bool) -> dict:
    """Route one batch on a fresh cache-less service, traced or not."""
    from repro.service import BatchRoutingService

    with BatchRoutingService(cache=False, tracer=True if traced else False,
                             time_budget=budget) as service:
        start = time.monotonic()
        results = service.route_batch(jobs)
        elapsed = time.monotonic() - start
        pool_mode = service.pool.mode
    return {"elapsed": elapsed, "results": results, "pool_mode": pool_mode}


def _check_traces(results) -> list[str]:
    """Hard correctness: every traced result has a complete, well-formed tree."""
    from repro.obs import find_span, validate_trace

    failures = []
    for result in results:
        name = result.circuit_name
        if result.trace is None:
            failures.append(f"{name}: traced run produced no span tree")
            continue
        failures.extend(f"{name}: {problem}"
                        for problem in validate_trace(result.trace))
        for span_name in REQUIRED_SPANS:
            if find_span(result.trace, span_name) is None:
                failures.append(f"{name}: span {span_name!r} missing from trace")
        solve = find_span(result.trace, "solve")
        if solve is not None and "conflicts" not in (solve.get("attributes") or {}):
            failures.append(f"{name}: solve span has no SAT counters")
    return failures


def run_tracing_overhead(smoke: bool, budget: float, output: Path) -> int:
    from repro.analysis.suite import default_architecture as arch_for
    from repro.service import RoutingJob

    architecture = arch_for(8)
    batch = twenty_job_batch(architecture)[:6 if smoke else NUM_JOBS]

    def fresh_jobs() -> list[RoutingJob]:
        # route_batch stamps trace context onto the jobs it is given, so
        # each measurement pass gets untouched copies.
        import dataclasses
        return [dataclasses.replace(job, trace_context=None) for job in batch]

    # Timing on shared runners is noisy: correctness problems are fatal on
    # the first pass, but an overhead excursion gets fresh measurement
    # passes before the run is declared a regression.
    attempts = 0
    while True:
        attempts += 1
        plain = _timed_batch(fresh_jobs(), budget, traced=False)
        traced = _timed_batch(fresh_jobs(), budget, traced=True)
        failures = _check_traces(traced["results"])
        for label, arm in (("untraced", plain), ("traced", traced)):
            unsolved = sum(1 for result in arm["results"] if not result.solved)
            if unsolved:
                failures.append(f"{label} arm left {unsolved} jobs unsolved")
        if any(result.trace is not None for result in plain["results"]):
            failures.append("untraced arm produced span trees")
        overhead = (traced["elapsed"] - plain["elapsed"]) / max(plain["elapsed"], 1e-9)
        if failures or overhead <= OVERHEAD_LIMIT or attempts >= 3:
            break
        print(f"overhead {overhead * 100.0:.1f}% on attempt {attempts}; "
              "re-measuring", file=sys.stderr)

    if overhead > OVERHEAD_LIMIT:
        message = (f"tracing overhead {overhead * 100.0:.1f}% above "
                   f"{OVERHEAD_LIMIT * 100.0:.0f}% in {attempts} passes "
                   f"(untraced {plain['elapsed']:.3f}s, "
                   f"traced {traced['elapsed']:.3f}s)")
        if smoke:
            # Sub-second smoke timings on shared runners are too noisy to
            # fail a build over; the full run keeps the strict gate.
            print(f"WARNING: {message}", file=sys.stderr)
        else:
            failures.append(message)

    report = {
        "benchmark": "service_tracing_overhead",
        "mode": "smoke" if smoke else "full",
        "jobs": len(batch),
        "pool_mode": traced["pool_mode"],
        "budget_per_job": budget,
        "untraced_s": round(plain["elapsed"], 6),
        "traced_s": round(traced["elapsed"], 6),
        "overhead": round(overhead, 4),
        "measurement_passes": attempts,
        "failures": failures,
    }
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")

    print(f"{len(batch)} jobs on {architecture.name} "
          f"({traced['pool_mode']} pool, budget {budget:g}s/job)")
    print(f"untraced: {plain['elapsed']:.3f}s   traced: {traced['elapsed']:.3f}s   "
          f"overhead: {overhead * 100.0:+.1f}%")
    print(f"report written to {output}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK: complete span trees on every job, tracing effectively free")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure span-recording overhead on a routed batch")
    parser.add_argument("--smoke", action="store_true",
                        help="6-job subset with a small budget (CI)")
    parser.add_argument("--budget", type=float, default=None,
                        help=f"per-job budget in seconds (default {SATMAP_BUDGET}, "
                             "smoke: 3.0)")
    parser.add_argument("--output", type=Path,
                        default=RESULTS_DIR / "bench_service_tracing.json")
    args = parser.parse_args(argv)
    budget = args.budget if args.budget is not None else (3.0 if args.smoke
                                                          else SATMAP_BUDGET)
    return run_tracing_overhead(args.smoke, budget, args.output)


if __name__ == "__main__":
    sys.exit(main())
