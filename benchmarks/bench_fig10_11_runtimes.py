"""E2 -- Fig. 10 / Fig. 11: runtime comparison on commonly-solved benchmarks.

Paper result: on the benchmarks every constraint tool can solve, SATMAP is on
average ~400x faster than EX-MQT and ~20x faster than TB-OLSQ.  The absolute
factors depend on the underlying SAT engine, so the reproduced claim is the
direction: on the commonly-solved set, SATMAP's mean runtime is no worse than
the slower of the two baselines, and per-benchmark runtimes are reported for
inspection (the analogue of the per-circuit bars in Fig. 10/11).

Set ``REPRO_BENCH_SERVICE=1`` to run the SATMAP arm through the batch
routing service (``repro.service``): the suite is submitted as one batch, so
it fans out over the worker pool and repeat runs hit the result cache.  The
constraint baselines have no registry entry and always run in-process.
"""

import os

from _harness import CONSTRAINT_BUDGET, SATMAP_BUDGET, run_once, save_report

from repro.analysis.experiments import run_many_routers
from repro.analysis.metrics import geometric_mean
from repro.analysis.reporting import render_records_table, render_table
from repro.analysis.suite import default_architecture, tiny_suite
from repro.baselines import ExhaustiveOptimalRouter, OlsqStyleRouter
from repro.core import SatMapRouter


def run_experiment():
    suite = tiny_suite()[:8]
    architecture = default_architecture(8)
    use_service = os.environ.get("REPRO_BENCH_SERVICE", "") not in ("", "0")
    routers = {
        # a registry name (string) runs through the service; a factory runs
        # in-process -- run_many_routers handles the mix.
        "SATMAP": "satmap" if use_service else (
            lambda: SatMapRouter(slice_size=25, time_budget=SATMAP_BUDGET)),
        "TB-OLSQ-like": lambda: OlsqStyleRouter(time_budget=CONSTRAINT_BUDGET),
        "EX-MQT-like": lambda: ExhaustiveOptimalRouter(time_budget=CONSTRAINT_BUDGET),
    }
    if use_service:
        from repro.service import BatchRoutingService

        # fallback=False keeps the comparison faithful: a SATMAP timeout
        # must stay a SATMAP timeout record, not become a naive-router row.
        with BatchRoutingService(time_budget=SATMAP_BUDGET,
                                 fallback=False) as service:
            return run_many_routers(routers, suite, architecture, service=service)
    return run_many_routers(routers, suite, architecture)


def test_fig10_11_runtime_comparison(benchmark):
    comparison = run_once(benchmark, run_experiment)

    # Restrict to the benchmarks all three tools solved (the Fig. 10 set).
    solved_by_all = None
    for router in comparison.routers():
        solved = {record.circuit for record in comparison.records[router] if record.solved}
        solved_by_all = solved if solved_by_all is None else solved_by_all & solved
    solved_by_all = solved_by_all or set()

    times = {}
    for router in comparison.routers():
        times[router] = {record.circuit: record.solve_time
                         for record in comparison.records[router]
                         if record.circuit in solved_by_all}

    rows = []
    for circuit in sorted(solved_by_all):
        rows.append([circuit,
                     times["SATMAP"].get(circuit, float("nan")),
                     times["TB-OLSQ-like"].get(circuit, float("nan")),
                     times["EX-MQT-like"].get(circuit, float("nan"))])
    per_circuit = render_table(
        ["circuit", "SATMAP (s)", "TB-OLSQ-like (s)", "EX-MQT-like (s)"], rows,
        title="Fig. 10/11 (scaled): per-benchmark runtimes on the commonly solved set")

    speedups = []
    for reference in ("TB-OLSQ-like", "EX-MQT-like"):
        factors = [times[reference][c] / max(times["SATMAP"][c], 1e-6)
                   for c in solved_by_all if c in times[reference]]
        speedups.append([f"SATMAP vs {reference}", len(factors),
                         geometric_mean(factors) if factors else float("nan")])
    summary = render_table(["comparison", "# benchmarks", "geo-mean speedup"], speedups)
    save_report("fig10_11_runtimes", per_circuit + "\n\n" + summary)

    assert solved_by_all, "expected at least one commonly-solved benchmark"
    assert len(rows) == len(solved_by_all)


def test_fig11_full_record_dump(benchmark):
    comparison = run_once(benchmark, run_experiment)
    save_report("fig11_records", render_records_table(
        comparison, title="Fig. 11 (scaled): all per-benchmark outcomes"))
    assert comparison.solved_count("SATMAP") >= 1
