"""Fleet throughput: 1 vs 4 shard workers behind one dispatcher.

Measures the ``repro.cluster`` serving fleet end to end: a real
:class:`~repro.cluster.ClusterDispatcher` with N worker *processes* (full
gateways on loopback ports), hit by 8 client threads doing complete
submit -> long-poll -> result round trips.  Per-worker configuration is
held constant across fleet sizes, so the comparison isolates the sharding
axis: more workers = more processes solving concurrently.

Three phases per fleet size:

* **cold** -- distinct circuits, every one a real SATMAP solve;
* **warm** -- the identical payloads again: served by fleet-wide dedup and
  the shared disk cache, isolating dispatch + proxy overhead;
* **dedup** -- one shared circuit from all 8 clients simultaneously.

Hard claims (enforced in both modes, they are correctness not timing):

* every request completes and every result verifies as solved;
* the warm phase performs **zero** new solves across all shards;
* the dedup phase performs exactly **one** solve fleet-wide -- consistent
  hashing routed all 8 copies to one worker, which deduplicated them;
* no worker crashed or was restarted during the run.

The throughput claim -- 4 workers sustain >= 2.5x the cold-cache
throughput of 1 worker -- needs real parallel hardware: it is enforced in
full mode and only warns in ``--smoke`` (CI runners may expose a single
core, where four processes cannot beat one).  ``cpus`` is recorded in the
JSON so readers can interpret the numbers.

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet_throughput.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import threading
import time
from pathlib import Path

_HERE = Path(__file__).resolve().parent
if str(_HERE) not in sys.path:  # direct invocation from any cwd
    sys.path.insert(0, str(_HERE))
_SRC = _HERE.parent / "src"
try:  # fall back to the in-repo tree when repro is not installed
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - environment dependent
    sys.path.insert(0, str(_SRC))

from _harness import RESULTS_DIR  # noqa: E402

from repro.analysis.reporting import render_table  # noqa: E402
from repro.circuits.random_circuits import random_circuit  # noqa: E402
from repro.cluster import FleetConfig, FleetThread  # noqa: E402
from repro.server import RoutingClient  # noqa: E402

FLEET_SIZES = (1, 4)
CLIENTS = 8
ROUTER = "satmap"  # CPU-bound per job, so extra workers genuinely help
ARCH = "tokyo6"
BUDGET = 4.0
SPEEDUP_TARGET = 2.5


def make_workload(jobs: int) -> list:
    return [random_circuit(4, 8 + (index % 3), seed=20_000 + index,
                           name=f"fleet_bench_{index}")
            for index in range(jobs)]


def run_phase(port: int, circuits: list, timeout: float) -> dict:
    """8 client threads split the circuits round-robin; full round trips."""
    errors: list[BaseException] = []
    solved = [0] * CLIENTS

    def client_loop(client_index: int) -> None:
        client = RoutingClient(port=port, timeout=timeout, retry_quota=4,
                               client_id=f"fleet-bench-{client_index}")
        try:
            for circuit in circuits[client_index::CLIENTS]:
                result = client.route(circuit, architecture=ARCH,
                                      router=ROUTER, time_budget=BUDGET,
                                      timeout=timeout)
                if result.solved:
                    solved[client_index] += 1
        except BaseException as error:
            errors.append(error)

    threads = [threading.Thread(target=client_loop, args=(index,))
               for index in range(CLIENTS)]
    start = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout + 60)
    elapsed = time.monotonic() - start
    if errors:
        raise errors[0]
    return {
        "requests": len(circuits),
        "solved": sum(solved),
        "time": round(elapsed, 4),
        "jobs_per_sec": round(len(circuits) / max(elapsed, 1e-9), 3),
    }


def fleet_totals(port: int) -> dict:
    stats = RoutingClient(port=port).stats()
    return {
        "submitted": stats["totals"]["gateway"]["submitted"],
        "deduplicated": stats["totals"]["gateway"]["deduplicated"],
        "completed": stats["totals"]["gateway"]["completed"],
        "worker_restarts": stats["fleet"]["dispatcher"]["worker_restarts"],
        "workers_alive": stats["fleet"]["workers_alive"],
    }


def run_fleet(workers: int, jobs: int, timeout: float) -> dict:
    """One fleet per size: fresh cache directory, clean counters."""
    with tempfile.TemporaryDirectory(prefix=f"fleet-bench-{workers}w-") as tmp:
        config = FleetConfig(workers=workers, cache_dir=tmp,
                             time_budget=BUDGET,
                             pool_mode="thread", pool_workers=2,
                             rate=1e6, burst=1e6, max_pending=10_000)
        with FleetThread(config) as fleet:
            workload = make_workload(jobs)
            cold = run_phase(fleet.port, workload, timeout)
            after_cold = fleet_totals(fleet.port)
            warm = run_phase(fleet.port, workload, timeout)
            after_warm = fleet_totals(fleet.port)
            shared = [random_circuit(4, 10, seed=30_000 + workers,
                                     name=f"fleet_shared_{workers}")] * CLIENTS
            dedup = run_phase(fleet.port, shared, timeout)
            after_dedup = fleet_totals(fleet.port)
    return {
        "workers": workers,
        "jobs": jobs,
        "cold": cold,
        "warm": warm,
        "dedup": dedup,
        "solves_cold": after_cold["submitted"],
        "new_solves_warm": after_warm["submitted"] - after_cold["submitted"],
        "new_solves_dedup": after_dedup["submitted"] - after_warm["submitted"],
        "deduplicated": after_dedup["deduplicated"],
        "worker_restarts": after_dedup["worker_restarts"],
        "workers_alive": after_dedup["workers_alive"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small CI configuration; timing claims only warn")
    parser.add_argument("--jobs", type=int, default=None,
                        help="distinct circuits per fleet (default: 8 smoke, "
                             "24 full)")
    args = parser.parse_args(argv)
    jobs = args.jobs if args.jobs is not None else (8 if args.smoke else 24)
    timeout = 300.0

    records = []
    report_rows = []
    failures = []
    warnings = []
    for workers in FLEET_SIZES:
        record = run_fleet(workers, jobs, timeout)
        records.append(record)
        report_rows.append([
            workers, record["cold"]["requests"],
            record["cold"]["time"], record["cold"]["jobs_per_sec"],
            record["warm"]["time"], record["warm"]["jobs_per_sec"],
            record["new_solves_warm"],
        ])

        label = f"{workers} worker(s)"
        if record["cold"]["solved"] != jobs:
            failures.append(f"{label}: cold phase solved "
                            f"{record['cold']['solved']}/{jobs}")
        if record["warm"]["solved"] != jobs:
            failures.append(f"{label}: warm phase solved "
                            f"{record['warm']['solved']}/{jobs}")
        if record["dedup"]["solved"] != CLIENTS:
            failures.append(f"{label}: dedup phase returned "
                            f"{record['dedup']['solved']}/{CLIENTS} results")
        if record["new_solves_warm"] != 0:
            failures.append(f"{label}: warm phase re-solved "
                            f"{record['new_solves_warm']} jobs (fleet dedup/"
                            f"cache must serve all repeats)")
        if record["new_solves_dedup"] != 1:
            failures.append(f"{label}: {CLIENTS} identical submissions "
                            f"triggered {record['new_solves_dedup']} solves "
                            f"(fleet-wide dedup must make it exactly 1)")
        if record["worker_restarts"] != 0:
            failures.append(f"{label}: {record['worker_restarts']} worker "
                            f"crashes during the benchmark")
        if record["workers_alive"] != workers:
            failures.append(f"{label}: only {record['workers_alive']} of "
                            f"{workers} workers alive at the end")

    speedup = (records[-1]["cold"]["jobs_per_sec"]
               / max(records[0]["cold"]["jobs_per_sec"], 1e-9))
    if speedup < SPEEDUP_TARGET:
        warnings.append(
            f"cold-cache speedup {speedup:.2f}x below the {SPEEDUP_TARGET}x "
            f"target for {FLEET_SIZES[-1]} workers (host exposes "
            f"{os.cpu_count()} CPUs)")

    table = render_table(
        ["workers", "jobs", "cold (s)", "cold jobs/s", "warm (s)",
         "warm jobs/s", "warm re-solves"],
        report_rows,
        title=f"Fleet throughput ({CLIENTS} clients, router {ROUTER}, "
              f"budget {BUDGET:g}s)")
    print()
    print(table)
    print(f"\ncold-cache speedup {FLEET_SIZES[-1]} vs {FLEET_SIZES[0]} "
          f"workers: {speedup:.2f}x")

    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / "BENCH_fleet.json"
    out_path.write_text(json.dumps({
        "smoke": args.smoke,
        "router": ROUTER,
        "architecture": ARCH,
        "time_budget": BUDGET,
        "clients": CLIENTS,
        "cpus": os.cpu_count(),
        "speedup_cold": round(speedup, 3),
        "speedup_target": SPEEDUP_TARGET,
        "fleets": records,
        "failures": failures,
        "warnings": warnings,
    }, indent=2, sort_keys=True))
    print(f"results written to {out_path}")

    for warning in warnings:
        print(f"WARNING: {warning}")
    if not args.smoke and warnings:
        failures.extend(warnings)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK: all jobs served, warm phase solver-free, fleet-wide dedup "
          "single-solve, no worker crashes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
