"""E3 -- Fig. 12: solution cost of heuristic tools relative to SATMAP.

Paper result: on the benchmarks SATMAP solves, it adds on average 5.2x fewer
gates than the MQT heuristic, 7.0x fewer than SABRE, and 3.6x fewer than tket;
on ~14% of benchmarks it adds no gates at all.  The reproduced claims: every
heuristic's mean cost ratio versus SATMAP is >= 1 (SATMAP is never worse on
average), and SATMAP attains zero added gates on a non-trivial fraction of the
suite.
"""

from _harness import HEURISTIC_BUDGET, SATMAP_BUDGET, run_once, save_report

from repro.analysis.experiments import run_many_routers
from repro.analysis.metrics import zero_cost_fraction
from repro.analysis.reporting import render_cost_ratio_summary, render_table
from repro.analysis.suite import default_architecture, tiny_suite
from repro.baselines import AStarLayerRouter, SabreRouter, TketLikeRouter
from repro.core import SatMapRouter
from repro.core.result import RoutingResult, RoutingStatus

HEURISTICS = ["MQT-A*", "SABRE", "TKET-like"]


def run_experiment():
    suite = tiny_suite()
    architecture = default_architecture(8)
    routers = {
        "SATMAP": lambda: SatMapRouter(slice_size=25, time_budget=SATMAP_BUDGET),
        "SABRE": lambda: SabreRouter(time_budget=HEURISTIC_BUDGET),
        "TKET-like": lambda: TketLikeRouter(time_budget=HEURISTIC_BUDGET),
        "MQT-A*": lambda: AStarLayerRouter(time_budget=HEURISTIC_BUDGET),
    }
    return run_many_routers(routers, suite, architecture)


def test_fig12_cost_ratio_vs_heuristics(benchmark):
    comparison = run_once(benchmark, run_experiment)
    summary = render_cost_ratio_summary(
        comparison, "SATMAP", HEURISTICS,
        title="Fig. 12 (scaled): heuristic cost / SATMAP cost")

    satmap_records = comparison.records["SATMAP"]
    zero_fraction = zero_cost_fraction([
        RoutingResult(RoutingStatus.OPTIMAL if record.optimal else RoutingStatus.FEASIBLE,
                      "SATMAP", swap_count=record.swap_count)
        for record in satmap_records if record.solved])
    extra = render_table(
        ["metric", "value"],
        [["fraction of benchmarks where SATMAP adds zero gates", zero_fraction],
         ["paper value", 0.14]],
    )
    save_report("fig12_heuristic_cost_ratio", summary + "\n\n" + extra)

    for heuristic in HEURISTICS:
        ratios = comparison.cost_ratios(heuristic, "SATMAP")
        defined = [ratio for ratio in ratios if ratio is not None]
        if defined:
            mean = sum(defined) / len(defined)
            assert mean >= 0.99, f"{heuristic} mean ratio {mean} < 1: SATMAP should not lose"
    assert zero_fraction > 0.0
