"""E5 -- Table III: breakdown of the encoding and relaxation effects.

Paper result (main suite / QAOA suite): TB-OLSQ solves 38 / 0, NL-SATMAP 70 /
5, SATMAP 109 / 7, CYC-SATMAP - / 10.  The reproduced claim is the monotone
ordering on both suites: each added ingredient (Boolean sketch encoding, local
relaxation, cyclic relaxation) solves at least as many instances as the
previous row.
"""

from _harness import CONSTRAINT_BUDGET, SATMAP_BUDGET, run_once, save_report

from repro.analysis.experiments import run_many_routers
from repro.analysis.reporting import render_table
from repro.analysis.suite import default_architecture, qaoa_suite, small_suite
from repro.baselines import OlsqStyleRouter
from repro.core import SatMapRouter, route_cyclic


def run_main_suite():
    suite = small_suite()
    architecture = default_architecture(8)
    routers = {
        "TB-OLSQ-like": lambda: OlsqStyleRouter(time_budget=CONSTRAINT_BUDGET),
        "NL-SATMAP": lambda: SatMapRouter(time_budget=SATMAP_BUDGET),
        "SATMAP": lambda: SatMapRouter(slice_size=10, time_budget=SATMAP_BUDGET,
                                       name="SATMAP"),
    }
    return run_many_routers(routers, suite, architecture), len(suite)


def run_qaoa_suite():
    architecture = default_architecture(8)
    instances = qaoa_suite(qubit_counts=(4, 6), cycle_counts=(2, 4))
    rows = {}
    for label, runner in (
        ("TB-OLSQ-like", lambda inst: OlsqStyleRouter(
            time_budget=CONSTRAINT_BUDGET).route(inst.circuit, architecture)),
        ("NL-SATMAP", lambda inst: SatMapRouter(
            time_budget=SATMAP_BUDGET).route(inst.circuit, architecture)),
        ("SATMAP", lambda inst: SatMapRouter(
            slice_size=10, time_budget=SATMAP_BUDGET).route(inst.circuit, architecture)),
        ("CYC-SATMAP", lambda inst: route_cyclic(
            inst.block, inst.cycles, architecture, prelude=inst.prelude,
            router=SatMapRouter(slice_size=10, time_budget=SATMAP_BUDGET))),
    ):
        solved = 0
        largest = 0
        for instance in instances:
            result = runner(instance)
            if result.solved:
                solved += 1
                largest = max(largest, instance.circuit.num_two_qubit_gates)
        rows[label] = (solved, largest, len(instances))
    return rows


def test_table3_breakdown(benchmark):
    def experiment():
        return run_main_suite(), run_qaoa_suite()

    (main_comparison, main_total), qaoa_rows = run_once(benchmark, experiment)

    table_rows = []
    for router in ("TB-OLSQ-like", "NL-SATMAP", "SATMAP", "CYC-SATMAP"):
        main_solved = (f"{main_comparison.solved_count(router)}/{main_total}"
                       if router in main_comparison.routers() else "-")
        main_largest = (main_comparison.largest_solved(router)
                        if router in main_comparison.routers() else "-")
        qaoa_solved, qaoa_largest, qaoa_total = qaoa_rows.get(router, (0, 0, 0))
        table_rows.append([router, main_solved, main_largest,
                           f"{qaoa_solved}/{qaoa_total}", qaoa_largest])
    report = render_table(
        ["tool", "main solved", "main largest", "QAOA solved", "QAOA largest"],
        table_rows, title="Table III (scaled): breakdown of encoding and relaxations")
    save_report("table3_breakdown", report)

    assert (main_comparison.solved_count("SATMAP")
            >= main_comparison.solved_count("NL-SATMAP")
            >= 0)
    assert qaoa_rows["CYC-SATMAP"][0] >= qaoa_rows["NL-SATMAP"][0]
    assert qaoa_rows["SATMAP"][0] >= qaoa_rows["NL-SATMAP"][0]
