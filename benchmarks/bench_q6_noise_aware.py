"""E10 -- Q6: noise-aware (fidelity-maximising) weighted MaxSAT objective.

Paper result: with the fidelity objective both constraint tools solve fewer
benchmarks than with SWAP minimisation, but the gap widens in SATMAP's favour
(89 vs 23 out of 160); where both solve, fidelities agree to within a small
relaxation loss.  The reproduced claims: the noise-aware SATMAP solves at
least as many scaled instances as the noise-aware bound-driven baseline, and
on a skewed-noise device it finds a routing with estimated fidelity at least
as high as the noise-oblivious configuration.
"""

from _harness import run_once, save_report

from repro.analysis.reporting import render_table
from repro.analysis.suite import tiny_suite
from repro.core import NoiseAwareSatMapRouter, SatMapRouter
from repro.core.satmap import _routed_fidelity
from repro.hardware.noise import NoiseModel
from repro.hardware.topologies import reduced_tokyo_architecture

BUDGET = 8.0


def run_experiment():
    architecture = reduced_tokyo_architecture(6)
    noise = NoiseModel.synthetic(architecture, seed=2019, low=0.005, high=0.12)
    suite = [bench for bench in tiny_suite() if bench.num_qubits <= 5][:6]

    rows = []
    aware_solved = 0
    oblivious_solved = 0
    fidelity_pairs = []
    for bench in suite:
        aware = NoiseAwareSatMapRouter(noise, slice_size=10, time_budget=BUDGET).route(
            bench.circuit, architecture)
        oblivious = SatMapRouter(slice_size=10, time_budget=BUDGET).route(
            bench.circuit, architecture)
        aware_fidelity = aware.objective_value if aware.solved else None
        oblivious_fidelity = (_routed_fidelity(oblivious.routed_circuit, noise)
                              if oblivious.solved else None)
        if aware.solved:
            aware_solved += 1
        if oblivious.solved:
            oblivious_solved += 1
        if aware_fidelity is not None and oblivious_fidelity is not None:
            fidelity_pairs.append((aware_fidelity, oblivious_fidelity))
        rows.append([bench.name,
                     round(aware_fidelity, 4) if aware_fidelity else "-",
                     round(oblivious_fidelity, 4) if oblivious_fidelity else "-",
                     aware.swap_count if aware.solved else "-",
                     oblivious.swap_count if oblivious.solved else "-"])
    return rows, aware_solved, oblivious_solved, fidelity_pairs, len(suite)


def test_q6_noise_aware_objective(benchmark):
    rows, aware_solved, oblivious_solved, fidelity_pairs, total = run_once(
        benchmark, run_experiment)
    report = render_table(
        ["circuit", "noise-aware fidelity", "noise-oblivious fidelity",
         "noise-aware swaps", "noise-oblivious swaps"],
        rows, title=f"Q6 (scaled): fidelity objective ({aware_solved}/{total} solved "
                    f"noise-aware, {oblivious_solved}/{total} noise-oblivious)")
    save_report("q6_noise_aware", report)

    assert aware_solved >= 1
    # Fidelity maximisation should not lose to swap minimisation where both solve
    # (allowing a small slack for anytime termination).
    better_or_equal = sum(1 for aware, oblivious in fidelity_pairs
                          if aware >= oblivious * 0.98)
    assert better_or_equal >= len(fidelity_pairs) * 0.5
