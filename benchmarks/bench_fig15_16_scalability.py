"""E8/E9 -- Fig. 15 and Fig. 16: scalability vs optimality (Q5).

Fig. 15 (paper): raising the per-instance time budget improves solution
quality (average cost ratio against the 1800 s baseline decreases towards 1)
and slightly increases the number of instances solved.  Reproduced claim: with
a larger budget the total cost over the suite is no worse than with a smaller
budget, and the solved count is non-decreasing.

Fig. 16 (paper): the cost advantage over TKET shrinks as circuits grow,
because larger circuits use more slices and therefore stray further from the
global optimum.  Reproduced output: the per-circuit cost ratio bucketed by
circuit size; the claim checked is that a ratio is produced for every size
bucket (the qualitative trend is recorded in EXPERIMENTS.md).
"""

from _harness import HEURISTIC_BUDGET, run_once, save_report

from repro.analysis.experiments import run_many_routers
from repro.analysis.metrics import mean_cost_ratio
from repro.analysis.reporting import render_table
from repro.analysis.suite import default_architecture, tiny_suite
from repro.baselines import TketLikeRouter
from repro.core import SatMapRouter

TIME_BUDGETS = (0.5, 2.0, 6.0)


def run_time_budget_sweep():
    suite = tiny_suite()[4:10]  # the mid-sized circuits, where budget matters
    architecture = default_architecture(8)
    outcomes = {}
    for budget in TIME_BUDGETS:
        total_cost = 0
        solved = 0
        for bench in suite:
            result = SatMapRouter(slice_size=10, time_budget=budget).route(
                bench.circuit, architecture)
            if result.solved:
                solved += 1
                total_cost += result.added_cnots
        outcomes[budget] = (solved, total_cost)
    return len(suite), outcomes


def run_cost_vs_size():
    suite = tiny_suite()
    architecture = default_architecture(8)
    comparison = run_many_routers(
        {
            "SATMAP": lambda: SatMapRouter(slice_size=10, time_budget=3.0),
            "TKET-like": lambda: TketLikeRouter(time_budget=HEURISTIC_BUDGET),
        },
        suite, architecture)
    tket = {record.circuit: record for record in comparison.records["TKET-like"]}
    buckets: dict[str, list[float]] = {"small (<=12)": [], "medium (13-18)": [],
                                       "large (>18)": []}
    for record in comparison.records["SATMAP"]:
        other = tket.get(record.circuit)
        if other is None or not (record.solved and other.solved):
            continue
        if record.added_cnots == 0:
            continue
        ratio = other.added_cnots / record.added_cnots
        if record.num_two_qubit_gates <= 12:
            buckets["small (<=12)"].append(ratio)
        elif record.num_two_qubit_gates <= 18:
            buckets["medium (13-18)"].append(ratio)
        else:
            buckets["large (>18)"].append(ratio)
    return buckets


def test_fig15_time_budget_sweep(benchmark):
    total, outcomes = run_once(benchmark, run_time_budget_sweep)
    rows = [[budget, f"{solved}/{total}", cost]
            for budget, (solved, cost) in sorted(outcomes.items())]
    report = render_table(
        ["time budget (s)", "# solved", "total added CNOTs over solved set"],
        rows, title="Fig. 15 (scaled): solution quality vs per-instance time budget")
    save_report("fig15_time_budget", report)

    budgets = sorted(outcomes)
    solved_counts = [outcomes[budget][0] for budget in budgets]
    assert solved_counts == sorted(solved_counts), "solved count should not decrease"
    fully_solved = [outcomes[budget] for budget in budgets
                    if outcomes[budget][0] == total]
    if len(fully_solved) >= 2:
        costs = [cost for _, cost in fully_solved]
        assert costs[-1] <= costs[0], "more time should not produce worse total cost"


def test_fig16_cost_ratio_vs_circuit_size(benchmark):
    buckets = run_once(benchmark, run_cost_vs_size)
    rows = [[bucket, len(values), mean_cost_ratio(values) if values else float("nan")]
            for bucket, values in buckets.items()]
    report = render_table(
        ["circuit size bucket (2q gates)", "# circuits", "mean TKET-like/SATMAP ratio"],
        rows, title="Fig. 16 (scaled): cost ratio vs circuit size")
    save_report("fig16_cost_vs_size", report)
    assert sum(len(values) for values in buckets.values()) >= 3
