"""Flat circuit IR vs the legacy object-per-gate front end.

Measures the three layers the IR refactor rebuilt, old versus new, at
100/1k/10k two-qubit gates:

* **build** -- constructing a circuit from a stream of gate applications
  (legacy: one ``Gate`` dataclass per application appended to a list; new:
  ``append_op`` straight into the array columns), plus the encoder-facing
  interaction extraction on the result;
* **dag** -- dependency-DAG construction (legacy: a ``DagNode`` with two
  Python sets per gate; new: CSR index arrays built in one iterative pass);
* **sabre** -- a full SABRE routing run (legacy: dict mapping with O(n)
  inverse scans and a mapping copy per candidate swap; new: flat
  logical<->physical arrays, CSR front layer, flat distance matrix).

The legacy implementations below are faithful ports of the pre-refactor
modules; both SABRE variants make identical decisions, so their swap counts
must agree exactly -- that equality (plus the independent verifier on the
new result) is the correctness gate.  Timing regressions fail the run in
full mode and warn in ``--smoke`` mode (shared CI runners are too noisy),
matching the other benchmark gates.  Results are written as JSON under
``benchmarks/results/``.

    PYTHONPATH=src python benchmarks/bench_circuit_ir.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import math
import random
import sys
import time
from pathlib import Path

from _harness import RESULTS_DIR

from repro.baselines.sabre import SabreRouter
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import CircuitDag
from repro.circuits.gates import Gate
from repro.circuits.random_circuits import random_circuit
from repro.core.verifier import verify_routing
from repro.hardware.topologies import grid_architecture

# --------------------------------------------------------------------------
# Legacy reference implementations (ports of the pre-refactor modules).
# --------------------------------------------------------------------------


class LegacyCircuit:
    """The old ``QuantumCircuit``: a validated list of ``Gate`` objects."""

    def __init__(self, num_qubits: int, name: str = "circuit") -> None:
        self.num_qubits = num_qubits
        self.name = name
        self.gates: list[Gate] = []

    def append(self, gate: Gate) -> None:
        for qubit in gate.qubits:
            if not 0 <= qubit < self.num_qubits:
                raise ValueError("qubit out of range")
        self.gates.append(gate)

    @property
    def num_two_qubit_gates(self) -> int:
        return sum(1 for gate in self.gates if gate.is_two_qubit)

    def interaction_sequence(self) -> list[tuple[int, int]]:
        return [tuple(gate.qubits) for gate in self.gates if gate.is_two_qubit]


class LegacyDagNode:
    __slots__ = ("index", "gate", "predecessors", "successors")

    def __init__(self, index: int, gate: Gate) -> None:
        self.index = index
        self.gate = gate
        self.predecessors: set[int] = set()
        self.successors: set[int] = set()


class LegacyDag:
    """The old ``CircuitDag``: one node object with two sets per gate."""

    def __init__(self, circuit) -> None:
        self.circuit = circuit
        self.nodes: list[LegacyDagNode] = []
        last_on_qubit: dict[int, int] = {}
        for index, gate in enumerate(circuit.gates):
            node = LegacyDagNode(index, gate)
            for qubit in gate.qubits:
                if qubit in last_on_qubit:
                    predecessor = last_on_qubit[qubit]
                    node.predecessors.add(predecessor)
                    self.nodes[predecessor].successors.add(index)
                last_on_qubit[qubit] = index
            self.nodes.append(node)

    def front_layer(self, executed: set[int]) -> list[LegacyDagNode]:
        return [node for node in self.nodes
                if node.index not in executed
                and node.predecessors.issubset(executed)]


class LegacyBuilder:
    """The old ``RoutedBuilder``: dict mapping, O(n) inverse lookups."""

    def __init__(self, circuit, architecture, initial_mapping) -> None:
        self.architecture = architecture
        self.mapping = dict(initial_mapping)
        self.routed_gates: list[Gate] = []
        self.swap_count = 0

    def physical_of(self, logical: int) -> int:
        return self.mapping[logical]

    def logical_at(self, physical: int):
        for logical, position in self.mapping.items():
            if position == physical:
                return logical
        return None

    def can_execute(self, gate: Gate) -> bool:
        if not gate.is_two_qubit:
            return True
        first, second = (self.mapping[q] for q in gate.qubits)
        return self.architecture.are_adjacent(first, second)

    def emit_gate(self, gate: Gate) -> None:
        physical = tuple(self.mapping[q] for q in gate.qubits)
        self.routed_gates.append(Gate(gate.name, physical, gate.params))

    def emit_swap(self, physical_a: int, physical_b: int) -> None:
        logical_a = self.logical_at(physical_a)
        logical_b = self.logical_at(physical_b)
        if logical_a is not None:
            self.mapping[logical_a] = physical_b
        if logical_b is not None:
            self.mapping[logical_b] = physical_a
        self.routed_gates.append(Gate("swap", (physical_a, physical_b)))
        self.swap_count += 1


def legacy_greedy_interaction_mapping(circuit, architecture) -> dict[int, int]:
    """Port of the pre-refactor placement (nested distance matrix, gate scans)."""
    counts: dict[tuple[int, int], int] = {}
    for first, second in circuit.interaction_sequence():
        key = (min(first, second), max(first, second))
        counts[key] = counts.get(key, 0) + 1
    weight_of = {q: 0 for q in range(circuit.num_qubits)}
    partners: dict[int, dict[int, int]] = {q: {} for q in range(circuit.num_qubits)}
    for (first, second), count in counts.items():
        weight_of[first] += count
        weight_of[second] += count
        partners[first][second] = count
        partners[second][first] = count
    order = sorted(range(circuit.num_qubits), key=lambda q: -weight_of[q])
    distance = architecture.distance_matrix()
    mapping: dict[int, int] = {}
    free = set(range(architecture.num_qubits))
    for logical in order:
        best_physical = None
        best_cost = None
        for physical in sorted(free):
            cost = 0.0
            for partner, count in partners[logical].items():
                if partner in mapping:
                    cost += count * distance[physical][mapping[partner]]
            cost -= 0.001 * architecture.degree(physical)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_physical = physical
        mapping[logical] = best_physical
        free.discard(best_physical)
    return mapping


class LegacySabre:
    """Faithful port of the pre-refactor SABRE (same decisions as the new one)."""

    def __init__(self, lookahead_size: int = 20, lookahead_weight: float = 0.5,
                 decay_factor: float = 0.001, decay_reset_interval: int = 5,
                 bidirectional_passes: int = 3, seed: int = 0) -> None:
        self.lookahead_size = lookahead_size
        self.lookahead_weight = lookahead_weight
        self.decay_factor = decay_factor
        self.decay_reset_interval = decay_reset_interval
        self.bidirectional_passes = bidirectional_passes
        self.seed = seed

    def route(self, circuit, architecture):
        rng = random.Random(self.seed)
        mapping = legacy_greedy_interaction_mapping(circuit, architecture)
        reversed_circuit = LegacyCircuit(circuit.num_qubits, name="rev")
        reversed_circuit.gates = list(reversed(circuit.gates))
        for pass_index in range(self.bidirectional_passes):
            target = circuit if pass_index % 2 == 0 else reversed_circuit
            builder = self._route_once(target, architecture, mapping, rng)
            mapping = dict(builder.mapping)
        if self.bidirectional_passes % 2 == 1:
            builder = self._route_once(reversed_circuit, architecture, mapping, rng)
            mapping = dict(builder.mapping)
        return self._route_once(circuit, architecture, mapping, rng)

    def _route_once(self, circuit, architecture, initial_mapping, rng):
        dag = LegacyDag(circuit)
        builder = LegacyBuilder(circuit, architecture, initial_mapping)
        distance = architecture.distance_matrix()
        executed: set[int] = set()
        decay = [1.0] * architecture.num_qubits
        swaps_since_progress = 0

        front = {node.index for node in dag.front_layer(executed)}
        while front:
            progressed = False
            for index in sorted(front):
                node = dag.nodes[index]
                if builder.can_execute(node.gate):
                    builder.emit_gate(node.gate)
                    executed.add(index)
                    front.discard(index)
                    for successor in node.successors:
                        if dag.nodes[successor].predecessors.issubset(executed):
                            front.add(successor)
                    progressed = True
            if progressed:
                swaps_since_progress = 0
                decay = [1.0] * architecture.num_qubits
                continue

            front_gates = [dag.nodes[index].gate for index in sorted(front)
                           if dag.nodes[index].gate.is_two_qubit]
            if not front_gates:
                for index in sorted(front):
                    builder.emit_gate(dag.nodes[index].gate)
                    executed.add(index)
                front = {node.index for node in dag.front_layer(executed)}
                continue

            if swaps_since_progress > 4 * architecture.num_qubits:
                gate = front_gates[0]
                path = architecture.shortest_path(
                    builder.physical_of(gate.qubits[0]),
                    builder.physical_of(gate.qubits[1]))
                builder.emit_swap(path[0], path[1])
                swaps_since_progress = 0
                continue

            extended = self._extended_set(dag, front, executed)
            candidates = self._candidate_swaps(front_gates, builder)
            best_swap = None
            best_score = None
            for swap in sorted(candidates):
                score = self._score_swap(swap, front_gates, extended, builder,
                                         distance, decay)
                if best_score is None or score < best_score - 1e-12 or (
                        abs(score - best_score) <= 1e-12 and rng.random() < 0.5):
                    best_score = score
                    best_swap = swap
            builder.emit_swap(*best_swap)
            decay[best_swap[0]] += self.decay_factor
            decay[best_swap[1]] += self.decay_factor
            swaps_since_progress += 1
            if swaps_since_progress % self.decay_reset_interval == 0:
                decay = [1.0] * architecture.num_qubits
        return builder

    def _extended_set(self, dag, front, executed):
        extended = []
        queue = sorted(front)
        seen = set(queue)
        position = 0
        while position < len(queue) and len(extended) < self.lookahead_size:
            node = dag.nodes[queue[position]]
            position += 1
            for successor in sorted(node.successors):
                if successor in seen or successor in executed:
                    continue
                seen.add(successor)
                queue.append(successor)
                successor_gate = dag.nodes[successor].gate
                if successor_gate.is_two_qubit:
                    extended.append(successor_gate)
        return extended

    def _candidate_swaps(self, front_gates, builder):
        involved_physical = set()
        for gate in front_gates:
            for logical in gate.qubits:
                involved_physical.add(builder.physical_of(logical))
        candidates = set()
        for physical in involved_physical:
            for neighbor in builder.architecture.neighbors(physical):
                candidates.add((min(physical, neighbor), max(physical, neighbor)))
        return candidates

    def _score_swap(self, swap, front_gates, extended, builder, distance, decay):
        trial = dict(builder.mapping)
        logical_a = builder.logical_at(swap[0])
        logical_b = builder.logical_at(swap[1])
        if logical_a is not None:
            trial[logical_a] = swap[1]
        if logical_b is not None:
            trial[logical_b] = swap[0]
        front_cost = sum(distance[trial[g.qubits[0]]][trial[g.qubits[1]]]
                         for g in front_gates)
        front_cost /= max(1, len(front_gates))
        lookahead_cost = 0.0
        if extended:
            lookahead_cost = sum(distance[trial[g.qubits[0]]][trial[g.qubits[1]]]
                                 for g in extended) / len(extended)
        decay_penalty = max(decay[swap[0]], decay[swap[1]])
        return decay_penalty * (front_cost + self.lookahead_weight * lookahead_cost)


# --------------------------------------------------------------------------
# Measurement harness.
# --------------------------------------------------------------------------


def best_of(repeats: int, function, *args):
    """Wall-clock seconds for the fastest of ``repeats`` calls, plus the result."""
    best = math.inf
    result = None
    for _ in range(repeats):
        begin = time.perf_counter()
        result = function(*args)
        elapsed = time.perf_counter() - begin
        if elapsed < best:
            best = elapsed
    return best, result


def op_stream(size: int, seed: int = 0) -> list[tuple[str, tuple[int, ...], tuple[str, ...]]]:
    """A reproducible gate-application stream with ``size`` two-qubit gates."""
    source = random_circuit(num_qubits=20, num_two_qubit_gates=size, seed=seed)
    return list(source.iter_ops())


def build_legacy(ops, num_qubits: int) -> LegacyCircuit:
    circuit = LegacyCircuit(num_qubits)
    for name, qubits, params in ops:
        circuit.append(Gate(name, qubits, params))
    return circuit


def build_new(ops, num_qubits: int) -> QuantumCircuit:
    circuit = QuantumCircuit(num_qubits)
    for name, qubits, params in ops:
        circuit.append_op(name, qubits, params)
    return circuit


def bench_size(size: int, repeats: int, route: bool) -> dict:
    ops = op_stream(size)
    num_qubits = 20

    legacy_build_s, legacy_circuit = best_of(repeats, build_legacy, ops, num_qubits)
    new_build_s, new_circuit = best_of(repeats, build_new, ops, num_qubits)
    assert len(legacy_circuit.gates) == len(new_circuit)

    legacy_extract_s, legacy_seq = best_of(repeats,
                                           legacy_circuit.interaction_sequence)
    new_extract_s, new_seq = best_of(repeats, new_circuit.interaction_sequence)
    assert legacy_seq == new_seq, "interaction extraction diverged"

    legacy_dag_s, legacy_dag = best_of(repeats, LegacyDag, legacy_circuit)
    new_dag_s, new_dag = best_of(repeats, CircuitDag, new_circuit)
    assert len(legacy_dag.nodes) == len(new_dag)

    record = {
        "two_qubit_gates": size,
        "build": {"legacy_s": legacy_build_s, "new_s": new_build_s,
                  "speedup": legacy_build_s / max(new_build_s, 1e-12)},
        "interaction_extraction": {
            "legacy_s": legacy_extract_s, "new_s": new_extract_s,
            "speedup": legacy_extract_s / max(new_extract_s, 1e-12)},
        "dag": {"legacy_s": legacy_dag_s, "new_s": new_dag_s,
                "speedup": legacy_dag_s / max(new_dag_s, 1e-12)},
    }

    if route:
        architecture = grid_architecture(4, 5)
        route_repeats = max(1, repeats - 1)
        legacy_router = LegacySabre()
        legacy_route_s, legacy_builder = best_of(
            route_repeats, legacy_router.route, legacy_circuit, architecture)
        new_router = SabreRouter(time_budget=600.0, verify=False)
        new_route_s, new_result = best_of(route_repeats, new_router.route,
                                          new_circuit, architecture)
        # Same algorithm, same decisions: swap counts must agree exactly, and
        # the new result must pass the independent verifier.
        assert new_result.solved
        verify_routing(new_circuit, new_result.routed_circuit,
                       new_result.initial_mapping, architecture)
        record["sabre_swaps_match"] = (legacy_builder.swap_count
                                       == new_result.swap_count)
        record["sabre"] = {"legacy_s": legacy_route_s, "new_s": new_route_s,
                           "speedup": legacy_route_s / max(new_route_s, 1e-12),
                           "swaps": new_result.swap_count,
                           "legacy_swaps": legacy_builder.swap_count}
    return record


def run(smoke: bool, output: Path) -> int:
    sizes = [100, 1000] if smoke else [100, 1000, 10000]
    repeats = 3 if smoke else 5
    records = [bench_size(size, repeats, route=size <= 1000) for size in sizes]

    failures: list[str] = []
    warnings: list[str] = []

    def gate(condition: bool, message: str, hard: bool) -> None:
        if condition:
            return
        (failures if hard else warnings).append(message)

    for record in records:
        size = record["two_qubit_gates"]
        if "sabre_swaps_match" in record:
            gate(record["sabre_swaps_match"],
                 f"{size}: SABRE swap counts diverged "
                 f"(legacy {record['sabre']['legacy_swaps']} vs "
                 f"new {record['sabre']['swaps']})", hard=True)
        # Timing gates: hard in full mode, warnings in smoke (noisy runners).
        at_1k = size == 1000
        if at_1k:
            gate(record["dag"]["speedup"] >= 3.0,
                 f"{size}: DAG build speedup {record['dag']['speedup']:.2f}x < 3x",
                 hard=not smoke)
            gate(record["sabre"]["speedup"] >= 2.0,
                 f"{size}: SABRE speedup {record['sabre']['speedup']:.2f}x < 2x",
                 hard=not smoke)
            gate(record["interaction_extraction"]["speedup"] >= 1.0,
                 f"{size}: interaction extraction slower than legacy "
                 f"({record['interaction_extraction']['speedup']:.2f}x)",
                 hard=not smoke)

    payload = {
        "benchmark": "bench_circuit_ir",
        "mode": "smoke" if smoke else "full",
        "records": records,
        "failures": failures,
        "warnings": warnings,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    output.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"bench_circuit_ir ({payload['mode']})")
    for record in records:
        size = record["two_qubit_gates"]
        line = (f"  {size:>6} 2q gates: "
                f"build {record['build']['speedup']:.1f}x, "
                f"extract {record['interaction_extraction']['speedup']:.1f}x, "
                f"dag {record['dag']['speedup']:.1f}x")
        if "sabre" in record:
            line += f", sabre {record['sabre']['speedup']:.1f}x"
        print(line)
    for message in warnings:
        print(f"  WARNING: {message}")
    for message in failures:
        print(f"  FAILURE: {message}")
    print(f"  results -> {output}")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: smaller sizes, timing gates warn only")
    parser.add_argument("--output", type=Path,
                        default=RESULTS_DIR / "bench_circuit_ir.json")
    args = parser.parse_args(argv)
    return run(args.smoke, args.output)


if __name__ == "__main__":
    sys.exit(main())
