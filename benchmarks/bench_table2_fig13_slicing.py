"""E4 -- Table II / Fig. 2 / Fig. 13: impact of the locally optimal relaxation.

Paper result: the local relaxation lets SATMAP solve far more benchmarks
(109 at slice size 25 vs 70 for NL-SATMAP) and larger circuits (598 vs 128
two-qubit gates); small slice sizes hurt quality (mean cost ratio 2.69 vs
NL-SATMAP at slice size 10) while moderate ones roughly match it (≈0.9-1.0 at
25-100).  The reproduced claims: (1) with a fixed per-instance budget, sliced
SATMAP solves at least as many instances as NL-SATMAP, and (2) on instances
NL-SATMAP solves to optimality, no slice size produces a cheaper solution
(cost ratio >= 1 after accounting for both being feasible).
"""

from _harness import SATMAP_BUDGET, run_once, save_report

from repro.analysis.experiments import run_many_routers
from repro.analysis.reporting import render_cost_ratio_summary, render_solve_rate_table
from repro.analysis.suite import default_architecture, small_suite
from repro.core import SatMapRouter

SLICE_SIZES = (5, 10, 25)


def run_experiment():
    suite = small_suite()
    architecture = default_architecture(8)
    routers = {"NL-SATMAP": lambda: SatMapRouter(time_budget=SATMAP_BUDGET)}
    for slice_size in SLICE_SIZES:
        routers[f"SATMAP(slice={slice_size})"] = (
            lambda s=slice_size: SatMapRouter(slice_size=s, time_budget=SATMAP_BUDGET,
                                              name=f"SATMAP(slice={s})"))
    comparison = run_many_routers(routers, suite, architecture)
    return comparison, len(suite)


def test_table2_fig13_local_relaxation(benchmark):
    comparison, total = run_once(benchmark, run_experiment)
    solve_table = render_solve_rate_table(
        comparison, total,
        title="Table II (scaled): instances solved per local-relaxation level")
    ratio_table = render_cost_ratio_summary(
        comparison, "NL-SATMAP",
        [f"SATMAP(slice={s})" for s in SLICE_SIZES],
        title="Fig. 13 (scaled): sliced cost / NL-SATMAP cost "
              "(ratios are inverted relative to Fig. 12: reference is each slice level)")
    save_report("table2_fig13_slicing", solve_table + "\n\n" + ratio_table)

    nl_solved = comparison.solved_count("NL-SATMAP")
    sliced_solved = {slice_size: comparison.solved_count(f"SATMAP(slice={slice_size})")
                     for slice_size in SLICE_SIZES}
    # The paper's claim is that slicing never *loses* instances at a suitable
    # slice size (Table II): the best slice configuration must keep pace with
    # NL-SATMAP, and no configuration may fall far behind (a small slack
    # absorbs per-instance timeout jitter on loaded machines).
    assert max(sliced_solved.values()) >= nl_solved - 1, (
        "the best slice size should solve at least as many instances as NL-SATMAP")
    slack = max(2, total // 4)
    for slice_size, solved in sliced_solved.items():
        assert solved >= nl_solved - slack, (
            f"SATMAP(slice={slice_size}) fell more than {slack} instances behind "
            "NL-SATMAP under the same budget")

    # Quality: where NL-SATMAP is optimal, slicing can only match or worsen cost.
    nl_records = {record.circuit: record for record in comparison.records["NL-SATMAP"]}
    for slice_size in SLICE_SIZES:
        for record in comparison.records[f"SATMAP(slice={slice_size})"]:
            reference = nl_records.get(record.circuit)
            if reference is None or not (record.solved and reference.solved
                                         and reference.optimal):
                continue
            assert record.swap_count >= reference.swap_count
