"""E6 -- Table IV: QAOA circuits with the cyclic relaxation.

Paper result: CYC-SATMAP solves every QAOA instance (up to 16 qubits, 4
cycles) within the budget, while plain SATMAP times out on the largest ones;
for several sizes CYC-SATMAP also beats the best heuristic (tket) on cost.
The reproduced claims: CYC-SATMAP solves every scaled instance, solves at
least as many as plain SATMAP, and its per-cycle cost scales linearly with the
number of cycles (the structural property the relaxation guarantees).
"""

from _harness import SATMAP_BUDGET, run_once, save_report

from repro.analysis.reporting import render_table
from repro.analysis.suite import default_architecture, qaoa_suite
from repro.baselines import TketLikeRouter
from repro.core import SatMapRouter, route_cyclic


def run_experiment():
    architecture = default_architecture(8)
    instances = qaoa_suite(qubit_counts=(4, 6, 8), cycle_counts=(2, 4))
    rows = []
    cyc_by_instance = {}
    for instance in instances:
        cyc = route_cyclic(instance.block, instance.cycles, architecture,
                           prelude=instance.prelude,
                           router=SatMapRouter(slice_size=10, time_budget=SATMAP_BUDGET))
        plain = SatMapRouter(slice_size=10, time_budget=SATMAP_BUDGET).route(
            instance.circuit, architecture)
        tket = TketLikeRouter().route(instance.circuit, architecture)
        rows.append([
            instance.num_qubits, instance.cycles,
            cyc.added_cnots if cyc.solved else "-", round(cyc.solve_time, 2),
            plain.added_cnots if plain.solved else "-", round(plain.solve_time, 2),
            tket.added_cnots if tket.solved else "-", round(tket.solve_time, 2),
        ])
        cyc_by_instance[(instance.num_qubits, instance.cycles)] = (
            cyc.solved, cyc.swap_count, plain.solved)
    return rows, cyc_by_instance


def test_table4_qaoa(benchmark):
    rows, outcomes = run_once(benchmark, run_experiment)
    report = render_table(
        ["qubits", "cycles", "CYC cost", "CYC time", "SATMAP cost", "SATMAP time",
         "TKET-like cost", "TKET-like time"],
        rows, title="Table IV (scaled): QAOA cost (added CNOTs) and runtime (s)")
    save_report("table4_qaoa", report)

    # CYC-SATMAP solves everything on the scaled suite.
    assert all(solved for solved, _, _ in outcomes.values())
    # It solves at least as many instances as plain SATMAP.
    assert (sum(1 for solved, _, _ in outcomes.values() if solved)
            >= sum(1 for _, _, plain in outcomes.values() if plain))
    # Per-cycle structure: cost at 4 cycles is exactly twice the cost at 2.
    for qubits in (4, 6, 8):
        if (qubits, 2) in outcomes and (qubits, 4) in outcomes:
            _, swaps_two, _ = outcomes[(qubits, 2)]
            _, swaps_four, _ = outcomes[(qubits, 4)]
            assert swaps_four == 2 * swaps_two
